"""The benchmark harness and regression gate (``python -m repro bench``).

Each case runs the same workload twice — once on the fast kernels, once
on the seed-state reference implementations from
:mod:`repro.perf.reference` — takes the best wall time of ``--repeats``
runs per arm, and records both results' digests.  The digests are the
gate: a speedup that changes the trajectory is a bug, so any
fast/reference digest divergence fails the whole run (nonzero exit).

Reports are canonical ``BENCH_<name>.json`` files:

.. code-block:: json

    {"schema": "repro.bench/1", "name": "forksim", "created": "...",
     "host": {"python": "...", "implementation": "...", ...},
     "cases": [{"case": "...", "params": {...},
                "fast": {"seconds": 1.0, "work": 123, "work_unit":
                         "blocks", "rate": 123.0, "digest": "..."},
                "reference": {...}, "speedup": 3.3,
                "digests_match": true}]}

``--smoke`` shrinks every horizon to CI scale (seconds, not minutes):
it cannot measure honest speedups, but it exercises both arms end to
end and still enforces the digest gate, which is what the CI job needs.
"""

from __future__ import annotations

import argparse
import gc
import hashlib
import json
import platform
import sys
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .reference import (
    ReferenceSimulator,
    reference_block_loop,
    reference_event_loop,
)

__all__ = [
    "BENCH_SCHEMA",
    "add_bench_arguments",
    "bench_from_args",
    "main",
    "run_bench",
    "validate_report",
]

BENCH_SCHEMA = "repro.bench/1"

#: Case name -> report name; drives ``--only`` filtering too.
_REPORTS: Dict[str, Sequence[str]] = {
    "forksim": ("forksim_difficulty", "forksim_workload", "forksim_analysis"),
    "eventloop": (
        "eventloop_chain",
        "eventloop_bucket",
        "partition",
        "chaos_partition",
    ),
}

#: When set (``--profile``), :func:`_case_row` re-runs each case's fast
#: arm once under cProfile and writes a cumulative top-N report here.
_PROFILE_DIR: Optional[Path] = None

#: Entries in each ``--profile`` report (top N by cumulative time).
_PROFILE_TOP_N = 40


def _best_of(fn: Callable[[], Any], repeats: int) -> Tuple[float, Any]:
    """Best wall time over ``repeats`` runs; returns the last value.

    Deterministic workloads return the same value every run, so keeping
    the last one is safe; the minimum is the standard noise filter for
    wall-clock benchmarks.  The collector is paused around the timed
    region (``timeit`` hygiene — GC pauses land at arbitrary points and
    charge one arm for garbage the other produced); each repeat starts
    from a freshly collected heap.
    """
    best = float("inf")
    value: Any = None
    gc_was_enabled = gc.isenabled()
    try:
        for _ in range(max(1, repeats)):
            gc.enable()
            gc.collect()
            gc.disable()
            start = time.perf_counter()
            value = fn()
            elapsed = time.perf_counter() - start
            if elapsed < best:
                best = elapsed
    finally:
        if gc_was_enabled:
            gc.enable()
    return best, value


def _traced_peak(fn: Callable[[], Any]) -> int:
    """Tracemalloc peak of one run, in bytes.

    Tracing starts fresh inside this function, so anything allocated
    *before* the call (a shared pre-built simulation, the interpreter's
    own state) is invisible — the peak charges only what ``fn`` itself
    allocates.  Tracing roughly doubles allocation cost, which is why
    memory passes are separate from the timed ones in :func:`_case_row`.
    """
    import tracemalloc

    gc.collect()
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def _arm(seconds: float, work: int, unit: str, digest: str) -> Dict[str, Any]:
    rate = work / seconds if seconds > 0 else 0.0
    return {
        "seconds": round(seconds, 6),
        "work": work,
        "work_unit": unit,
        "rate": round(rate, 3),
        "digest": digest,
    }


def _case_row(
    name: str,
    params: Dict[str, Any],
    unit: str,
    fast_fn: Callable[[], Any],
    ref_fn: Callable[[], Any],
    measure: Callable[[Any], Tuple[int, str]],
    repeats: int,
    measure_memory: bool = False,
    memory_min_ratio: Optional[float] = None,
) -> Dict[str, Any]:
    """One benchmark row: timed arms, digests, optional memory arms.

    With ``measure_memory`` each arm also runs once more under
    tracemalloc (untimed — tracing is ~2x allocation overhead, so it
    must never touch the wall-clock numbers) and records its
    ``peak_bytes``.  ``memory_min_ratio`` turns the measurement into a
    gate: ``memory_ok`` is False when the reference arm's peak divided
    by the fast arm's falls below it — a fast path that quietly loses
    its memory advantage fails the bench exactly like a digest
    divergence does.
    """
    fast_secs, fast_value = _best_of(fast_fn, repeats)
    ref_secs, ref_value = _best_of(ref_fn, repeats)
    fast_work, fast_digest = measure(fast_value)
    ref_work, ref_digest = measure(ref_value)
    speedup = ref_secs / fast_secs if fast_secs > 0 else float("inf")
    if _PROFILE_DIR is not None:
        # Separate, untimed run: the profiler's tracing overhead must
        # never leak into the recorded wall times above.
        _write_profile(name, fast_fn)
    row = {
        "case": name,
        "params": params,
        "fast": _arm(fast_secs, fast_work, unit, fast_digest),
        "reference": _arm(ref_secs, ref_work, unit, ref_digest),
        "speedup": round(speedup, 3),
        "digests_match": fast_digest == ref_digest,
    }
    if measure_memory:
        fast_peak = _traced_peak(fast_fn)
        ref_peak = _traced_peak(ref_fn)
        row["fast"]["peak_bytes"] = fast_peak
        row["reference"]["peak_bytes"] = ref_peak
        memory_ratio = (
            ref_peak / fast_peak if fast_peak > 0 else float("inf")
        )
        row["memory_ratio"] = round(memory_ratio, 3)
        row["memory_ok"] = (
            memory_min_ratio is None or memory_ratio >= memory_min_ratio
        )
        if memory_min_ratio is not None:
            row["memory_min_ratio"] = memory_min_ratio
    return row


def _write_profile(case: str, fast_fn: Callable[[], Any]) -> Path:
    """Profile one extra fast-arm run; write the top-N cumulative table."""
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        fast_fn()
    finally:
        profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(_PROFILE_TOP_N)
    path = _PROFILE_DIR / f"profile_{case}.txt"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        f"cProfile of the fast arm, case {case!r} "
        f"(top {_PROFILE_TOP_N} by cumulative time)\n{stream.getvalue()}"
    )
    return path


# -- fork-sim cases ---------------------------------------------------------


def _forksim_case(
    name: str, days: int, with_transactions: bool, seed: int, repeats: int
) -> Dict[str, Any]:
    from ..sim.engine import ForkSimConfig, run_fork_sim

    config = ForkSimConfig(
        days=days,
        prefork_days=7,
        seed=seed,
        with_transactions=with_transactions,
    )

    def fast():
        return run_fork_sim(config)

    def reference():
        with reference_block_loop():
            return run_fork_sim(config)

    def measure(result) -> Tuple[int, str]:
        blocks = len(result.eth_trace.numbers) + len(result.etc_trace.numbers)
        return blocks, result.digest()

    return _case_row(
        name,
        {
            "days": days,
            "with_transactions": with_transactions,
            "seed": seed,
        },
        "blocks",
        fast,
        reference,
        measure,
        repeats,
        measure_memory=True,
    )


def _forksim_analysis_case(
    name: str,
    days: int,
    seed: int,
    repeats: int,
    memory_min_ratio: float,
) -> Dict[str, Any]:
    """The figure/observation pipeline over both analytics backends.

    The simulation is built once, untimed and *before* tracing starts,
    so both arms measure only the analysis: load the traces into a
    database (``columnar=True`` adopts the packed columns zero-copy;
    the reference arm boxes every block into records) and run the full
    db-backed figure + observation pipeline.  The digest covers every
    series' bytes and every observation verdict — the byte-identity
    contract of ``tests/test_data_columnar.py``, enforced here at the
    paper's 270-day scale.  The memory gate pins the columnar arm's
    tracemalloc peak at ``memory_min_ratio`` times below the record
    arm's.
    """
    import struct as _struct

    from ..core.observations import evaluate_all_db
    from ..core.report import figures_from_database
    from ..sim.engine import ForkSimConfig, run_fork_sim

    config = ForkSimConfig(
        days=days,
        prefork_days=7,
        seed=seed,
        with_transactions=True,
    )
    result = run_fork_sim(config)
    blocks = len(result.eth_trace.numbers) + len(result.etc_trace.numbers)

    def analyze(columnar: bool):
        def thunk():
            database = result.to_database(columnar=columnar)
            figures = figures_from_database(result, database)
            observations = evaluate_all_db(result, database)
            return figures, observations

        return thunk

    def measure(value) -> Tuple[int, str]:
        figures, observations = value
        hasher = hashlib.sha256()
        for number in sorted(figures):
            figure = figures[number]
            hasher.update(str(number).encode())
            for key, series in figure.series.items():
                hasher.update(key.encode("utf-8"))
                hasher.update(
                    _struct.pack(
                        f"<{len(series.timestamps)}d", *series.timestamps
                    )
                )
                hasher.update(
                    _struct.pack(f"<{len(series.values)}d", *series.values)
                )
        for observation in observations:
            blob = json.dumps(
                {
                    "number": observation.number,
                    "claim": observation.claim,
                    "holds": observation.holds,
                    "details": observation.details,
                },
                sort_keys=True,
                default=repr,
            )
            hasher.update(blob.encode("utf-8"))
        return blocks, hasher.hexdigest()

    return _case_row(
        name,
        {"days": days, "with_transactions": True, "seed": seed},
        "blocks",
        analyze(columnar=True),
        analyze(columnar=False),
        measure,
        repeats,
        measure_memory=True,
        memory_min_ratio=memory_min_ratio,
    )


# -- event-loop cases -------------------------------------------------------


def _eventloop_chain_case(ticks: int, repeats: int) -> Dict[str, Any]:
    """Pure simulator microbench: four interleaved periodic timers.

    No network, no RNG — isolates the ``run_until`` hot loop from
    everything else.  The digest covers the full firing order, so a
    heap-discipline regression cannot hide behind a fast wall time.
    """
    from ..net.simulator import Simulator

    def run(sim_cls):
        def thunk():
            sim = sim_cls()
            fired: List[int] = []
            append = fired.append
            # ``schedule`` binds once per run: the case measures the
            # engine, not repeated attribute lookups in the harness
            # closure.
            schedule = sim.schedule

            def make(period: float, label: int):
                def tick() -> None:
                    append(label)
                    if sim.now < ticks:
                        schedule(period, tick)

                return tick

            for label, period in enumerate((1.0, 1.7, 2.3, 3.1)):
                sim.schedule(period, make(period, label))
            sim.run_until(float(ticks))
            return sim.events_processed, fired

        return thunk

    def measure(value) -> Tuple[int, str]:
        processed, fired = value
        hasher = hashlib.sha256()
        hasher.update(bytes(fired))
        hasher.update(str(processed).encode())
        return processed, hasher.hexdigest()

    return _case_row(
        "eventloop_chain",
        {"ticks": ticks, "timers": 4},
        "events",
        run(Simulator),
        run(ReferenceSimulator),
        measure,
        repeats,
    )


def _eventloop_bucket_case(events: int, repeats: int) -> Dict[str, Any]:
    """Calendar-queue microbench: a dense, self-sustaining event storm.

    Drives the schedulers at partition-scenario arrival rates: every
    fired event draws from a per-run seeded RNG and schedules followers
    — usually nearby (dense buckets), sometimes a same-timestamp burst
    of three (FIFO ties inside one bucket), occasionally a far jump
    (the sparse tail the heap fallback covers).  Fast arm =
    :class:`~repro.net.bucketqueue.BucketSimulator`; reference arm =
    the seed heapq loop.  Both arms replay the identical schedule
    because the RNG is only consumed inside callbacks, in firing order
    — which is exactly what the digest then locks down.
    """
    import itertools
    import random as _random

    from ..net.bucketqueue import BucketSimulator

    def run(sim_cls):
        def thunk():
            sim = sim_cls()
            rng = _random.Random(0xB0C5)
            random_ = rng.random
            fired: List[int] = []
            append = fired.append
            schedule = sim.schedule
            ids = itertools.count()

            def spawn():
                label = next(ids)

                def callback() -> None:
                    append(label)
                    if len(fired) >= events:
                        return
                    u = random_()
                    if u < 0.30:
                        delay = random_() * 0.5
                        for _ in range(3):
                            schedule(delay, spawn())
                    elif u < 0.85:
                        schedule(random_() * 1.5, spawn())
                    else:
                        schedule(10.0 + random_() * 40.0, spawn())

                return callback

            for _ in range(64):
                schedule(random_() * 1.0, spawn())
            sim.run_until(1e9)
            return sim.events_processed, fired

        return thunk

    def measure(value) -> Tuple[int, str]:
        processed, fired = value
        hasher = hashlib.sha256()
        for label in fired:
            hasher.update(label.to_bytes(8, "little"))
        hasher.update(str(processed).encode())
        return processed, hasher.hexdigest()

    return _case_row(
        "eventloop_bucket",
        {"events": events, "seeds": 64},
        "events",
        run(BucketSimulator),
        run(ReferenceSimulator),
        measure,
        repeats,
    )


def _partition_digest(result) -> str:
    payload = {
        "fork_time": result.fork_time,
        "handshake_refusals": result.handshake_refusals,
        "incompatible_disconnects": result.incompatible_disconnects,
        "snapshots": [
            [
                snapshot.time,
                snapshot.eth_height,
                snapshot.etc_height,
                snapshot.eth_reachable,
                snapshot.etc_reachable,
                snapshot.eth_mean_peers,
                snapshot.etc_mean_peers,
            ]
            for snapshot in result.snapshots
        ],
        "robustness": (
            result.robustness.to_dict() if result.robustness else None
        ),
    }
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


def _scenario_case(
    name: str, config, params: Dict[str, Any], repeats: int
) -> Dict[str, Any]:
    from ..net.simulator import Simulator
    from ..scenarios.partition_event import PartitionScenario

    def run(sim_cls, reference: bool):
        def thunk():
            sims: List[Simulator] = []

            def factory(**kwargs):
                sim = sim_cls(**kwargs)
                sims.append(sim)
                return sim

            scenario = PartitionScenario(config, simulator_factory=factory)
            if reference:
                with reference_event_loop():
                    result = scenario.run()
            else:
                result = scenario.run()
            return result, sims[-1].events_processed

        return thunk

    def measure(value) -> Tuple[int, str]:
        result, events = value
        return events, _partition_digest(result)

    return _case_row(
        name,
        params,
        "events",
        run(Simulator, reference=False),
        run(ReferenceSimulator, reference=True),
        measure,
        repeats,
    )


def _partition_case(smoke: bool, seed: int, repeats: int) -> Dict[str, Any]:
    from ..scenarios.partition_event import PartitionScenarioConfig

    if smoke:
        params = {"num_nodes": 16, "num_miners": 5, "horizon": 900.0}
    else:
        params = {"num_nodes": 40, "num_miners": 12, "horizon": 7200.0}
    config = PartitionScenarioConfig(
        num_nodes=params["num_nodes"],
        num_miners=params["num_miners"],
        post_fork_horizon=params["horizon"],
        seed=seed,
    )
    return _scenario_case(
        "partition", config, dict(params, seed=seed), repeats
    )


def _chaos_case(smoke: bool, seed: int, repeats: int) -> Dict[str, Any]:
    from ..harness.faultsweep import FaultSweepConfig

    if smoke:
        params = {
            "num_nodes": 14,
            "num_miners": 4,
            "horizon": 400.0,
            "churn": 0.005,
            "loss": 0.08,
            "split": 120.0,
        }
    else:
        params = {
            "num_nodes": 30,
            "num_miners": 8,
            "horizon": 1800.0,
            "churn": 0.005,
            "loss": 0.08,
            "split": 300.0,
        }
    sweep = FaultSweepConfig(
        num_nodes=params["num_nodes"],
        num_miners=params["num_miners"],
        post_fork_horizon=params["horizon"],
        seed=seed,
    )
    config = sweep.cell_config(
        params["churn"], params["loss"], params["split"]
    )
    return _scenario_case(
        "chaos_partition", config, dict(params, seed=seed), repeats
    )


# -- report assembly --------------------------------------------------------


def _build_case(
    case: str, smoke: bool, seed: int, repeats: int
) -> Dict[str, Any]:
    if case == "forksim_difficulty":
        return _forksim_case(
            case, 8 if smoke else 270, False, seed, repeats
        )
    if case == "forksim_workload":
        return _forksim_case(case, 4 if smoke else 60, True, seed, repeats)
    if case == "forksim_analysis":
        # Full mode runs the paper's 270-day horizon and enforces the
        # ISSUE's >=5x peak-memory advantage for the columnar backend;
        # smoke shrinks the horizon (the boxing overhead shrinks with
        # it, so the gate loosens to 3x).
        return _forksim_analysis_case(
            case,
            8 if smoke else 270,
            seed,
            repeats,
            memory_min_ratio=3.0 if smoke else 5.0,
        )
    if case == "eventloop_chain":
        return _eventloop_chain_case(5_000 if smoke else 150_000, repeats)
    if case == "eventloop_bucket":
        return _eventloop_bucket_case(20_000 if smoke else 300_000, repeats)
    if case == "partition":
        return _partition_case(smoke, seed, repeats)
    if case == "chaos_partition":
        return _chaos_case(smoke, seed, repeats)
    raise ValueError(f"unknown bench case {case!r}")


def _host_info() -> Dict[str, str]:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "system": platform.system(),
    }


def _render_report(payload: Dict[str, Any]) -> str:
    lines = [
        f"bench report: {payload['name']}  ({payload['created']})",
        f"{'case':<22} {'work':>10} {'fast s':>9} {'ref s':>9} "
        f"{'speedup':>8} {'digests':>8}",
    ]
    for row in payload["cases"]:
        line = (
            f"{row['case']:<22} {row['fast']['work']:>10} "
            f"{row['fast']['seconds']:>9.3f} "
            f"{row['reference']['seconds']:>9.3f} "
            f"{row['speedup']:>7.2f}x "
            f"{'match' if row['digests_match'] else 'DIVERGE':>8}"
        )
        if "memory_ratio" in row:
            line += (
                f"  mem {row['memory_ratio']:.2f}x"
                f"{' ok' if row.get('memory_ok', True) else ' REGRESSION'}"
            )
        lines.append(line)
    return "\n".join(lines) + "\n"


def validate_report(payload: Dict[str, Any]) -> List[str]:
    """Schema check for a ``BENCH_*.json`` payload; returns problems.

    Used by the CI smoke job and the tests — a report that drops a
    field or changes a type fails loudly instead of silently degrading
    the regression gate.
    """
    problems: List[str] = []
    if payload.get("schema") != BENCH_SCHEMA:
        problems.append(f"schema must be {BENCH_SCHEMA!r}")
    for key in ("name", "created", "host", "cases"):
        if key not in payload:
            problems.append(f"missing top-level key {key!r}")
    if not isinstance(payload.get("cases"), list) or not payload.get("cases"):
        problems.append("cases must be a non-empty list")
        return problems
    for row in payload["cases"]:
        label = row.get("case", "<unnamed>")
        for key in ("case", "params", "fast", "reference", "speedup",
                    "digests_match"):
            if key not in row:
                problems.append(f"case {label}: missing key {key!r}")
        for arm_name in ("fast", "reference"):
            arm = row.get(arm_name, {})
            for key in ("seconds", "work", "work_unit", "rate", "digest"):
                if key not in arm:
                    problems.append(
                        f"case {label}: {arm_name} arm missing {key!r}"
                    )
            if not isinstance(arm.get("digest"), str) or not arm.get("digest"):
                problems.append(f"case {label}: {arm_name} digest invalid")
        if not isinstance(row.get("digests_match"), bool):
            problems.append(f"case {label}: digests_match must be a bool")
        has_memory = (
            "memory_ratio" in row
            or "memory_ok" in row
            or any(
                "peak_bytes" in row.get(arm, {})
                for arm in ("fast", "reference")
            )
        )
        if payload.get("name") == "forksim" and not has_memory:
            problems.append(
                f"case {label}: forksim cases must carry memory accounting"
            )
        if has_memory:
            for arm_name in ("fast", "reference"):
                peak = row.get(arm_name, {}).get("peak_bytes")
                if not isinstance(peak, int) or peak < 0:
                    problems.append(
                        f"case {label}: {arm_name} peak_bytes invalid"
                    )
            if not isinstance(row.get("memory_ratio"), (int, float)):
                problems.append(
                    f"case {label}: memory_ratio must be a number"
                )
            if not isinstance(row.get("memory_ok"), bool):
                problems.append(f"case {label}: memory_ok must be a bool")
    return problems


def run_bench(
    smoke: bool = False,
    seed: int = 2016_07_20,
    repeats: Optional[int] = None,
    only: Optional[Sequence[str]] = None,
    out_dir: str = ".",
    report_dir: Optional[str] = "benchmarks/output",
    profile: bool = False,
    echo: Callable[[str], None] = lambda line: print(line, file=sys.stderr),
) -> Tuple[List[Path], bool]:
    """Run every selected case and write the ``BENCH_*.json`` reports.

    Returns the written paths and whether every case's fast/reference
    digests matched.  ``report_dir`` additionally gets a rendered text
    table per report (None skips it).  ``profile`` re-runs each case's
    fast arm once under :mod:`cProfile` (outside the timed region) and
    writes ``profile_<case>.txt`` next to the text reports.
    """
    global _PROFILE_DIR
    if repeats is None:
        repeats = 1 if smoke else 3
    selected = {name: cases for name, cases in _REPORTS.items()
                if not only or name in only}
    if not selected:
        raise ValueError(
            f"--only must name reports from {sorted(_REPORTS)}, got {only}"
        )
    created = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    paths: List[Path] = []
    all_match = True
    saved_profile_dir = _PROFILE_DIR
    if profile:
        _PROFILE_DIR = Path(report_dir) if report_dir else Path(
            "benchmarks/output"
        )
    try:
        return _run_bench_selected(
            selected, smoke, seed, repeats, created, out_dir, report_dir,
            paths, all_match, echo,
        )
    finally:
        _PROFILE_DIR = saved_profile_dir


def _run_bench_selected(
    selected: Dict[str, Sequence[str]],
    smoke: bool,
    seed: int,
    repeats: int,
    created: str,
    out_dir: str,
    report_dir: Optional[str],
    paths: List[Path],
    all_match: bool,
    echo: Callable[[str], None],
) -> Tuple[List[Path], bool]:
    for name, case_names in selected.items():
        rows = []
        for case in case_names:
            echo(f"bench: {name}/{case} "
                 f"({'smoke' if smoke else 'full'}, repeats={repeats})...")
            row = _build_case(case, smoke, seed, repeats)
            echo(
                f"bench: {name}/{case}: fast {row['fast']['seconds']:.3f}s "
                f"vs reference {row['reference']['seconds']:.3f}s "
                f"({row['speedup']:.2f}x, digests "
                f"{'match' if row['digests_match'] else 'DIVERGE'})"
            )
            if "memory_ratio" in row:
                echo(
                    f"bench: {name}/{case}: tracemalloc peak "
                    f"{row['fast']['peak_bytes']:,}B fast vs "
                    f"{row['reference']['peak_bytes']:,}B reference "
                    f"({row['memory_ratio']:.2f}x, "
                    f"{'ok' if row['memory_ok'] else 'MEMORY REGRESSION'})"
                )
            rows.append(row)
            all_match = (
                all_match
                and row["digests_match"]
                and row.get("memory_ok", True)
            )
            if _PROFILE_DIR is not None:
                paths.append(_PROFILE_DIR / f"profile_{case}.txt")
        payload = {
            "schema": BENCH_SCHEMA,
            "name": name,
            "created": created,
            "smoke": smoke,
            "host": _host_info(),
            "cases": rows,
        }
        problems = validate_report(payload)
        if problems:  # pragma: no cover - guards harness bugs
            raise RuntimeError(f"malformed bench report: {problems}")
        out = Path(out_dir) / f"BENCH_{name}.json"
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2) + "\n")
        paths.append(out)
        if report_dir is not None:
            report = Path(report_dir) / f"bench_{name}.txt"
            report.parent.mkdir(parents=True, exist_ok=True)
            report.write_text(_render_report(payload))
            paths.append(report)
    return paths, all_match


# -- CLI --------------------------------------------------------------------


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``bench`` options (shared by ``python -m repro bench``
    and ``benchmarks/bench.py``)."""
    parser.add_argument("--smoke", action="store_true",
                        help="tiny horizons for CI: exercises both arms "
                             "and the digest gate in seconds (timings "
                             "are not meaningful)")
    parser.add_argument("--seed", type=int, default=2016_07_20)
    parser.add_argument("--repeats", type=int, default=None,
                        help="runs per arm, best wall time kept "
                             "(default: 3, or 1 with --smoke)")
    parser.add_argument("--only", type=str, nargs="+", default=None,
                        choices=sorted(_REPORTS),
                        help="restrict to these reports")
    parser.add_argument("--out-dir", type=str, default=".",
                        help="where BENCH_<name>.json land (default: "
                             "repo root, where they are committed)")
    parser.add_argument("--report-dir", type=str,
                        default="benchmarks/output",
                        help="rendered text tables (use '' to skip)")
    parser.add_argument("--profile", action="store_true",
                        help="additionally cProfile each case's fast arm "
                             "(one extra untimed run) and write "
                             "profile_<case>.txt next to the text reports")


def bench_from_args(args: argparse.Namespace) -> int:
    if args.repeats is not None and args.repeats < 1:
        print("error: --repeats must be >= 1", file=sys.stderr)
        return 2
    try:
        paths, all_match = run_bench(
            smoke=args.smoke,
            seed=args.seed,
            repeats=args.repeats,
            only=args.only,
            out_dir=args.out_dir,
            report_dir=args.report_dir or None,
            profile=getattr(args, "profile", False),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for path in paths:
        print(f"wrote {path}")
    if not all_match:
        print("error: fast/reference digests diverged or a memory gate "
              "failed — the kernels changed the trajectory or lost "
              "their footprint advantage", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench",
        description="Performance-kernel benchmark and regression gate",
    )
    add_bench_arguments(parser)
    return bench_from_args(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
