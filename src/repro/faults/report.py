"""RobustnessReport: what one chaos run says about recovery.

The partition experiments' question changes under fault injection from
"does the census collapse and heal?" to "how *fast* and how *cleanly*
does it heal under this fault configuration?".  The report reduces one
run to the three quantities the fault-sweep tables compare:

* **recovery time** — seconds from the end of the last scheduled
  disruption until the watched side's reachable crawl is back to
  ``recovery_fraction`` of its pre-disruption baseline;
* **orphan rate** — the fraction of mined blocks that never made the
  canonical chains (uncles and abandoned branches), gossip's casualty
  count under loss and splits;
* **propagation delay** — mean seconds from a block's first
  transmission to each delivery of its full body, from the network's
  propagation trace.

Reports are deterministic: :meth:`RobustnessReport.digest` hashes the
canonical JSON, and the regression tests pin that an identical seed +
schedule reproduces the digest byte-for-byte across processes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["RobustnessSample", "RobustnessReport", "build_robustness_report"]


@dataclass(frozen=True)
class RobustnessSample:
    """One census row, as the robustness analysis sees it."""

    time: float
    watched_reachable: int
    other_reachable: int
    online_nodes: int
    watched_mean_peers: float


@dataclass
class RobustnessReport:
    """The distilled outcome of one fault-injected run."""

    seed: int
    schedule_digest: str
    watched: str
    samples: List[RobustnessSample] = field(default_factory=list)

    #: Census baseline before the first disruption, and the floor after.
    baseline_reachable: int = 0
    minimum_reachable: int = 0
    #: Absolute time the last scheduled disruption ended (None: no faults).
    disruption_end: Optional[float] = None
    #: Seconds from disruption_end until the crawl is back to
    #: ``recovery_fraction * baseline`` (None: never recovered).
    recovery_time: Optional[float] = None
    recovery_fraction: float = 0.9

    orphan_rate: float = 0.0
    mean_propagation_delay: Optional[float] = None

    #: Transport accounting (see Network counters).
    messages_sent: int = 0
    messages_lost: int = 0
    messages_undeliverable: int = 0
    messages_blocked: int = 0

    #: Resilience-mechanism accounting, summed over nodes.
    dials_timed_out: int = 0
    peers_evicted_unresponsive: int = 0
    peers_banned: int = 0

    events_processed: int = 0
    fault_log: List[Tuple[float, str]] = field(default_factory=list)

    def recovered(self) -> bool:
        return self.recovery_time is not None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "schedule_digest": self.schedule_digest,
            "watched": self.watched,
            "samples": [
                [s.time, s.watched_reachable, s.other_reachable,
                 s.online_nodes, s.watched_mean_peers]
                for s in self.samples
            ],
            "baseline_reachable": self.baseline_reachable,
            "minimum_reachable": self.minimum_reachable,
            "disruption_end": self.disruption_end,
            "recovery_time": self.recovery_time,
            "recovery_fraction": self.recovery_fraction,
            "orphan_rate": self.orphan_rate,
            "mean_propagation_delay": self.mean_propagation_delay,
            "messages_sent": self.messages_sent,
            "messages_lost": self.messages_lost,
            "messages_undeliverable": self.messages_undeliverable,
            "messages_blocked": self.messages_blocked,
            "dials_timed_out": self.dials_timed_out,
            "peers_evicted_unresponsive": self.peers_evicted_unresponsive,
            "peers_banned": self.peers_banned,
            "events_processed": self.events_processed,
            "fault_log": [[t, e] for t, e in self.fault_log],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RobustnessReport":
        """Rebuild a report from :meth:`to_dict` output (chunk artifacts
        round-trip reports through JSON; the rebuilt report's digest
        equals the original's byte-for-byte)."""
        data = dict(payload)
        data["samples"] = [
            RobustnessSample(*row) for row in data.get("samples", [])
        ]
        data["fault_log"] = [
            (t, event) for t, event in data.get("fault_log", [])
        ]
        return cls(**data)

    def digest(self) -> str:
        """SHA-256 over the canonical JSON — the run's reproducibility
        fingerprint (identical seed + schedule ⇒ identical digest)."""
        payload = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":"),
            allow_nan=False,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def render(self) -> str:
        """A compact human summary (fault-sweep table row detail)."""
        recovery = (
            f"{self.recovery_time:.0f}s" if self.recovery_time is not None
            else "never"
        )
        propagation = (
            f"{self.mean_propagation_delay:.3f}s"
            if self.mean_propagation_delay is not None else "n/a"
        )
        return (
            f"watched={self.watched} "
            f"baseline={self.baseline_reachable} "
            f"floor={self.minimum_reachable} "
            f"recovery={recovery} "
            f"orphans={self.orphan_rate:.3f} "
            f"propagation={propagation} "
            f"lost={self.messages_lost} blocked={self.messages_blocked} "
            f"banned={self.peers_banned}"
        )


def build_robustness_report(
    *,
    seed: int,
    schedule,
    samples: List[RobustnessSample],
    network,
    recovery_fraction: float = 0.9,
    fork_time: Optional[float] = None,
    watched: str = "etc",
    fault_log: Optional[List[Tuple[float, str]]] = None,
    total_blocks_mined: int = 0,
    canonical_blocks: int = 0,
) -> RobustnessReport:
    """Assemble the report from a finished chaos run.

    The *disruption window* spans from the first scheduled fault (or the
    fork itself, whichever is earlier — the fork is a fault too) to the
    later of the last fault's end and the fork; recovery is measured
    from the window's end.
    """
    starts = [t for t in (schedule.first_start(), fork_time) if t is not None]
    ends = [t for t in (schedule.last_end(), fork_time) if t is not None]
    disruption_start = min(starts) if starts else None
    disruption_end = max(ends) if ends else None

    baseline = 0
    if disruption_start is not None:
        baseline = max(
            (s.watched_reachable for s in samples if s.time < disruption_start),
            default=0,
        )
    if baseline == 0:
        baseline = max((s.watched_reachable for s in samples), default=0)

    floor = baseline
    recovery_time: Optional[float] = None
    if disruption_start is not None:
        post = [s for s in samples if s.time >= disruption_start]
        floor = min((s.watched_reachable for s in post), default=baseline)
        threshold = recovery_fraction * baseline
        if disruption_end is not None:
            for sample in post:
                if sample.time >= disruption_end and (
                    sample.watched_reachable >= threshold
                ):
                    recovery_time = sample.time - disruption_end
                    break

    orphan_rate = 0.0
    if total_blocks_mined > 0:
        orphan_rate = max(
            0.0, 1.0 - canonical_blocks / total_blocks_mined
        )

    stats_sum = {
        "dials_timed_out": 0,
        "peers_evicted_unresponsive": 0,
        "peers_banned": 0,
    }
    for name in sorted(network.nodes):
        node_stats = network.nodes[name].stats
        for key in stats_sum:
            stats_sum[key] += node_stats.get(key, 0)

    return RobustnessReport(
        seed=seed,
        schedule_digest=schedule.digest(),
        watched=watched,
        samples=list(samples),
        baseline_reachable=baseline,
        minimum_reachable=floor,
        disruption_end=disruption_end,
        recovery_time=recovery_time,
        recovery_fraction=recovery_fraction,
        orphan_rate=orphan_rate,
        mean_propagation_delay=network.mean_block_propagation_delay(),
        messages_sent=network.messages_sent,
        messages_lost=network.messages_lost,
        messages_undeliverable=network.messages_undeliverable,
        messages_blocked=network.messages_blocked,
        dials_timed_out=stats_sum["dials_timed_out"],
        peers_evicted_unresponsive=stats_sum["peers_evicted_unresponsive"],
        peers_banned=stats_sum["peers_banned"],
        events_processed=network.sim.events_processed,
        fault_log=list(fault_log or []),
    )
