"""Declarative fault schedules.

A :class:`FaultSchedule` is a plain, JSON-serializable list of timed
faults.  It is *data*, not behaviour: the schedule says "cut all
cross-region links between t=900 and t=1500"; the
:class:`~repro.faults.injector.FaultInjector` turns that into simulator
events.  Keeping the schedule declarative buys three things the
robustness experiments need:

* **determinism** — the schedule (plus the run seed) is the complete
  description of the chaos; its :meth:`~FaultSchedule.digest` can key a
  result cache exactly like a :class:`~repro.sim.engine.ForkSimConfig`;
* **sweepability** — a grid of schedules is just a grid of dicts, so the
  harness's content-addressed cache and manifests apply unchanged;
* **reproducibility in print** — EXPERIMENTS.md can state a recovery
  time as "seed S + this schedule" and anyone can replay it.

Times are absolute simulated seconds on the scenario clock.  Window
faults carry ``start``/``duration``; point faults carry ``at``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional, Tuple, Type, Union

__all__ = [
    "CrashNode",
    "ChurnBurst",
    "LinkFault",
    "LatencyFault",
    "SplitFault",
    "SlowPeerFault",
    "ByzantineFault",
    "FaultSchedule",
    "FaultSpec",
]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


@dataclass(frozen=True)
class CrashNode:
    """Take one node offline at ``at``; optionally restart it later.

    A restarted node comes back with an empty peer set and redials from
    its routing table — the model of an operator bouncing a crashed
    client, not of a brand-new identity.
    """

    KIND = "crash"

    at: float
    node: str
    restart_after: Optional[float] = None

    def __post_init__(self) -> None:
        _require(self.at >= 0, "crash time must be >= 0")
        _require(
            self.restart_after is None or self.restart_after > 0,
            "restart_after must be positive when given",
        )

    @property
    def start(self) -> float:
        return self.at

    @property
    def end(self) -> float:
        if self.restart_after is None:
            return self.at
        return self.at + self.restart_after


@dataclass(frozen=True)
class ChurnBurst:
    """Sustained crash/restart churn over a window.

    ``rate`` is expected crashes per simulated second across the whole
    population; victims and crash times are drawn from the injector's
    seeded RNG (over *sorted* node names), so a given seed + schedule
    always produces the identical churn trace.  Every victim restarts
    after ``downtime`` seconds (± ``downtime_jitter`` as a fraction).
    """

    KIND = "churn"

    start: float
    duration: float
    rate: float
    downtime: float = 120.0
    downtime_jitter: float = 0.5

    def __post_init__(self) -> None:
        _require(self.start >= 0, "churn start must be >= 0")
        _require(self.duration > 0, "churn duration must be positive")
        _require(self.rate > 0, "churn rate must be positive")
        _require(self.downtime > 0, "downtime must be positive")
        _require(
            0 <= self.downtime_jitter < 1,
            "downtime_jitter must be in [0, 1)",
        )

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def expected_crashes(self) -> float:
        return self.rate * self.duration


@dataclass(frozen=True)
class LinkFault:
    """Extra packet loss on matching links for a window.

    ``src``/``dst`` select link endpoints; ``None`` is a wildcard.  With
    ``scope="region"`` the selectors name regions (``"na"``, ``"eu"``,
    ``"as"``) instead of nodes, which is how geo-correlated loss — the
    behaviour *Impact of Geo-distribution...* measures — is scripted.
    The fault loss compounds with the network's base ``loss_rate``.
    """

    KIND = "link-loss"

    start: float
    duration: float
    loss_rate: float
    src: Optional[str] = None
    dst: Optional[str] = None
    scope: str = "node"

    def __post_init__(self) -> None:
        _require(self.start >= 0, "fault start must be >= 0")
        _require(self.duration > 0, "fault duration must be positive")
        _require(0 < self.loss_rate <= 1, "loss_rate must be in (0, 1]")
        _require(self.scope in ("node", "region"), "scope: 'node' or 'region'")

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class LatencyFault:
    """Multiply link delays by ``factor`` for a window.

    ``region=None`` spikes every link; otherwise links with either
    endpoint in the region are affected (a congested continent).
    """

    KIND = "latency"

    start: float
    duration: float
    factor: float
    region: Optional[str] = None

    def __post_init__(self) -> None:
        _require(self.start >= 0, "fault start must be >= 0")
        _require(self.duration > 0, "fault duration must be positive")
        _require(self.factor > 0, "latency factor must be positive")

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class SplitFault:
    """Cut every link crossing between ``groups`` for a window.

    Groups are disjoint tuples of node names (``scope="node"``) or
    region names (``scope="region"``).  Endpoints in no group keep full
    connectivity; endpoints in different groups cannot exchange any
    message until the window closes — the sharpest fault the paper's
    recovery mechanisms (fork-blind discovery + redial) must survive.
    """

    KIND = "split"

    start: float
    duration: float
    groups: Tuple[Tuple[str, ...], ...]
    scope: str = "node"

    def __post_init__(self) -> None:
        _require(self.start >= 0, "fault start must be >= 0")
        _require(self.duration > 0, "fault duration must be positive")
        _require(len(self.groups) >= 2, "a split needs at least two groups")
        _require(self.scope in ("node", "region"), "scope: 'node' or 'region'")
        # Normalize nested lists (JSON round-trips) to tuples.
        object.__setattr__(
            self, "groups", tuple(tuple(group) for group in self.groups)
        )
        seen: set = set()
        for group in self.groups:
            _require(len(group) > 0, "split groups must be non-empty")
            for member in group:
                _require(member not in seen, f"{member!r} in two split groups")
                seen.add(member)

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class SlowPeerFault:
    """All messages *sent by* ``node`` gain ``extra_delay`` seconds.

    Models an overloaded or badly-provisioned peer: it still follows the
    protocol, it is just late — the benign end of the misbehaviour
    spectrum, and the one peer scoring must *not* ban."""

    KIND = "slow-peer"

    start: float
    duration: float
    node: str
    extra_delay: float = 2.0

    def __post_init__(self) -> None:
        _require(self.start >= 0, "fault start must be >= 0")
        _require(self.duration > 0, "fault duration must be positive")
        _require(self.extra_delay > 0, "extra_delay must be positive")

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class ByzantineFault:
    """``node`` withholds (or delays) block propagation for a window.

    ``mode="withhold"`` silently drops every block-bearing message the
    node sends (NewBlock, NewBlockHashes, Blocks) — it still gossips
    transactions and answers pings, so liveness checks alone will not
    catch it; ``mode="delay"`` ships blocks ``extra_delay`` late, the
    selfish-ish variant."""

    KIND = "byzantine"

    start: float
    duration: float
    node: str
    mode: str = "withhold"
    extra_delay: float = 10.0

    def __post_init__(self) -> None:
        _require(self.start >= 0, "fault start must be >= 0")
        _require(self.duration > 0, "fault duration must be positive")
        _require(self.mode in ("withhold", "delay"), "mode: withhold|delay")
        _require(self.extra_delay > 0, "extra_delay must be positive")

    @property
    def end(self) -> float:
        return self.start + self.duration


FaultSpec = Union[
    CrashNode,
    ChurnBurst,
    LinkFault,
    LatencyFault,
    SplitFault,
    SlowPeerFault,
    ByzantineFault,
]

_FAULT_TYPES: Dict[str, Type] = {
    cls.KIND: cls
    for cls in (
        CrashNode,
        ChurnBurst,
        LinkFault,
        LatencyFault,
        SplitFault,
        SlowPeerFault,
        ByzantineFault,
    )
}


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered list of faults plus the seed for fault-side draws.

    The ``seed`` salts *only* the randomness the faults themselves
    introduce (churn victim selection, fault-loss coin flips); the
    scenario's own seed keeps governing everything else, so one can
    sweep chaos seeds against a fixed world or vice versa.
    """

    faults: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        known = tuple(_FAULT_TYPES.values())
        for fault in self.faults:
            _require(isinstance(fault, known), f"unknown fault object {fault!r}")

    def __len__(self) -> int:
        return len(self.faults)

    def first_start(self) -> Optional[float]:
        if not self.faults:
            return None
        return min(fault.start for fault in self.faults)

    def last_end(self) -> Optional[float]:
        """When the final fault is fully over (restarts included)."""
        if not self.faults:
            return None
        return max(fault.end for fault in self.faults)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form with explicit ``kind`` tags per fault."""
        entries = []
        for fault in self.faults:
            entry = {"kind": fault.KIND}
            entry.update(asdict(fault))
            entries.append(entry)
        return {"seed": self.seed, "faults": entries}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultSchedule":
        faults = []
        for entry in payload.get("faults", []):
            entry = dict(entry)
            kind = entry.pop("kind", None)
            fault_cls = _FAULT_TYPES.get(kind)
            if fault_cls is None:
                raise ValueError(f"unknown fault kind {kind!r}")
            if fault_cls is SplitFault and "groups" in entry:
                entry["groups"] = tuple(tuple(g) for g in entry["groups"])
            faults.append(fault_cls(**entry))
        return cls(faults=tuple(faults), seed=payload.get("seed", 0))

    def canonical_json(self) -> str:
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":"),
            allow_nan=False,
        )

    def digest(self) -> str:
        """Content address of the chaos: SHA-256 of the canonical JSON."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()
