"""Arming fault schedules against a live network.

Two pieces:

* :class:`ActiveFaults` — the *currently active* fault state the
  transport consults on every send.  :meth:`ActiveFaults.judge` returns
  the message's fate (deliver / lost / blocked) plus any latency
  distortion; :class:`~repro.net.network.Network` attaches it as its
  ``faults`` hook so the baseline (no faults) send path is untouched.
* :class:`FaultInjector` — compiles a declarative
  :class:`~repro.faults.schedule.FaultSchedule` into simulator events:
  window faults activate/deactivate the shared :class:`ActiveFaults`,
  crash faults flip nodes offline/online, and churn bursts expand into a
  deterministic crash/restart trace drawn from a seeded RNG.

Determinism: the injector owns one ``random.Random`` seeded from
``(run seed, schedule seed)``.  Churn expansion happens at arm time
(fixed draw order over sorted node names) and fault-loss coin flips
happen in transport order on the single-threaded simulator, so a given
seed + schedule replays byte-identically.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..net.messages import Blocks, Message, NewBlock, NewBlockHashes
from .schedule import (
    ByzantineFault,
    ChurnBurst,
    CrashNode,
    FaultSchedule,
    LatencyFault,
    LinkFault,
    SlowPeerFault,
    SplitFault,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..net.network import Network

__all__ = ["ActiveFaults", "FaultInjector"]

#: Message classes a withholding byzantine peer refuses to ship.
_BLOCK_BEARING = (NewBlock, NewBlockHashes, Blocks)


class ActiveFaults:
    """The set of fault windows currently open, indexed for the hot path.

    The transport calls :meth:`judge` once per send; everything here is
    O(active faults), and an empty instance judges every message
    "deliver, undistorted" — so an armed-but-idle injector does not
    change trajectories outside fault windows (beyond the schedule's own
    activation events on the clock).
    """

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self.rng = rng or random.Random(0)
        self._link_loss: List[LinkFault] = []
        self._latency: List[LatencyFault] = []
        self._splits: List[Tuple[SplitFault, Dict[str, int]]] = []
        self._slow: Dict[str, float] = {}
        self._byzantine: Dict[str, ByzantineFault] = {}

    # -- window management -------------------------------------------------

    def activate(self, fault) -> None:
        if isinstance(fault, LinkFault):
            self._link_loss.append(fault)
        elif isinstance(fault, LatencyFault):
            self._latency.append(fault)
        elif isinstance(fault, SplitFault):
            membership = {
                member: index
                for index, group in enumerate(fault.groups)
                for member in group
            }
            self._splits.append((fault, membership))
        elif isinstance(fault, SlowPeerFault):
            self._slow[fault.node] = self._slow.get(fault.node, 0.0) + fault.extra_delay
        elif isinstance(fault, ByzantineFault):
            self._byzantine[fault.node] = fault
        else:  # pragma: no cover - schedule validation prevents this
            raise TypeError(f"cannot activate {fault!r}")

    def deactivate(self, fault) -> None:
        if isinstance(fault, LinkFault):
            self._link_loss.remove(fault)
        elif isinstance(fault, LatencyFault):
            self._latency.remove(fault)
        elif isinstance(fault, SplitFault):
            self._splits = [
                entry for entry in self._splits if entry[0] is not fault
            ]
        elif isinstance(fault, SlowPeerFault):
            remaining = self._slow.get(fault.node, 0.0) - fault.extra_delay
            if remaining <= 1e-12:
                self._slow.pop(fault.node, None)
            else:
                self._slow[fault.node] = remaining
        elif isinstance(fault, ByzantineFault):
            if self._byzantine.get(fault.node) is fault:
                del self._byzantine[fault.node]

    @property
    def any_active(self) -> bool:
        return bool(
            self._link_loss
            or self._latency
            or self._splits
            or self._slow
            or self._byzantine
        )

    # -- the hot path ------------------------------------------------------

    @staticmethod
    def _endpoint(selector_scope: str, name: str, region: str) -> str:
        return name if selector_scope == "node" else region

    def judge(
        self,
        source: str,
        source_region: str,
        destination: str,
        destination_region: str,
        message: Message,
    ) -> Tuple[str, float, float]:
        """Fate of one message: ``(verdict, latency_scale, extra_delay)``.

        ``verdict`` is ``"deliver"``, ``"lost"`` (counted as loss) or
        ``"blocked"`` (counted as a fault cut: split or withholding).
        """
        for fault, membership in self._splits:
            side_a = membership.get(
                self._endpoint(fault.scope, source, source_region)
            )
            side_b = membership.get(
                self._endpoint(fault.scope, destination, destination_region)
            )
            if side_a is not None and side_b is not None and side_a != side_b:
                return "blocked", 1.0, 0.0

        byz = self._byzantine.get(source)
        extra = 0.0
        if byz is not None and isinstance(message, _BLOCK_BEARING):
            if byz.mode == "withhold":
                return "blocked", 1.0, 0.0
            extra += byz.extra_delay

        for fault in self._link_loss:
            src_sel = self._endpoint(fault.scope, source, source_region)
            dst_sel = self._endpoint(fault.scope, destination, destination_region)
            if fault.src is not None and fault.src != src_sel:
                continue
            if fault.dst is not None and fault.dst != dst_sel:
                continue
            if self.rng.random() < fault.loss_rate:
                return "lost", 1.0, 0.0

        scale = 1.0
        for fault in self._latency:
            if (
                fault.region is None
                or fault.region in (source_region, destination_region)
            ):
                scale *= fault.factor

        extra += self._slow.get(source, 0.0)
        return "deliver", scale, extra


class FaultInjector:
    """Compile a schedule into events on the network's simulator."""

    def __init__(
        self,
        network: "Network",
        schedule: FaultSchedule,
        seed: int = 0,
    ) -> None:
        self.network = network
        self.schedule = schedule
        # Mix the run seed and the schedule's own seed so either can be
        # swept independently; the constant breaks accidental symmetry
        # with other derived seeds in the scenario layer.
        self.rng = random.Random((seed * 1_000_003 + schedule.seed) ^ 0xFA017)
        self.active = ActiveFaults(self.rng)
        self.armed = False
        #: (time, event) trace for debugging and reports.
        self.log: List[Tuple[float, str]] = []

    # -- arming ------------------------------------------------------------

    def arm(self) -> None:
        """Attach to the network and schedule every fault. Idempotent-ish:
        calling twice would double-schedule, so it refuses."""
        if self.armed:
            raise RuntimeError("injector already armed")
        self.armed = True
        self.network.faults = self.active
        sim = self.network.sim
        for fault in self.schedule.faults:
            if isinstance(fault, CrashNode):
                sim.schedule_at(
                    fault.at, self._crash, fault.node, fault.restart_after
                )
            elif isinstance(fault, ChurnBurst):
                self._expand_churn(fault)
            else:
                sim.schedule_at(fault.start, self._open_window, fault)
                sim.schedule_at(fault.end, self._close_window, fault)

    def _expand_churn(self, burst: ChurnBurst) -> None:
        """Draw the whole churn trace now, with a fixed draw order."""
        expected = burst.expected_crashes
        count = int(expected)
        if self.rng.random() < expected - count:
            count += 1
        sim = self.network.sim
        for _ in range(count):
            at = burst.start + self.rng.random() * burst.duration
            jitter = 1.0 + burst.downtime_jitter * (2 * self.rng.random() - 1)
            downtime = burst.downtime * jitter
            # The victim is drawn at *fire* time from whoever is then
            # online, so bursts compose with crashes already in flight.
            sim.schedule_at(at, self._crash_random, downtime)

    # -- fault actions -----------------------------------------------------

    def _note(self, event: str) -> None:
        self.log.append((self.network.sim.now, event))

    def _trace(self, kind: str, **fields) -> None:
        tracer = self.network._tracer
        if tracer is not None:
            tracer.emit(self.network.sim.now, kind, **fields)
        metrics = (
            self.network.obs.metrics if self.network.obs is not None else None
        )
        if metrics is not None:
            metrics.counter(f"faults.{kind.split('.', 1)[1]}").inc()

    def _open_window(self, fault) -> None:
        self.active.activate(fault)
        self._note(f"open {fault.KIND}")
        self._trace("fault.activated", fault=fault.KIND)

    def _close_window(self, fault) -> None:
        self.active.deactivate(fault)
        self._note(f"close {fault.KIND}")
        self._trace("fault.expired", fault=fault.KIND)

    def _crash(self, name: str, restart_after: Optional[float]) -> None:
        node = self.network.nodes.get(name)
        if node is None or not node.online:
            return
        node.go_offline()
        self._note(f"crash {name}")
        self._trace("fault.activated", fault="crash", node=name)
        if restart_after is not None:
            self.network.sim.schedule(restart_after, self._restart, name)

    def _crash_random(self, downtime: float) -> None:
        online = [
            name
            for name in sorted(self.network.nodes)
            if self.network.nodes[name].online
        ]
        if not online:
            return
        name = online[self.rng.randrange(len(online))]
        self._crash(name, downtime)

    def _restart(self, name: str) -> None:
        node = self.network.nodes.get(name)
        if node is None or node.online:
            return
        node.go_online()
        self._note(f"restart {name}")
        self._trace("fault.expired", fault="crash", node=name)
        # A bounced client redials from its routing table, exactly like
        # the discovery-driven recovery the paper observed post-fork.
        for peer_name in node.routing.random_peers(
            max(1, node.max_peers // 2), node.rng
        ):
            node.dial(peer_name)
