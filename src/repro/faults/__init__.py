"""repro.faults — deterministic fault injection for the P2P experiments.

The paper's headline event *is* a network fault: ~90% of reachable ETC
nodes vanish at the fork and the mesh heals through fork-blind
discovery.  This package turns that single trajectory into a robustness
study: a :class:`FaultSchedule` declares timed faults (node crash and
restart churn, per-link and per-region loss, latency spikes, network
splits, slow and byzantine peers), a :class:`FaultInjector` arms them
against a :class:`~repro.net.network.Network` on the shared
discrete-event clock, and a :class:`RobustnessReport` distils each run
into recovery time, orphan rate, and propagation delay.

Everything is seed-deterministic: the same seed and schedule replay to
byte-identical census trajectories and report digests, in-process or in
a spawned harness worker (``tests/test_faults_determinism.py``).
"""

from .injector import ActiveFaults, FaultInjector
from .report import RobustnessReport, build_robustness_report
from .schedule import (
    ByzantineFault,
    ChurnBurst,
    CrashNode,
    FaultSchedule,
    LatencyFault,
    LinkFault,
    SlowPeerFault,
    SplitFault,
)

__all__ = [
    "ActiveFaults",
    "ByzantineFault",
    "ChurnBurst",
    "CrashNode",
    "FaultInjector",
    "FaultSchedule",
    "LatencyFault",
    "LinkFault",
    "RobustnessReport",
    "SlowPeerFault",
    "SplitFault",
    "build_robustness_report",
]
