"""Genesis construction, receipts, and gas accounting units."""

import pytest

from repro.chain.block import GENESIS_PARENT_HASH
from repro.chain.gas import (
    BLOCK_GAS_LIMIT,
    FRONTIER_SCHEDULE,
    TANGERINE_SCHEDULE,
    TX_CREATE_GAS,
    TX_DATA_NONZERO_GAS,
    TX_DATA_ZERO_GAS,
    TX_GAS,
    intrinsic_gas,
)
from repro.chain.genesis import GENESIS_TIMESTAMP, build_genesis
from repro.chain.receipt import ExecutionStatus, LogEntry, Receipt
from repro.chain.types import Address, Hash32, ether


class TestGenesis:
    def test_alloc_funds_accounts(self):
        rich = Address.from_int(1)
        genesis, state = build_genesis({rich: ether(100)})
        assert state.balance_of(rich) == ether(100)
        assert genesis.header.state_root == state.state_root

    def test_no_alloc(self):
        genesis, state = build_genesis()
        assert state.total_supply() == 0
        assert genesis.is_genesis

    def test_parent_hash_is_zero(self):
        genesis, _ = build_genesis({})
        assert genesis.parent_hash == GENESIS_PARENT_HASH

    def test_custom_parameters(self):
        genesis, _ = build_genesis(
            {}, timestamp=123, difficulty=200_000, gas_limit=1_000_000
        )
        assert genesis.timestamp == 123
        assert genesis.difficulty == 200_000
        assert genesis.header.gas_limit == 1_000_000

    def test_different_allocs_different_genesis_hashes(self):
        """Two networks with different premines cannot even handshake —
        genesis identity is the first compatibility check."""
        a, _ = build_genesis({Address.from_int(1): 1})
        b, _ = build_genesis({Address.from_int(1): 2})
        assert a.block_hash != b.block_hash

    def test_defaults_match_protocol(self):
        genesis, _ = build_genesis({})
        assert genesis.timestamp == GENESIS_TIMESTAMP
        assert genesis.header.gas_limit == BLOCK_GAS_LIMIT


class TestIntrinsicGas:
    def test_plain_transfer(self):
        assert intrinsic_gas(b"", is_create=False) == TX_GAS

    def test_creation_surcharge(self):
        assert intrinsic_gas(b"", is_create=True) == TX_GAS + TX_CREATE_GAS

    def test_data_bytes_priced_by_content(self):
        data = b"\x00\x01\x00\xff"
        expected = (
            TX_GAS + 2 * TX_DATA_ZERO_GAS + 2 * TX_DATA_NONZERO_GAS
        )
        assert intrinsic_gas(data, is_create=False) == expected

    def test_schedules_differ_where_eip150_changed_them(self):
        assert TANGERINE_SCHEDULE.sload > FRONTIER_SCHEDULE.sload
        assert TANGERINE_SCHEDULE.call > FRONTIER_SCHEDULE.call
        assert TANGERINE_SCHEDULE.balance > FRONTIER_SCHEDULE.balance
        # Unchanged entries stay unchanged.
        assert TANGERINE_SCHEDULE.verylow == FRONTIER_SCHEDULE.verylow
        assert TANGERINE_SCHEDULE.sstore_set == FRONTIER_SCHEDULE.sstore_set

    def test_call_gas_cap_flag(self):
        assert not FRONTIER_SCHEDULE.cap_call_gas
        assert TANGERINE_SCHEDULE.cap_call_gas


class TestReceipt:
    def base_kwargs(self):
        return dict(
            tx_hash=Hash32.zero(),
            block_number=1,
            chain_name="ETH",
            status=ExecutionStatus.SUCCESS,
            gas_used=21_000,
            sender=Address.from_int(1),
            to=Address.from_int(2),
        )

    def test_success_flags(self):
        receipt = Receipt(**self.base_kwargs())
        assert receipt.succeeded
        assert not receipt.created_contract

    def test_unknown_status_rejected(self):
        kwargs = self.base_kwargs()
        kwargs["status"] = "exploded"
        with pytest.raises(ValueError):
            Receipt(**kwargs)

    def test_negative_gas_rejected(self):
        kwargs = self.base_kwargs()
        kwargs["gas_used"] = -1
        with pytest.raises(ValueError):
            Receipt(**kwargs)

    def test_creation_receipt(self):
        kwargs = self.base_kwargs()
        kwargs["to"] = None
        kwargs["contract_address"] = Address.from_int(3)
        receipt = Receipt(**kwargs)
        assert receipt.created_contract

    def test_log_entries_carried(self):
        kwargs = self.base_kwargs()
        log = LogEntry(address=Address.from_int(9), topics=(1, 2), data=b"x")
        kwargs["logs"] = (log,)
        receipt = Receipt(**kwargs)
        assert receipt.logs[0].topics == (1, 2)
