"""Fast simulator: traces, block production, stalls, forking."""

import random

import pytest

from repro.chain.config import PRE_FORK_CONFIG
from repro.sim.blockprod import BlockProducer, ChainTrace
from repro.sim.clock import (
    FORK_TIMESTAMP,
    day_to_timestamp,
    format_date,
    month_label,
    timestamp_to_day,
)


def miner(label="pool-a"):
    return lambda rng: label


def make_producer(trace=None, difficulty=14_000_000, seed=1):
    trace = trace if trace is not None else ChainTrace("T")
    return BlockProducer(
        config=PRE_FORK_CONFIG,
        trace=trace,
        start_number=0,
        start_timestamp=1_000_000,
        start_difficulty=difficulty,
        seed=seed,
    )


class TestClock:
    def test_day_round_trip(self):
        assert timestamp_to_day(day_to_timestamp(30)) == pytest.approx(30)

    def test_fork_is_day_zero(self):
        assert timestamp_to_day(FORK_TIMESTAMP) == 0.0

    def test_format_date_is_fork_day(self):
        assert format_date(FORK_TIMESTAMP) == "2016-07-20"

    def test_month_label_matches_paper_axis(self):
        assert month_label(FORK_TIMESTAMP) == "07/16"


class TestChainTrace:
    def test_append_and_access(self):
        trace = ChainTrace("X")
        trace.append(1, 100, 1000, "poolA", tx_count=5, contract_tx_count=2)
        assert len(trace) == 1
        assert trace.miner_of(0) == "poolA"
        assert trace.tx_counts[0] == 5

    def test_label_table_dedups(self):
        trace = ChainTrace("X")
        for i in range(5):
            trace.append(i, 100 + i, 1000, "poolA")
        assert len(trace.miner_labels) == 1

    def test_block_records_round_trip(self):
        trace = ChainTrace("X")
        trace.append(1, 100, 1000, "poolA", 3, 1)
        records = trace.block_records()
        assert records[0].chain == "X"
        assert records[0].miner == "poolA"
        assert records[0].plain_tx_count == 2

    def test_slice_by_time(self):
        trace = ChainTrace("X")
        for i in range(10):
            trace.append(i, 100 + 10 * i, 1000, "m")
        window = trace.slice_by_time(120, 150)
        assert list(window) == [2, 3, 4]

    def test_slice_by_time_half_open_boundaries(self):
        trace = ChainTrace("X")
        for i in range(10):
            trace.append(i, 100 + 10 * i, 1000, "m")
        # A block exactly at start_ts is included; exactly at end_ts is
        # excluded — [start, end) matches blocks_between's contract.
        assert list(trace.slice_by_time(120, 140)) == [2, 3]
        assert list(trace.slice_by_time(0, 100)) == []
        assert list(trace.slice_by_time(190, 10_000)) == [9]
        assert list(trace.slice_by_time(145, 145)) == []

    def test_forked_from_copies_history(self):
        parent = ChainTrace("pre")
        parent.append(1, 100, 1000, "m")
        child = ChainTrace.forked_from(parent, "ETH")
        child.append(2, 114, 1000, "m2")
        assert len(parent) == 1  # parent untouched
        assert len(child) == 2
        assert child.chain == "ETH"
        assert child.miner_of(0) == "m"


class TestBlockProducer:
    def test_produces_blocks_until_deadline(self):
        producer = make_producer(difficulty=14_000_000)
        count = producer.run_until(
            1_000_000 + 3600, hashrate=1e6, miner_sampler=miner()
        )
        # 14s target → ~257 blocks/hour.
        assert 180 < count < 350

    def test_difficulty_seeks_equilibrium(self):
        # Start far above equilibrium for this hashrate.
        producer = make_producer(difficulty=140_000_000)
        producer.run_until(1_000_000 + 86_400, hashrate=1e6,
                           miner_sampler=miner())
        assert producer.difficulty < 30_000_000

    def test_zero_hashrate_stalls_without_blocks(self):
        producer = make_producer()
        count = producer.run_until(1_000_000 + 3600, hashrate=0,
                                   miner_sampler=miner())
        assert count == 0
        assert producer.clock == 1_000_000 + 3600
        assert producer.timestamp == 1_000_000  # head unchanged

    def test_stall_gap_reaches_the_next_block_delta(self):
        """After an idle stretch, the first new block carries the whole
        gap — the difficulty free-fall trigger."""
        producer = make_producer(difficulty=14_000_000)
        producer.run_until(1_000_000 + 3600, hashrate=0, miner_sampler=miner())
        difficulty_before = producer.difficulty
        producer.advance_one(hashrate=1e6, miner_sampler=miner())
        delta = producer.timestamp - 1_000_000
        assert delta >= 3600
        assert producer.difficulty < difficulty_before

    def test_timestamps_strictly_increase(self):
        producer = make_producer(difficulty=100_000)
        producer.run_until(1_000_000 + 600, hashrate=1e6, miner_sampler=miner())
        timestamps = list(producer.trace.timestamps)
        assert all(b > a for a, b in zip(timestamps, timestamps[1:]))

    def test_deterministic_per_seed(self):
        a = make_producer(seed=9)
        a.run_until(1_000_000 + 3600, 1e6, miner(), None)
        b = make_producer(seed=9)
        b.run_until(1_000_000 + 3600, 1e6, miner(), None)
        assert list(a.trace.timestamps) == list(b.trace.timestamps)

    def test_tx_sampler_fills_blocks(self):
        producer = make_producer()

        def sampler(rng, gap):
            return 10, 3

        producer.run_until(1_000_000 + 600, 1e6, miner(), sampler)
        assert all(c == 10 for c in producer.trace.tx_counts)
        assert all(c == 3 for c in producer.trace.contract_tx_counts)

    def test_runaway_guard(self):
        producer = make_producer(difficulty=140)  # absurdly easy
        with pytest.raises(RuntimeError):
            producer.run_until(
                1_000_000 + 86_400 * 300, 1e12, miner(), max_blocks=1000
            )

    def test_advance_one_rejects_zero_hashrate(self):
        with pytest.raises(ValueError):
            make_producer().advance_one(0, miner())
