"""The future-work extensions: intent classification, miner flows,
transient forks."""

import pytest

from repro.core.classification import (
    ClassificationReport,
    EchoVerdict,
    IntentClassifier,
)
from repro.core.echoes import Echo, EchoDetector
from repro.core.flows import daily_hashrate_series, estimate_flows
from repro.core.timeseries import TimeSeries
from repro.data.windows import DAY, HOUR
from repro.sim.blockprod import ChainTrace


def echo(lag, origin_ts=1_000_000, tx_hash=b"h1", same_time=None):
    return Echo(
        tx_hash=tx_hash,
        origin_chain="ETH",
        echo_chain="ETC",
        origin_timestamp=origin_ts,
        echo_timestamp=origin_ts + lag,
        same_time=(lag <= 900) if same_time is None else same_time,
    )


class TestIntentClassifier:
    def test_instant_echo_is_benign(self):
        classifier = IntentClassifier()
        assert classifier.score(echo(lag=60)) < 0.5

    def test_day_late_echo_is_malicious(self):
        classifier = IntentClassifier()
        assert classifier.score(echo(lag=DAY)) > 0.8

    def test_score_monotone_in_lag(self):
        classifier = IntentClassifier()
        lags = [60, 900, HOUR, 4 * HOUR, DAY]
        scores = [classifier.score(echo(lag=lag)) for lag in lags]
        assert scores == sorted(scores)

    def test_post_protection_echo_leans_malicious(self):
        neutral = IntentClassifier()
        aware = IntentClassifier(protection_timestamp=500_000)
        # Same mid-range lag: protection awareness breaks the tie upward.
        mid = echo(lag=30 * 60)
        assert aware.score(mid) > neutral.score(mid)

    def test_repeat_victim_raises_score(self):
        sender = b"\xaa" * 20
        sender_of = {bytes([i]): sender for i in range(6)}
        classifier = IntentClassifier(sender_of=sender_of)
        echoes = [
            echo(lag=30 * 60, tx_hash=bytes([i]), origin_ts=1_000_000 + i)
            for i in range(6)
        ]
        repeat_report = classifier.classify(echoes)
        single_report = IntentClassifier().classify(echoes[:1])
        assert (
            repeat_report.verdicts[0].malicious_score
            > single_report.verdicts[0].malicious_score
        )

    def test_classify_report_partitions(self):
        classifier = IntentClassifier()
        report = classifier.classify(
            [echo(lag=60, tx_hash=b"a"), echo(lag=DAY, tx_hash=b"b")]
        )
        assert len(report.benign) == 1
        assert len(report.malicious) == 1
        assert report.malicious_fraction() == 0.5
        assert sum(report.daily_malicious_counts().values()) == 1

    def test_accuracy_against_workload_ground_truth(self):
        """Validate against the generator's known intent labels."""
        from repro.scenarios.replay_attack import (
            ReplayWorkload,
            ReplayWorkloadConfig,
        )

        workload = ReplayWorkload(ReplayWorkloadConfig(days=40, seed=17))
        records, _ = workload.generate([30_000.0] * 40, [12_000.0] * 40)
        detector = EchoDetector()
        detector.observe_records(records)
        report = IntentClassifier().classify(detector.echoes)

        intentional = [v for v in report.verdicts if v.echo.same_time]
        scavenged = [v for v in report.verdicts if not v.echo.same_time]
        benign_recall = sum(
            1 for v in intentional if v.label == "benign"
        ) / len(intentional)
        malicious_recall = sum(
            1 for v in scavenged if v.label == "malicious"
        ) / len(scavenged)
        assert benign_recall > 0.95
        assert malicious_recall > 0.6

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            IntentClassifier(benign_lag_seconds=0)


class TestMinerFlows:
    def test_hashrate_inference_identity(self):
        """blocks x difficulty / time recovers the driving hashrate."""
        trace = ChainTrace("X")
        # 14 s blocks at difficulty 14e6 → hashrate 1e6.
        ts = 0
        for index in range(2 * DAY // 14):
            ts += 14
            trace.append(index, ts, 14_000_000, "m")
        series = daily_hashrate_series(trace)
        assert series.values[0] == pytest.approx(1e6, rel=0.02)

    def test_pure_migration_detected_exactly(self):
        timestamps = [d * DAY for d in range(5)]
        a = TimeSeries(timestamps, [100.0, 100.0, 90.0, 80.0, 80.0])
        b = TimeSeries(timestamps, [10.0, 10.0, 20.0, 30.0, 30.0])
        flows = estimate_flows(a, b)
        migration = sum(f.migration for f in flows.flows)
        assert migration == pytest.approx(20.0)
        assert all(f.entry_exit == pytest.approx(0.0) for f in flows.flows)

    def test_pure_entry_is_not_migration(self):
        timestamps = [d * DAY for d in range(3)]
        a = TimeSeries(timestamps, [100.0, 110.0, 120.0])
        b = TimeSeries(timestamps, [10.0, 11.0, 12.0])
        flows = estimate_flows(a, b)
        assert all(f.migration == 0.0 for f in flows.flows)
        assert sum(f.entry_exit for f in flows.flows) == pytest.approx(22.0)

    def test_direction_sign_convention(self):
        timestamps = [0, DAY]
        a = TimeSeries(timestamps, [100.0, 90.0])
        b = TimeSeries(timestamps, [10.0, 20.0])
        flows = estimate_flows(a, b, pair=("ETH", "ETC"))
        assert flows.flows[0].migration > 0  # toward ETC (the second chain)
        # Swapping the argument order flips the sign: the same physical
        # flow is now *away from* the second chain (ETH).
        reverse = estimate_flows(b, a, pair=("ETC", "ETH"))
        assert reverse.flows[0].migration == pytest.approx(
            -flows.flows[0].migration
        )

    def test_window_totals(self):
        timestamps = [d * DAY for d in range(4)]
        a = TimeSeries(timestamps, [100.0, 90.0, 90.0, 85.0])
        b = TimeSeries(timestamps, [0.0, 10.0, 10.0, 15.0])
        flows = estimate_flows(a, b)
        assert flows.total_migration_toward_second(0, 4 * DAY) == pytest.approx(15.0)
        assert flows.total_migration_toward_second(2 * DAY, 4 * DAY) == pytest.approx(5.0)

    def test_recovers_fork_return_from_simulation(self):
        """Applied to simulated chains, the estimator sees the post-fork
        return of miners to ETC (the paper's Figure 1 hypothesis)."""
        from repro.sim.engine import ForkSimConfig, ForkSimulation

        result = ForkSimulation(
            ForkSimConfig(days=25, prefork_days=3, seed=31)
        ).run()
        eth = daily_hashrate_series(result.eth_trace, result.fork_timestamp)
        etc = daily_hashrate_series(result.etc_trace, result.fork_timestamp)
        flows = estimate_flows(eth, etc)
        measured = flows.total_migration_toward_second(
            result.fork_timestamp + 3 * DAY, result.fork_timestamp + 21 * DAY
        )
        truth = (
            result.daily_hashrate["ETC"][20] - result.daily_hashrate["ETC"][3]
        )
        assert measured > 0
        # Conservative lower bound: detects a meaningful share of the
        # true inflow, never more than it plus noise.
        assert 0.25 * truth < measured < 1.5 * truth


class TestTransientForks:
    @pytest.fixture(scope="class")
    def outcomes(self):
        from repro.scenarios.transient_forks import (
            TransientForkConfig,
            latency_sweep,
        )

        return latency_sweep(
            [0.1, 3.0], TransientForkConfig(duration=3600.0, seed=21)
        )

    def test_orphan_rate_increases_with_latency(self, outcomes):
        low, high = outcomes
        assert high.orphan_rate > low.orphan_rate

    def test_low_latency_rate_near_theory(self, outcomes):
        low, _ = outcomes
        assert low.orphan_rate < 0.05
        assert low.canonical_blocks > 100

    def test_transient_forks_resolve(self, outcomes):
        """Unlike the DAO fork, these forks leave one canonical chain:
        orphans exist but every node follows the same head lineage at low
        latency."""
        low, _ = outcomes
        assert low.converged
