"""LOG opcodes end-to-end, BLOCKHASH, and other interpreter corners."""

import pytest

from repro.chain.config import ETH_CONFIG
from repro.chain.crypto import PrivateKey
from repro.chain.processor import apply_transaction
from repro.chain.state import StateDB
from repro.chain.transaction import Transaction, sign_transaction
from repro.chain.types import Address, Hash32, ether
from repro.evm.opcodes import assemble
from repro.evm.vm import EVM, BlockEnvironment, Message

CALLER = Address.from_int(0xAA)
CONTRACT = Address.from_int(0xBB)


def execute(source, gas=1_000_000, env=None, state=None):
    state = state or StateDB()
    state.credit(CALLER, ether(1))
    state.set_code(CONTRACT, assemble(source))
    evm = EVM(state, env or BlockEnvironment())
    return evm.execute(
        Message(sender=CALLER, to=CONTRACT, value=0, data=b"", gas=gas)
    ), state


class TestLogs:
    def test_log0_captures_data(self):
        result, _ = execute(
            "0xdeadbeef PUSH1 0 MSTORE PUSH1 4 PUSH1 28 LOG0 STOP"
        )
        assert result.success
        assert len(result.logs) == 1
        log = result.logs[0]
        assert log.address == CONTRACT
        assert log.topics == ()
        assert log.data == bytes.fromhex("deadbeef")

    def test_log2_captures_topics_in_order(self):
        # LOG2 pops offset, size, topic1, topic2.
        result, _ = execute("7 9 PUSH1 0 PUSH1 0 LOG2 STOP")
        assert result.success
        assert result.logs[0].topics == (9, 7)

    def test_reverted_frame_drops_its_logs(self):
        result, _ = execute(
            "PUSH1 0 PUSH1 0 LOG0 PUSH1 0 PUSH1 0 REVERT"
        )
        assert not result.success
        assert result.logs == []

    def test_failed_inner_call_drops_only_inner_logs(self):
        state = StateDB()
        inner = Address.from_int(0xCC)
        state.set_code(
            inner,
            assemble("PUSH1 0 PUSH1 0 LOG0 PUSH1 0 PUSH1 0 REVERT"),
        )
        source = (
            "PUSH1 0 PUSH1 0 LOG0 "  # outer log survives
            f"0 0 0 0 0 {int.from_bytes(inner, 'big')} GAS CALL POP STOP"
        )
        result, _ = execute(source, state=state)
        assert result.success
        assert len(result.logs) == 1
        assert result.logs[0].address == CONTRACT

    def test_logs_reach_the_receipt(self):
        sender = PrivateKey.from_seed("logs:sender")
        state = StateDB()
        state.credit(sender.address, ether(1))
        state.set_code(CONTRACT, assemble("5 PUSH1 0 PUSH1 0 LOG1 STOP"))
        tx = sign_transaction(
            sender,
            Transaction(nonce=0, gas_price=10**9, gas_limit=100_000,
                        to=CONTRACT, value=0, data=b"\x01"),
        )
        receipt = apply_transaction(
            state, tx, ETH_CONFIG, BlockEnvironment(block_number=1)
        )
        assert receipt.succeeded
        assert receipt.logs[0].topics == (5,)

    def test_log_gas_charged_per_topic_and_byte(self):
        no_data, _ = execute("PUSH1 0 PUSH1 0 LOG0 STOP")
        with_data, _ = execute("PUSH1 32 PUSH1 0 LOG0 STOP")
        with_topic, _ = execute("1 PUSH1 0 PUSH1 0 LOG1 STOP")
        assert with_data.gas_used > no_data.gas_used
        assert with_topic.gas_used > no_data.gas_used


class TestBlockhash:
    def test_recent_block_resolves(self):
        env = BlockEnvironment(block_number=100)
        result, _ = execute(
            "PUSH1 99 BLOCKHASH PUSH1 0 MSTORE PUSH1 32 PUSH1 0 RETURN",
            env=env,
        )
        value = int.from_bytes(result.return_data, "big")
        assert value == int.from_bytes(env.block_hash(99), "big")

    def test_future_and_ancient_blocks_are_zero(self):
        env = BlockEnvironment(block_number=1000)
        for number in (1000, 1001, 500):
            result, _ = execute(
                f"{number} BLOCKHASH PUSH1 0 MSTORE "
                "PUSH1 32 PUSH1 0 RETURN",
                env=env,
            )
            assert int.from_bytes(result.return_data, "big") == 0

    def test_custom_block_hash_fn(self):
        marker = Hash32(b"\x42" * 32)
        env = BlockEnvironment(
            block_number=10, block_hash_fn=lambda n: marker
        )
        result, _ = execute(
            "PUSH1 9 BLOCKHASH PUSH1 0 MSTORE PUSH1 32 PUSH1 0 RETURN",
            env=env,
        )
        assert result.return_data == bytes(marker)


class TestMiscSemantics:
    def test_exp_gas_scales_with_exponent_size(self):
        small, _ = execute("1 2 EXP POP STOP")
        large, _ = execute("PUSH32 {0} 2 EXP POP STOP".format(2**255))
        assert large.gas_used > small.gas_used

    def test_msize_tracks_memory(self):
        result, _ = execute(
            "1 PUSH1 64 MSTORE MSIZE PUSH1 0 MSTORE "
            "PUSH1 32 PUSH1 0 RETURN"
        )
        assert int.from_bytes(result.return_data, "big") == 96

    def test_ops_executed_counter(self):
        result, _ = execute("1 2 ADD POP STOP")
        assert result.ops_executed == 5

    def test_invalid_opcode_halts_exceptionally(self):
        state = StateDB()
        state.credit(CALLER, ether(1))
        state.set_code(CONTRACT, b"\xfe")  # undefined opcode
        evm = EVM(state, BlockEnvironment())
        result = evm.execute(
            Message(sender=CALLER, to=CONTRACT, value=0, data=b"",
                    gas=10_000)
        )
        assert not result.success
        assert result.gas_left == 0

    def test_value_call_stipend_lets_plain_receiver_log(self):
        """A zero-gas value CALL still forwards the 2300 stipend —
        enough for a logging fallback, the pattern wallets relied on."""
        state = StateDB()
        receiver = Address.from_int(0xDD)
        state.set_code(receiver, assemble("PUSH1 0 PUSH1 0 LOG0 STOP"))
        source = (
            f"0 0 0 0 100 {int.from_bytes(receiver, 'big')} PUSH1 0 CALL "
            "PUSH1 0 MSTORE PUSH1 32 PUSH1 0 RETURN"
        )
        result, state = execute(source, state=state)
        # We sent value from the contract: fund it first.
        # (The contract had no balance, so the inner call fails cleanly.)
        assert result.success

    def test_value_call_with_funded_contract_uses_stipend(self):
        state = StateDB()
        receiver = Address.from_int(0xDD)
        state.set_code(receiver, assemble("PUSH1 0 PUSH1 0 LOG0 STOP"))
        state.credit(CONTRACT, 1_000)
        source = (
            f"0 0 0 0 100 {int.from_bytes(receiver, 'big')} PUSH1 0 CALL "
            "PUSH1 0 MSTORE PUSH1 32 PUSH1 0 RETURN"
        )
        result, state = execute(source, state=state)
        assert result.success
        assert int.from_bytes(result.return_data, "big") == 1  # call ok
        assert state.balance_of(receiver) == 100
        assert len(result.logs) == 1  # the stipend paid for the LOG0
