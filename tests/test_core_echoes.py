"""Echo (rebroadcast) detection — Figure 4's machinery."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.naive_echo import naive_echo_join
from repro.core.echoes import EchoDetector, EchoReport
from repro.core.timeseries import TimeSeries
from repro.data.records import TxRecord
from repro.data.windows import DAY


def sighting(chain, tx_hash, timestamp, **kwargs):
    return TxRecord(
        chain=chain, tx_hash=tx_hash, block_number=0, timestamp=timestamp,
        sender=b"\x01" * 20, to=b"\x02" * 20, value=1,
        is_contract=False, replay_protected=False, **kwargs
    )


class TestDetector:
    def test_duplicate_across_chains_is_an_echo(self):
        detector = EchoDetector()
        assert detector.observe("ETH", b"h1", 100) is None
        echo = detector.observe("ETC", b"h1", 5000 + DAY)
        assert echo is not None
        assert echo.origin_chain == "ETH"
        assert echo.echo_chain == "ETC"
        assert not echo.same_time

    def test_same_chain_duplicate_is_not_an_echo(self):
        detector = EchoDetector()
        detector.observe("ETH", b"h1", 100)
        assert detector.observe("ETH", b"h1", 200) is None

    def test_direction_follows_first_sighting(self):
        detector = EchoDetector()
        detector.observe("ETC", b"h1", 100)
        echo = detector.observe("ETH", b"h1", 100 + 2 * DAY)
        assert (echo.origin_chain, echo.echo_chain) == ("ETC", "ETH")

    def test_same_time_window_classification(self):
        detector = EchoDetector(same_time_window=3600)
        detector.observe("ETH", b"h1", 100)
        echo = detector.observe("ETC", b"h1", 200)
        assert echo.same_time
        detector.observe("ETH", b"h2", 100)
        echo2 = detector.observe("ETC", b"h2", 100 + 7200)
        assert not echo2.same_time

    def test_repeat_sightings_reported_once(self):
        detector = EchoDetector()
        detector.observe("ETH", b"h1", 100)
        assert detector.observe("ETC", b"h1", 200) is not None
        assert detector.observe("ETC", b"h1", 300) is None
        assert len(detector.echoes) == 1

    def test_lag_recorded(self):
        detector = EchoDetector()
        detector.observe("ETH", b"h1", 100)
        echo = detector.observe("ETC", b"h1", 500)
        assert echo.lag_seconds == 400

    def test_daily_counts_series(self):
        detector = EchoDetector()
        for index, offset in enumerate([0, 0, DAY]):
            tx_hash = bytes([index]) * 4
            detector.observe("ETH", tx_hash, offset + 10)
            detector.observe("ETC", tx_hash, offset + 20)
        series = detector.daily_counts(chain="ETC")
        assert series.values == [2.0, 1.0]

    def test_direction_totals(self):
        detector = EchoDetector()
        detector.observe("ETH", b"a", 0)
        detector.observe("ETC", b"a", 1)
        detector.observe("ETH", b"b", 0)
        detector.observe("ETC", b"b", 1)
        detector.observe("ETC", b"c", 0)
        detector.observe("ETH", b"c", 1)
        totals = detector.direction_totals()
        assert totals[("ETH", "ETC")] == 2
        assert totals[("ETC", "ETH")] == 1

    def test_observe_records_stream(self):
        detector = EchoDetector()
        records = [
            sighting("ETH", b"x", 100),
            sighting("ETC", b"x", 300),
            sighting("ETC", b"y", 400),
        ]
        assert detector.observe_records(records) == 1
        assert detector.sightings == 3


class TestEchoReport:
    def test_percentage_uses_chain_totals(self):
        detector = EchoDetector()
        detector.observe("ETH", b"a", 10)
        detector.observe("ETC", b"a", 20)
        # 1 echo on a day with 4 total ETC transactions = 25%.
        totals = TimeSeries([0], [4.0])
        report = EchoReport.build(detector, "ETC", totals)
        assert report.percent_of_transactions.values == [25.0]

    def test_days_without_totals_skipped(self):
        detector = EchoDetector()
        detector.observe("ETH", b"a", 10)
        detector.observe("ETC", b"a", 20)
        report = EchoReport.build(detector, "ETC", TimeSeries([], []))
        assert report.percent_of_transactions.is_empty()


class TestAgainstNaiveBaseline:
    """The streaming detector and the two-pass join must agree exactly."""

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["ETH", "ETC"]),
                st.integers(min_value=0, max_value=30),   # hash id
                st.integers(min_value=0, max_value=10 * DAY),
            ),
            max_size=120,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_equivalence_on_random_streams(self, events):
        records = [
            sighting(chain, bytes([h]) * 4, ts) for chain, h, ts in events
        ]
        # Attribution on *equal* timestamps is inherently ambiguous (the
        # "same time" class exists for this reason); fix the feed order
        # deterministically so both detectors break ties the same way.
        records.sort(key=lambda r: (r.timestamp, r.chain))

        detector = EchoDetector()
        detector.observe_records(records)
        streaming = {
            (e.tx_hash, e.echo_chain): (e.origin_chain, e.same_time)
            for e in detector.echoes
        }
        naive = {
            (e.tx_hash, e.echo_chain): (e.origin_chain, e.same_time)
            for e in naive_echo_join(records)
        }
        # The streaming detector attributes by first *feed order*, the
        # naive join by minimum timestamp; on a time-sorted stream with
        # distinct timestamps they agree on the full echo set.
        assert set(streaming) == set(naive)

    def test_known_example_identical(self):
        records = [
            sighting("ETH", b"a", 100),
            sighting("ETC", b"a", 50_000 + DAY),
            sighting("ETC", b"b", 10),
            sighting("ETH", b"b", 600),
            sighting("ETH", b"c", 5),
        ]
        records.sort(key=lambda r: r.timestamp)
        detector = EchoDetector()
        detector.observe_records(records)
        naive = naive_echo_join(records)
        assert len(detector.echoes) == len(naive) == 2
        for mine, theirs in zip(
            sorted(detector.echoes, key=lambda e: e.tx_hash),
            sorted(naive, key=lambda e: e.tx_hash),
        ):
            assert mine == theirs
