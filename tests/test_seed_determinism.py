"""Cross-process seed determinism — the cache-key correctness precondition.

The harness equates "same config hash" with "same experiment", which is
only sound if an identical :class:`ForkSimConfig` yields bit-identical
results wherever it runs: twice in this process, or in a spawned
subprocess that re-imports everything from scratch.  The sim and
scenario layers therefore derive every RNG from explicit config seeds
(no module-level RNG state, no ``PYTHONHASHSEED``-dependent iteration);
these tests pin that property down to the digest level.
"""

import pickle

import pytest

from repro.harness import NullProgress, WorkerPool, simulate_spec
from repro.scenarios.partition_event import (
    PartitionScenario,
    PartitionScenarioConfig,
)
from repro.sim.engine import ForkSimConfig, ForkSimulation, run_fork_sim

SMALL = ForkSimConfig(days=3, prefork_days=2)


class TestInProcessDeterminism:
    def test_identical_configs_identical_digests(self):
        assert (
            ForkSimulation(SMALL).run().digest()
            == ForkSimulation(SMALL).run().digest()
        )

    def test_run_fork_sim_matches_class_api(self):
        assert (
            run_fork_sim(SMALL).digest() == ForkSimulation(SMALL).run().digest()
        )

    def test_seed_changes_digest(self):
        other = ForkSimConfig(days=3, prefork_days=2, seed=SMALL.seed + 1)
        assert run_fork_sim(SMALL).digest() != run_fork_sim(other).digest()

    def test_config_roundtrips_through_dict(self):
        restored = ForkSimConfig.from_dict(SMALL.to_dict())
        assert restored == SMALL
        assert restored.to_dict() == SMALL.to_dict()

    def test_result_is_picklable_and_digest_survives(self):
        result = run_fork_sim(SMALL)
        clone = pickle.loads(pickle.dumps(result))
        assert clone.digest() == result.digest()

    def test_partition_scenario_deterministic(self):
        config = PartitionScenarioConfig(
            num_nodes=14, num_miners=4, post_fork_horizon=900.0
        )
        a = PartitionScenario(config).run()
        b = PartitionScenario(config).run()
        assert a.snapshots == b.snapshots
        assert a.incompatible_disconnects == b.incompatible_disconnects


class TestSubprocessDeterminism:
    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_subprocess_digest_matches_in_process(self, start_method):
        """The regression test the harness cache stands on.

        ``spawn`` is the strict variant: the worker re-imports the
        package in a fresh interpreter (fresh hash randomization, fresh
        module state), so any hidden global RNG or hash-order dependence
        would change the digest.
        """
        pool = WorkerPool(
            workers=2,
            cache_dir=None,
            timeout=300.0,
            retries=0,
            progress=NullProgress(),
            start_method=start_method,
        )
        if pool.workers == 1:
            pytest.skip("multiprocessing unavailable on this host")
        spec = simulate_spec(SMALL)
        # Two specs so the pool genuinely exercises the parallel path
        # (a single job short-circuits to serial execution).
        results = pool.run([spec, spec])
        assert all(r.record.status == "ok" for r in results)
        local_digest = run_fork_sim(SMALL).digest()
        for result in results:
            assert result.value.digest() == local_digest
