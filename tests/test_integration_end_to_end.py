"""End-to-end integration: the full reproduction pipeline at test scale.

Runs the fork simulation, the replay workload, the echo detector, and the
figure generators together — the same pipeline the benchmarks run at the
paper's full nine-month scale — and asserts the paper's observations hold
in miniature.
"""

import pytest

from repro.core import (
    EchoDetector,
    figure_1,
    figure_2,
    figure_3,
    figure_4,
    figure_5,
)
from repro.core.metrics import trace_transactions_per_day
from repro.core.observations import (
    observation_2,
    observation_3,
    observation_4,
)
from repro.data.windows import DAY
from repro.scenarios.replay_attack import ReplayWorkload, ReplayWorkloadConfig
from repro.sim.engine import ForkSimConfig, ForkSimulation


@pytest.fixture(scope="module")
def pipeline():
    result = ForkSimulation(
        ForkSimConfig(days=120, prefork_days=7, seed=99)
    ).run()
    eth_daily = trace_transactions_per_day(
        result.eth_trace, result.fork_timestamp
    )
    etc_daily = trace_transactions_per_day(
        result.etc_trace, result.fork_timestamp
    )
    workload = ReplayWorkload(ReplayWorkloadConfig(days=120, seed=98))
    records, truth = workload.generate(eth_daily.values, etc_daily.values)
    detector = EchoDetector()
    detector.observe_records(records)
    return result, detector, truth


class TestObservations:
    def test_observation_2_stabilization(self, pipeline):
        result, _, _ = pipeline
        observation = observation_2(result)
        assert observation.holds, observation.details

    def test_observation_3_divergent_growth(self, pipeline):
        result, _, _ = pipeline
        observation = observation_3(result)
        assert observation.details["difficulty_ratio_at_end"] > 5

    def test_observation_4_market_efficiency(self, pipeline):
        result, _, _ = pipeline
        observation = observation_4(result)
        assert observation.holds, observation.details

    def test_echo_detector_matches_injected_truth(self, pipeline):
        _, detector, truth = pipeline
        assert len(detector.echoes) == truth.total()


class TestFigures:
    def test_figure_1_series_present_and_shaped(self, pipeline):
        result, _, _ = pipeline
        figure = figure_1(result)
        assert set(figure.series) == {
            "ETH blocks/hr", "ETH difficulty", "ETH delta(s)",
            "ETC blocks/hr", "ETC difficulty", "ETC delta(s)",
        }
        etc_rate = figure.series["ETC blocks/hr"]
        # The collapse: some post-fork hour produced almost nothing.
        post = etc_rate.clip_time(
            result.fork_timestamp, result.fork_timestamp + DAY
        )
        assert post.min() < 20
        # The recovery: rates back near target within the month shown.
        assert etc_rate.values[-1] > 150

    def test_figure_2_usage_gap(self, pipeline):
        result, _, _ = pipeline
        figure = figure_2(result)
        eth_tx = figure.series["ETH tx/day"].mean()
        etc_tx = figure.series["ETC tx/day"].mean()
        assert 2.0 < eth_tx / etc_tx < 3.5
        assert figure.series["ETH contract %"].mean() > 20

    def test_figure_3_correlation_noted(self, pipeline):
        result, _, _ = pipeline
        figure = figure_3(result)
        assert "pearson correlation" in figure.notes
        correlation = float(
            figure.notes.split("pearson correlation = ")[1].split(",")[0]
        )
        assert correlation > 0.85

    def test_figure_4_echo_panels(self, pipeline):
        result, detector, truth = pipeline
        figure = figure_4(result, detector)
        into_etc = figure.series["into ETC/day"]
        assert sum(into_etc.values) == truth.echoes_into["ETC"]
        percent = figure.series["% of ETC txs"]
        # The paper's top panel: an initial surge where a large share of
        # ETC's transactions are echoes, decaying over time.  (The last
        # simulated day may fall inside an October/November bump window,
        # so the decay is checked against the final month's floor.)
        assert percent.values[0] > 20
        assert min(percent.values[-30:]) < percent.values[0] / 3

    def test_figure_5_concentration_gap_then_convergence(self, pipeline):
        result, _, _ = pipeline
        figure = figure_5(result)
        eth_top5 = figure.series["ETH top 5"]
        etc_top5 = figure.series["ETC top 5"]
        early_eth = sum(eth_top5.values[:14]) / 14
        early_etc = sum(etc_top5.values[:14]) / 14
        late_etc = sum(etc_top5.values[-14:]) / 14
        assert early_eth - early_etc > 15  # ETC starts far less concentrated
        assert late_etc > early_etc + 10  # and coalesces upward

    def test_figure_render_and_csv(self, pipeline, tmp_path):
        result, _, _ = pipeline
        figure = figure_1(result)
        text = figure.render(sample_days=3)
        assert "Figure 1" in text
        assert "2016-07" in text
        rows = figure.write_csv(tmp_path / "fig1.csv")
        assert rows > 0
        assert (tmp_path / "fig1.csv").exists()
