"""Attack-window analysis: Nakamoto races and the vulnerability window."""

import pytest

from repro.scenarios.attack_window import (
    AttackAssessment,
    assess_attack_window,
    catchup_probability,
    simulate_race,
    vulnerability_window_days,
)


class TestCatchupProbability:
    def test_majority_always_wins(self):
        assert catchup_probability(0.51, 6) == 1.0
        assert catchup_probability(0.9, 100) == 1.0

    def test_zero_deficit_is_certain(self):
        assert catchup_probability(0.1, 0) == 1.0

    def test_nakamoto_values(self):
        # q=0.1, z=6: (0.1/0.9)^6 ≈ 1.88e-6 — the white paper's table.
        assert catchup_probability(0.1, 6) == pytest.approx(
            (1 / 9) ** 6
        )
        assert catchup_probability(0.3, 6) == pytest.approx(
            (3 / 7) ** 6
        )

    def test_monotone_in_share_and_deficit(self):
        assert catchup_probability(0.3, 6) > catchup_probability(0.2, 6)
        assert catchup_probability(0.3, 6) > catchup_probability(0.3, 8)

    def test_invalid_share(self):
        with pytest.raises(ValueError):
            catchup_probability(1.5, 6)

    def test_monte_carlo_agrees_with_formula(self):
        for share, deficit in ((0.3, 3), (0.4, 4), (0.45, 2)):
            analytic = catchup_probability(share, deficit)
            empirical = simulate_race(share, deficit, trials=4000)
            assert empirical == pytest.approx(analytic, abs=0.04)

    def test_monte_carlo_majority(self):
        assert simulate_race(0.6, 6, trials=500) == 1.0


class TestAssessment:
    def make(self, honest=(1.0, 2.0, 10.0), attacker_share=0.02,
             prefork=100.0):
        return assess_attack_window(
            minority_hashrate=honest,
            minority_difficulty=[h * 14 for h in honest],
            minority_price_usd=[1.0] * len(honest),
            prefork_hashrate=prefork,
            attacker_prefork_share=attacker_share,
        )

    def test_share_computation(self):
        # Attacker hashrate = 2; honest day 0 = 1 → share 2/3.
        assessments = self.make()
        assert assessments[0].attacker_minority_share == pytest.approx(2 / 3)
        assert assessments[0].has_majority
        assert assessments[2].attacker_minority_share == pytest.approx(
            2 / 12
        )
        assert not assessments[2].has_majority

    def test_double_spend_probability_tracks_share(self):
        assessments = self.make()
        assert assessments[0].double_spend_probability == 1.0
        assert assessments[2].double_spend_probability < 0.01

    def test_cost_scales_with_difficulty(self):
        assessments = self.make()
        assert (
            assessments[2].expected_hashes
            == 10 * assessments[0].expected_hashes
        )

    def test_opportunity_cost_formula(self):
        assessments = self.make()
        # 6 blocks x reward x price = 30 USD regardless of difficulty
        # (cost floor = the honest revenue the same expected work earns).
        assert assessments[0].opportunity_cost_usd == pytest.approx(30.0)

    def test_vulnerability_window(self):
        assessments = self.make(honest=(0.5, 1.0, 10.0, 10.0))
        assert vulnerability_window_days(assessments) == 2
        safe = self.make(honest=(10.0, 10.0))
        assert vulnerability_window_days(safe) is None

    def test_invalid_attacker_share(self):
        with pytest.raises(ValueError):
            self.make(attacker_share=0.0)
