"""Market models: prices, events, arbitrage equilibrium, exchange series."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.market.arbitrage import LaggedAllocator, allocate_profit_hashpower
from repro.market.events import ExternalDraw, HashpowerSupply, ZcashLaunch
from repro.market.exchange import (
    ExchangeRateSeries,
    expected_hashes_per_ether,
    expected_hashes_per_usd,
)
from repro.market.price import (
    AnchoredPriceProcess,
    PriceAnchor,
    etc_price_process,
    eth_price_process,
)


class TestPriceProcess:
    def test_reference_hits_anchors(self):
        process = AnchoredPriceProcess(
            [PriceAnchor(0, 10.0), PriceAnchor(10, 20.0)]
        )
        assert process.reference(0) == pytest.approx(10.0)
        assert process.reference(10) == pytest.approx(20.0)

    def test_reference_interpolates_in_log_space(self):
        process = AnchoredPriceProcess(
            [PriceAnchor(0, 1.0), PriceAnchor(10, 100.0)]
        )
        assert process.reference(5) == pytest.approx(10.0)

    def test_reference_clamps_outside_anchors(self):
        process = AnchoredPriceProcess(
            [PriceAnchor(5, 3.0), PriceAnchor(10, 4.0)]
        )
        assert process.reference(0) == 3.0
        assert process.reference(100) == 4.0

    def test_series_deterministic_per_seed(self):
        assert eth_price_process(seed=3).series(50) == eth_price_process(
            seed=3
        ).series(50)
        assert eth_price_process(seed=3).series(50) != eth_price_process(
            seed=4
        ).series(50)

    def test_series_stays_near_reference(self):
        process = eth_price_process()
        prices = process.series(270)
        for day in (0, 100, 250):
            assert prices[day] == pytest.approx(
                process.reference(day), rel=0.5
            )

    def test_prices_always_positive(self):
        assert all(p > 0 for p in etc_price_process().series(270))

    def test_eth_etc_ratio_is_order_ten(self):
        """The price structure behind the order-of-magnitude difficulty
        gap (Figure 2 top)."""
        eth = eth_price_process().series(270)
        etc = etc_price_process().series(270)
        mid_ratios = [eth[d] / etc[d] for d in range(30, 240)]
        assert 5 < sum(mid_ratios) / len(mid_ratios) < 20

    def test_anchor_validation(self):
        with pytest.raises(ValueError):
            PriceAnchor(0, -1.0)
        with pytest.raises(ValueError):
            AnchoredPriceProcess([PriceAnchor(0, 1.0)])
        with pytest.raises(ValueError):
            AnchoredPriceProcess(
                [PriceAnchor(5, 1.0), PriceAnchor(0, 1.0)]
            )


class TestEvents:
    def test_draw_zero_before_event(self):
        draw = ExternalDraw("z", day=100, peak_fraction=0.3)
        assert draw.drawn_fraction(99) == 0.0

    def test_draw_ramps_and_decays(self):
        draw = ExternalDraw("z", day=100, peak_fraction=0.3, ramp_days=10,
                            decay_days=20)
        assert draw.drawn_fraction(105) == pytest.approx(0.15)
        assert draw.drawn_fraction(110) == pytest.approx(0.3)
        assert draw.drawn_fraction(130) < 0.3
        assert draw.drawn_fraction(1000) < 0.01

    def test_zcash_timing(self):
        zcash = ZcashLaunch()
        assert zcash.day == 100  # late October 2016
        assert zcash.drawn_fraction(106) > 0.2

    def test_supply_growth_trend(self):
        supply = HashpowerSupply(1e12, growth_rate_per_day=0.005, events=())
        assert supply.available(0) == pytest.approx(1e12)
        assert supply.available(270) == pytest.approx(
            1e12 * 2.718**1.35, rel=0.01
        )

    def test_supply_dips_during_zcash(self):
        supply = HashpowerSupply(1e12, events=(ZcashLaunch(),))
        assert supply.available(106) < supply.trend(106) * 0.75

    def test_validation(self):
        with pytest.raises(ValueError):
            ExternalDraw("bad", 0, peak_fraction=1.0)
        with pytest.raises(ValueError):
            HashpowerSupply(0)


class TestArbitrage:
    def test_no_floors_splits_by_price(self):
        allocation = allocate_profit_hashpower(
            1000.0, {"ETH": 9.0, "ETC": 1.0}, {}
        )
        assert allocation.hashrate["ETH"] == pytest.approx(900.0)
        assert allocation.hashrate["ETC"] == pytest.approx(100.0)

    def test_small_floors_do_not_distort(self):
        """Water-filling: a floor below the proportional share is
        invisible — the Figure 3 identity survives ideological miners."""
        allocation = allocate_profit_hashpower(
            650.0, {"ETH": 9.0, "ETC": 1.0},
            {"ETH": 300.0, "ETC": 50.0},
        )
        # total = 1000; proportional = 900/100; both floors below that.
        assert allocation.hashrate["ETH"] == pytest.approx(900.0)
        assert allocation.hashrate["ETC"] == pytest.approx(100.0)

    def test_binding_floor_pins_and_redistributes(self):
        allocation = allocate_profit_hashpower(
            100.0, {"ETH": 9.0, "ETC": 1.0},
            {"ETH": 0.0, "ETC": 500.0},
        )
        assert allocation.hashrate["ETC"] == 500.0
        assert allocation.hashrate["ETH"] == pytest.approx(100.0)

    @given(
        st.floats(min_value=1.0, max_value=1e6),
        st.floats(min_value=0.01, max_value=100.0),
        st.floats(min_value=0.01, max_value=100.0),
        st.floats(min_value=0.0, max_value=1e5),
        st.floats(min_value=0.0, max_value=1e5),
    )
    @settings(max_examples=100)
    def test_allocation_conserves_hashpower(self, profit, p1, p2, f1, f2):
        allocation = allocate_profit_hashpower(
            profit, {"A": p1, "B": p2}, {"A": f1, "B": f2}
        )
        total = profit + f1 + f2
        assert sum(allocation.hashrate.values()) == pytest.approx(total)
        assert allocation.hashrate["A"] >= f1 - 1e-6
        assert allocation.hashrate["B"] >= f2 - 1e-6

    def test_lagged_allocator_converges(self):
        allocator = LaggedAllocator(alpha=0.3)
        allocator.reset({"ETH": 990.0, "ETC": 10.0})
        prices = {"ETH": 8.0, "ETC": 2.0}
        for _ in range(40):
            allocation = allocator.step(1000.0, prices, {})
        assert allocation["ETH"] == pytest.approx(800.0, rel=0.01)
        assert allocation["ETC"] == pytest.approx(200.0, rel=0.05)

    def test_lagged_allocator_moves_gradually(self):
        allocator = LaggedAllocator(alpha=0.1)
        allocator.reset({"ETH": 1000.0, "ETC": 0.0})
        allocation = allocator.step(1000.0, {"ETH": 5.0, "ETC": 5.0}, {})
        # One step at alpha=0.1 moves 10% of the way to the 500/500 target.
        assert allocation["ETC"] == pytest.approx(50.0, rel=0.01)

    def test_supply_changes_bind_immediately(self):
        allocator = LaggedAllocator(alpha=0.1)
        allocator.reset({"ETH": 900.0, "ETC": 100.0})
        allocation = allocator.step(2000.0, {"ETH": 9.0, "ETC": 1.0}, {})
        assert sum(allocation.values()) == pytest.approx(2000.0)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            LaggedAllocator(alpha=0.0)


class TestExchange:
    def test_hashes_per_ether(self):
        assert expected_hashes_per_ether(50.0, 5.0) == 10.0

    def test_hashes_per_usd_matches_paper_formula(self):
        # difficulty/5 per ether, divided by price.
        assert expected_hashes_per_usd(7e13, 14.0) == pytest.approx(1e12)

    def test_series_storage_and_clamping(self):
        rates = ExchangeRateSeries()
        rates.set_series("ETH", [10.0, 11.0, 12.0])
        assert rates.rate("ETH", 1) == 11.0
        assert rates.rate("ETH", -5) == 10.0
        assert rates.rate("ETH", 99) == 12.0

    def test_ratio_series(self):
        rates = ExchangeRateSeries()
        rates.set_series("ETH", [10.0, 20.0])
        rates.set_series("ETC", [1.0, 2.0])
        assert rates.ratio_series("ETH", "ETC") == [10.0, 10.0]

    def test_hashes_per_usd_series(self):
        rates = ExchangeRateSeries()
        rates.set_series("ETH", [14.0, 14.0])
        series = rates.hashes_per_usd_series("ETH", [7e13, 14e13])
        assert series[1] == pytest.approx(2 * series[0])

    def test_validation(self):
        rates = ExchangeRateSeries()
        with pytest.raises(ValueError):
            rates.set_series("X", [1.0, -1.0])
        with pytest.raises(KeyError):
            rates.rate("missing", 0)
        with pytest.raises(ValueError):
            expected_hashes_per_usd(1e12, 0.0)
