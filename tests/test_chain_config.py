"""Chain configuration: fork schedules, replay protection, DAO markers."""

import pytest

from repro.chain.config import (
    DAO_EXTRA_DATA,
    DAO_FORK_BLOCK,
    ETC_CONFIG,
    ETH_CONFIG,
    PRE_FORK_CONFIG,
)
from repro.chain.gas import FRONTIER_SCHEDULE, TANGERINE_SCHEDULE


class TestPresets:
    def test_chain_ids(self):
        assert ETH_CONFIG.chain_id == 1
        assert ETC_CONFIG.chain_id == 61

    def test_dao_stances(self):
        assert ETH_CONFIG.dao_fork_support
        assert not ETC_CONFIG.dao_fork_support

    def test_shared_fork_height(self):
        assert ETH_CONFIG.dao_fork_block == ETC_CONFIG.dao_fork_block == DAO_FORK_BLOCK

    def test_prefork_is_consensus_identical_to_eth(self):
        assert PRE_FORK_CONFIG.dao_fork_block == ETH_CONFIG.dao_fork_block
        assert PRE_FORK_CONFIG.chain_id == ETH_CONFIG.chain_id

    def test_fork_summary_mentions_both_sides(self):
        assert "applies" in ETH_CONFIG.fork_summary()
        assert "rejects" in ETC_CONFIG.fork_summary()


class TestGasSchedule:
    def test_eth_reprices_at_eip150_height(self):
        assert ETH_CONFIG.gas_schedule(2_462_999) is FRONTIER_SCHEDULE
        assert ETH_CONFIG.gas_schedule(2_463_000) is TANGERINE_SCHEDULE

    def test_etc_reprices_later(self):
        assert ETC_CONFIG.gas_schedule(2_463_000) is FRONTIER_SCHEDULE
        assert ETC_CONFIG.gas_schedule(3_000_000) is TANGERINE_SCHEDULE


class TestReplayProtection:
    def test_legacy_txs_always_accepted(self):
        """The replay hole: chain-id-less transactions are valid on both
        chains, at every height — before and after EIP-155."""
        for config in (ETH_CONFIG, ETC_CONFIG):
            assert config.accepts_transaction_chain_id(None, 1)
            assert config.accepts_transaction_chain_id(None, 5_000_000)

    def test_chain_id_rejected_before_activation(self):
        assert not ETH_CONFIG.accepts_transaction_chain_id(1, 2_000_000)

    def test_matching_chain_id_accepted_after_activation(self):
        assert ETH_CONFIG.accepts_transaction_chain_id(1, 2_675_000)
        assert ETC_CONFIG.accepts_transaction_chain_id(61, 3_000_000)

    def test_foreign_chain_id_always_rejected(self):
        assert not ETH_CONFIG.accepts_transaction_chain_id(61, 3_000_000)
        assert not ETC_CONFIG.accepts_transaction_chain_id(1, 3_000_000)


class TestDaoExtraData:
    def test_pro_fork_requires_marker_in_window(self):
        assert ETH_CONFIG.dao_extra_data(DAO_FORK_BLOCK) == DAO_EXTRA_DATA
        assert ETH_CONFIG.dao_extra_data(DAO_FORK_BLOCK + 9) == DAO_EXTRA_DATA
        assert ETH_CONFIG.dao_extra_data(DAO_FORK_BLOCK + 10) is None
        assert ETH_CONFIG.dao_extra_data(DAO_FORK_BLOCK - 1) is None

    def test_anti_fork_never_requires_marker(self):
        assert ETC_CONFIG.dao_extra_data(DAO_FORK_BLOCK) is None

    def test_mutual_rejection_in_window(self):
        """The divergence mechanism: each side rejects the other's fork
        block on extra-data alone."""
        assert ETH_CONFIG.rejects_extra_data(DAO_FORK_BLOCK, b"")
        assert ETC_CONFIG.rejects_extra_data(DAO_FORK_BLOCK, DAO_EXTRA_DATA)

    def test_no_rejection_outside_window(self):
        assert not ETH_CONFIG.rejects_extra_data(DAO_FORK_BLOCK - 1, b"")
        assert not ETC_CONFIG.rejects_extra_data(DAO_FORK_BLOCK + 10, b"")

    def test_compatible_markers_accepted(self):
        assert not ETH_CONFIG.rejects_extra_data(DAO_FORK_BLOCK, DAO_EXTRA_DATA)
        assert not ETC_CONFIG.rejects_extra_data(DAO_FORK_BLOCK, b"")


class TestDifficultyDispatch:
    def test_compute_difficulty_uses_bomb_delay(self):
        eth = ETH_CONFIG.compute_difficulty(10**13, 0, 14, 3_000_000)
        etc = ETC_CONFIG.compute_difficulty(10**13, 0, 14, 3_000_000)
        # ETC delays its bomb (ECIP-1010), so its value is lower.
        assert etc < eth
