"""The columnar analytics backend: byte-identity against the record oracle.

``ColumnarChainDatabase`` exposes the exact ``ChainDatabase`` query
surface over zero-copy trace columns.  These tests pin the contract the
figure pipeline rests on: every query — boxed-record and aggregated
alike — and every downstream figure/observation artifact is
*byte-identical* across the trace functions, the record database, and
the columnar database, over multiple seeds and horizons.
"""

import json

import pytest

from repro.core.observations import evaluate_all, evaluate_all_db
from repro.core.report import (
    figure_1,
    figure_2,
    figure_3,
    figure_5,
    figures_from_database,
)
from repro.data.columnar import ColumnarChainDatabase
from repro.data.records import BlockRecord, TxRecord
from repro.data.store import ChainDatabase
from repro.sim.engine import ForkSimConfig, ForkSimulation


CONFIGS = [
    ForkSimConfig(days=12, prefork_days=3, seed=11, with_transactions=True),
    ForkSimConfig(days=20, prefork_days=2, seed=42, with_transactions=False),
]


@pytest.fixture(scope="module", params=[0, 1], ids=["12d-tx", "20d-notx"])
def result(request):
    return ForkSimulation(CONFIGS[request.param]).run()


@pytest.fixture(scope="module")
def backends(result):
    return result.to_database(), result.to_database(columnar=True)


def _obs_blob(observations):
    return json.dumps(
        [
            {
                "number": o.number,
                "claim": o.claim,
                "holds": o.holds,
                "details": {
                    key: value.hex() if isinstance(value, float) else value
                    for key, value in o.details.items()
                },
            }
            for o in observations
        ]
    )


class TestQueryParity:
    def test_chains(self, backends):
        record, columnar = backends
        assert columnar.chains() == record.chains()

    def test_block_boxing(self, backends):
        record, columnar = backends
        for chain in record.chains():
            assert columnar.blocks(chain) == record.blocks(chain)
            assert columnar.block_count(chain) == record.block_count(chain)

    def test_blocks_between(self, result, backends):
        record, columnar = backends
        fork = result.fork_timestamp
        for chain in record.chains():
            for window in ((fork, fork + 7200), (fork - 3600, fork)):
                assert columnar.blocks_between(chain, *window) == (
                    record.blocks_between(chain, *window)
                )

    def test_series_queries(self, backends):
        record, columnar = backends
        for chain in record.chains():
            assert columnar.blocks_per_hour(chain) == (
                record.blocks_per_hour(chain)
            )
            assert columnar.difficulty_series(chain) == (
                record.difficulty_series(chain)
            )
            assert columnar.block_deltas(chain) == record.block_deltas(chain)
            assert columnar.miner_label_series(chain) == (
                record.miner_label_series(chain)
            )

    def test_aggregated_queries_bitwise(self, result, backends):
        record, columnar = backends
        fork = result.fork_timestamp
        for chain in record.chains():
            for start in (None, fork):
                rec = record.daily_mean_difficulty(chain, start)
                col = columnar.daily_mean_difficulty(chain, start)
                assert {k: v.hex() for k, v in rec.items()} == (
                    {k: v.hex() for k, v in col.items()}
                )
                rec = record.hourly_mean_block_delta(chain, start)
                col = columnar.hourly_mean_block_delta(chain, start)
                assert {k: v.hex() for k, v in rec.items()} == (
                    {k: v.hex() for k, v in col.items()}
                )
                assert columnar.block_transactions_per_day(chain, start) == (
                    record.block_transactions_per_day(chain, start)
                )
                rec = record.block_contract_fraction_per_day(chain, start)
                col = columnar.block_contract_fraction_per_day(chain, start)
                assert {k: v.hex() for k, v in rec.items()} == (
                    {k: v.hex() for k, v in col.items()}
                )

    def test_daily_miner_counts_order_and_values(self, backends):
        record, columnar = backends
        for chain in record.chains():
            rec = record.daily_miner_counts(chain)
            col = columnar.daily_miner_counts(chain)
            assert rec == col
            # Counter equality ignores order, but most_common tie-breaks
            # depend on insertion order — pin it too.
            for day in rec:
                assert list(rec[day].items()) == list(col[day].items())

    def test_no_prefix_suffix_matches(self, result):
        record = result.to_database(include_prefix=False)
        columnar = result.to_database(include_prefix=False, columnar=True)
        for chain in record.chains():
            assert columnar.blocks(chain) == record.blocks(chain)
            assert all(
                r.number > result.fork_number for r in columnar.blocks(chain)
            )


class TestFigurePipeline:
    def test_figures_byte_identical(self, result, backends, tmp_path):
        record, columnar = backends
        trace_figs = {
            1: figure_1(result),
            2: figure_2(result),
            3: figure_3(result),
            5: figure_5(result),
        }
        rec_figs = figures_from_database(result, record)
        col_figs = figures_from_database(result, columnar)
        assert set(rec_figs) == set(col_figs) == {1, 2, 3, 5}
        for number, trace_fig in trace_figs.items():
            payloads = {}
            for tag, fig in (
                ("trace", trace_fig),
                ("record", rec_figs[number]),
                ("columnar", col_figs[number]),
            ):
                path = tmp_path / f"f{number}-{tag}.csv"
                fig.write_csv(path)
                payloads[tag] = path.read_bytes()
                assert fig.render() == trace_fig.render()
            assert payloads["trace"] == payloads["record"]
            assert payloads["record"] == payloads["columnar"]

    def test_observations_identical(self, result, backends):
        record, columnar = backends
        trace_obs = _obs_blob(evaluate_all(result))
        assert _obs_blob(evaluate_all_db(result, record)) == trace_obs
        assert _obs_blob(evaluate_all_db(result, columnar)) == trace_obs


def _block(chain="ETH", number=1, timestamp=1000, difficulty=100,
           miner="poolA", tx_count=2, contract_tx_count=1):
    return BlockRecord(chain=chain, number=number, timestamp=timestamp,
                       difficulty=difficulty, miner=miner, tx_count=tx_count,
                       contract_tx_count=contract_tx_count)


class TestColumnarIngest:
    def test_adopt_rejects_duplicate_chain(self, result):
        db = ColumnarChainDatabase()
        db.adopt_trace(result.eth_trace)
        with pytest.raises(ValueError):
            db.adopt_trace(result.eth_trace)

    def test_insert_blocks_matches_record_backend(self):
        rows = [
            _block(number=3, timestamp=3000, miner="p2"),
            _block(number=1, timestamp=1000),
            _block(number=2, timestamp=2000, miner="p2"),
            _block(chain="ETC", number=1, timestamp=500, miner="solo-1"),
        ]
        record = ChainDatabase()
        record.insert_blocks(rows)
        columnar = ColumnarChainDatabase()
        columnar.insert_blocks(rows)
        for chain in record.chains():
            assert columnar.blocks(chain) == record.blocks(chain)
            assert columnar.daily_miner_counts(chain) == (
                record.daily_miner_counts(chain)
            )

    def test_adopted_trace_not_mutated_by_insert(self, result):
        trace = result.eth_trace
        before = len(trace)
        db = ColumnarChainDatabase()
        db.adopt_trace(trace)
        db.insert_blocks(
            [_block(number=trace.numbers[-1] + 1,
                    timestamp=trace.timestamps[-1] + 10)]
        )
        assert len(trace) == before
        assert db.block_count("ETH") == before + 1

    def test_transactions_delegate(self):
        db = ColumnarChainDatabase()
        db.insert_transactions([
            TxRecord(chain="ETH", tx_hash=b"\x01" * 8, block_number=1,
                     timestamp=100, sender=b"\xaa" * 20, to=b"\xbb" * 20,
                     value=1, is_contract=True, replay_protected=False),
            TxRecord(chain="ETH", tx_hash=b"\x02" * 8, block_number=2,
                     timestamp=200, sender=b"\xaa" * 20, to=b"\xbb" * 20,
                     value=1, is_contract=False, replay_protected=False),
        ])
        assert db.tx_count("ETH") == 2
        assert db.transactions_per_day("ETH") == {0: 2}
        assert db.contract_fraction_per_day("ETH") == {0: 0.5}
        assert db.lookup_tx("ETH", b"\x01" * 8).timestamp == 100
        assert "ETH" in db.chains()
