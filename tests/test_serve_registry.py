"""Registry semantics: single-flight dedupe, quotas, tenancy, summaries."""

import asyncio

import pytest

from repro.data.resultstore import ResultStore
from repro.harness import JobSpec, NullCache, execute_job
from repro.obs import MetricsRegistry
from repro.serve.executor import ExecutorBridge
from repro.serve.quotas import (
    AdmissionController,
    QuotaExceeded,
    TenantQuota,
    tenant_for,
)
from repro.serve.registry import JobRegistry
from repro.serve.summary import summarize, summary_digest


def echo_spec(value):
    return JobSpec.make("selftest-echo", {"value": value})


def sleep_spec(seconds):
    return JobSpec.make("selftest-sleep", {"seconds": seconds})


def make_registry(metrics=None, store=None, admission=None, max_threads=4):
    executor = ExecutorBridge(
        workers=1, cache_dir=None, timeout=30.0, retries=0,
        collect_metrics=False, max_threads=max_threads,
    )
    return JobRegistry(
        executor, store=store, metrics=metrics,
        admission=admission or AdmissionController(metrics=metrics),
    )


class TestTenantIdentity:
    def test_explicit_header_wins(self):
        assert tenant_for({"x-repro-tenant": "Team-A"}) == "team-a"

    def test_header_sanitized(self):
        assert tenant_for({"x-repro-tenant": "a b/c!"}) == "a-b-c-"

    def test_bearer_token_pseudonymized(self):
        tenant = tenant_for({"authorization": "Bearer s3cret"})
        assert tenant.startswith("tok-") and "s3cret" not in tenant
        # Stable across calls.
        assert tenant == tenant_for({"authorization": "Bearer s3cret"})

    def test_default_is_public(self):
        assert tenant_for({}) == "public"


class TestAdmissionController:
    def test_tenant_queue_budget(self):
        controller = AdmissionController(
            quota=TenantQuota(max_inflight=1, max_queued=1),
            max_inflight_total=100,
        )
        controller.admit("a")
        controller.started("a")  # 1 running, 0 queued
        controller.admit("a")    # 1 running, 1 queued
        with pytest.raises(QuotaExceeded):
            controller.admit("a")
        # An unrelated tenant is unaffected.
        controller.admit("b")

    def test_global_cap(self):
        controller = AdmissionController(
            quota=TenantQuota(max_inflight=10, max_queued=10),
            max_inflight_total=2,
        )
        controller.admit("a")
        controller.admit("b")
        with pytest.raises(QuotaExceeded):
            controller.admit("c")
        controller.started("a")
        controller.finished("a")
        controller.admit("c")

    def test_rejection_counts_per_tenant(self):
        metrics = MetricsRegistry()
        controller = AdmissionController(
            quota=TenantQuota(max_inflight=1, max_queued=0),
            max_inflight_total=10, metrics=metrics,
        )
        controller.admit("a")
        controller.started("a")
        with pytest.raises(QuotaExceeded):
            controller.admit("a")
        counters = metrics.dump()["counters"]
        assert counters["serve.tenant.a.admitted"] == 1
        assert counters["serve.tenant.a.rejected"] == 1


class TestSingleFlight:
    def test_concurrent_identical_submissions_share_one_job(self):
        async def go():
            metrics = MetricsRegistry()
            registry = make_registry(metrics=metrics)
            spec = sleep_spec(0.2)
            first, source_1 = registry.submit(spec, "a")
            second, source_2 = registry.submit(spec, "b")
            assert source_1 == "executed"
            assert source_2 == "inflight"
            assert first is second
            await asyncio.wait_for(first.done.wait(), 30)
            registry.executor.shutdown()
            return metrics.dump()["counters"], first

        counters, job = asyncio.run(go())
        assert counters["serve.jobs.submitted"] == 1
        assert counters["serve.jobs.deduped"] == 1
        assert job.state == "ok"
        assert job.digest

    def test_terminal_ok_job_replayed_from_memory(self):
        async def go():
            metrics = MetricsRegistry()
            registry = make_registry(metrics=metrics)
            spec = echo_spec(42)
            job, _ = registry.submit(spec, "a")
            await asyncio.wait_for(job.done.wait(), 30)
            again, source = registry.submit(spec, "a")
            registry.executor.shutdown()
            return job, again, source, metrics.dump()["counters"]

        job, again, source, counters = asyncio.run(go())
        assert again is job
        assert source == "memory"
        assert counters["serve.jobs.replayed_memory"] == 1

    def test_different_params_do_not_dedupe(self):
        async def go():
            registry = make_registry()
            a, _ = registry.submit(echo_spec(1), "t")
            b, _ = registry.submit(echo_spec(2), "t")
            assert a is not b
            await asyncio.wait_for(
                asyncio.gather(a.done.wait(), b.done.wait()), 30
            )
            registry.executor.shutdown()
            return a, b

        a, b = asyncio.run(go())
        assert a.digest != b.digest

    def test_failed_job_may_be_resubmitted(self):
        async def go():
            registry = make_registry()
            bad = JobSpec.make("selftest-flaky",
                               {"marker_path": "/nonexistent-dir/x",
                                "fail_times": 99})
            job, source = registry.submit(bad, "t")
            assert source == "executed"
            await asyncio.wait_for(job.done.wait(), 30)
            assert job.state == "failed"
            retry, retry_source = registry.submit(bad, "t")
            assert retry is not job
            assert retry_source == "executed"
            await asyncio.wait_for(retry.done.wait(), 30)
            registry.executor.shutdown()

        asyncio.run(go())


class TestDurability:
    def test_completed_job_lands_in_store(self, tmp_path):
        db = tmp_path / "serve.db"

        async def go():
            with ResultStore(db) as store:
                registry = make_registry(store=store)
                job, _ = registry.submit(echo_spec(7), "alice")
                await asyncio.wait_for(job.done.wait(), 30)
                registry.executor.shutdown()
                return job.digest

        digest = asyncio.run(go())
        with ResultStore(db) as store:
            rows = store.list_jobs()
            assert len(rows) == 1
            assert rows[0].status == "ok"
            assert rows[0].tenant == "alice"
            assert rows[0].digest == digest
            assert store.get_result(digest)["summary"]["value"] == 7

    def test_new_registry_replays_from_store(self, tmp_path):
        db = tmp_path / "serve.db"

        async def first():
            with ResultStore(db) as store:
                registry = make_registry(store=store)
                job, _ = registry.submit(echo_spec(9), "t")
                await asyncio.wait_for(job.done.wait(), 30)
                registry.executor.shutdown()
                return job.digest

        digest = asyncio.run(first())

        async def second():
            metrics = MetricsRegistry()
            with ResultStore(db) as store:
                registry = make_registry(store=store, metrics=metrics)
                job, source = registry.submit(echo_spec(9), "t")
                assert job.terminal  # no execution happened
                registry.executor.shutdown()
                return job, source, metrics.dump()["counters"]

        job, source, counters = asyncio.run(second())
        assert source == "store"
        assert job.digest == digest
        assert "serve.jobs.submitted" not in counters
        assert counters["serve.jobs.replayed_store"] == 1


class TestEventHistory:
    def test_late_subscriber_sees_full_history(self):
        async def go():
            registry = make_registry()
            job, _ = registry.submit(echo_spec(3), "t")
            await asyncio.wait_for(job.done.wait(), 30)
            history, queue = job.subscribe()
            job.unsubscribe(queue)
            registry.executor.shutdown()
            return [event for event, _ in history]

        events = asyncio.run(go())
        assert events[0] == "queued"
        assert "started" in events
        assert events[-1] == "done"


class TestSummaryContract:
    def test_digest_matches_local_execution(self):
        """The serve-layer digest is the local execute_job digest."""
        spec = echo_spec(123)

        async def go():
            registry = make_registry()
            job, _ = registry.submit(spec, "t")
            await asyncio.wait_for(job.done.wait(), 30)
            registry.executor.shutdown()
            return job.digest

        served = asyncio.run(go())
        outcome = execute_job(spec, NullCache())
        local = summary_digest(summarize(spec.kind, outcome.value))
        assert served == local
