"""Chunked sweeps: planning, crash-anywhere resumability, quarantine."""

import json

import pytest

from repro.harness import (
    ChunkFailure,
    CrashyPool,
    EXIT_DEGRADED,
    EXIT_OK,
    JobSpec,
    LedgerNeedsResume,
    SweepRunner,
    WorkerPool,
    plan_chunks,
    sweep_key_for,
)
from repro.harness.sweeprun import load_chunk_artifact, write_chunk_artifact


def echo_specs(count, start=0):
    return [
        JobSpec.make("selftest-echo", {"value": index}, label=f"echo-{index}")
        for index in range(start, start + count)
    ]


def summarize_values(chunk, results):
    return {"values": [result.value for result in results]}


def make_runner(tmp_path, pool=None, **kwargs):
    kwargs.setdefault("lease_seconds", 30.0)
    kwargs.setdefault("poll_interval", 0.01)
    # Tests drive interrupts through request_stop(), not real signals.
    kwargs.setdefault("install_signal_handlers", False)
    return SweepRunner(
        tmp_path / "ledger",
        pool or WorkerPool(workers=1, retries=0),
        summarize_values,
        **kwargs,
    )


def collected(outcome):
    return [
        value
        for _, summary in outcome.summaries
        for value in summary["values"]
    ]


class TestPlanChunks:
    def test_chunk_sizes_and_seq(self):
        chunks = plan_chunks([echo_specs(5)], 2)
        assert [len(c.specs) for c in chunks] == [2, 2, 1]
        assert [c.seq for c in chunks] == [0, 1, 2]
        assert all(c.stage == 0 for c in chunks)

    def test_stages_map_to_chunks(self):
        chunks = plan_chunks([echo_specs(2), echo_specs(3, start=2)], 2)
        assert [c.stage for c in chunks] == [0, 1, 1]

    def test_ids_are_stable_and_content_addressed(self):
        first = plan_chunks([echo_specs(4)], 2)
        second = plan_chunks([echo_specs(4)], 2)
        assert [c.chunk_id for c in first] == [c.chunk_id for c in second]
        shifted = plan_chunks([echo_specs(4, start=1)], 2)
        assert first[0].chunk_id != shifted[0].chunk_id
        salted = plan_chunks([echo_specs(4)], 2, salt={"sweep": "x"})
        assert first[0].chunk_id != salted[0].chunk_id
        assert sweep_key_for(first) != sweep_key_for(salted)

    def test_labels_name_the_first_member(self):
        chunks = plan_chunks([echo_specs(3)], 2)
        assert chunks[0].label == "echo-0 (+1)"
        assert chunks[1].label == "echo-2"

    def test_rejects_zero_chunk_size(self):
        with pytest.raises(ValueError):
            plan_chunks([echo_specs(2)], 0)


class TestChunkArtifacts:
    def test_round_trip_with_digest(self, tmp_path):
        digest = write_chunk_artifact(tmp_path, "abc", {"values": [1, 2]})
        assert load_chunk_artifact(tmp_path, "abc", digest) == {
            "values": [1, 2]
        }

    def test_corruption_is_detected(self, tmp_path):
        digest = write_chunk_artifact(tmp_path, "abc", {"values": [1]})
        (tmp_path / "abc.json").write_text('{"values": [999]}')
        assert load_chunk_artifact(tmp_path, "abc", digest) is None
        assert load_chunk_artifact(tmp_path, "missing") is None


class TestCleanRun:
    def test_completes_in_canonical_order(self, tmp_path):
        chunks = plan_chunks([echo_specs(5)], 2)
        outcome = make_runner(tmp_path).run(chunks)
        assert outcome.state == "complete"
        assert collected(outcome) == list(range(5))
        assert outcome.counts["done"] == 3

    def test_rerun_without_resume_is_refused(self, tmp_path):
        chunks = plan_chunks([echo_specs(2)], 1)
        make_runner(tmp_path).run(chunks)
        with pytest.raises(LedgerNeedsResume):
            make_runner(tmp_path).run(chunks)

    def test_resume_of_finished_sweep_is_pure_stitching(self, tmp_path):
        chunks = plan_chunks([echo_specs(4)], 2)
        first = make_runner(tmp_path).run(chunks)

        class ExplodingPool:
            def run(self, specs):  # pragma: no cover - must not be called
                raise AssertionError("resume re-executed a done chunk")

        second = make_runner(tmp_path, pool=ExplodingPool()).run(
            chunks, resume=True
        )
        assert collected(second) == collected(first)


class TestCrashRecovery:
    def test_crash_after_work_is_retried_and_digest_stable(self, tmp_path):
        chunks = plan_chunks([echo_specs(4)], 2)
        clean = make_runner(tmp_path / "clean").run(chunks)

        crashy = CrashyPool(
            WorkerPool(workers=1, retries=0), crash_at={0: "after"}
        )
        outcome = make_runner(tmp_path / "crashy", pool=crashy).run(chunks)
        assert outcome.state == "complete"
        assert collected(outcome) == collected(clean)
        # The crashed execution was charged as a chunk failure + retried.
        assert outcome.metrics["counters"]["sweep.chunks.failed"] == 1

    def test_hard_death_checkpoints_then_resumes(self, tmp_path):
        chunks = plan_chunks([echo_specs(4)], 1)
        crashy = CrashyPool(
            WorkerPool(workers=1, retries=0), crash_at={2: "hard"}
        )
        first = make_runner(tmp_path, pool=crashy).run(chunks)
        assert first.state == "interrupted"
        assert first.resumable
        assert first.counts["done"] == 2

        second = make_runner(tmp_path).run(chunks, resume=True)
        assert second.state == "complete"
        assert collected(second) == list(range(4))
        assert second.metrics["counters"]["sweep.chunks.resumed"] == 2

    def test_request_stop_checkpoints_cleanly(self, tmp_path):
        chunks = plan_chunks([echo_specs(3)], 1)
        runner = make_runner(tmp_path)
        runner.request_stop()
        outcome = runner.run(chunks)
        assert outcome.state == "interrupted"
        assert outcome.counts["done"] == 0
        resumed = make_runner(tmp_path).run(chunks, resume=True)
        assert resumed.state == "complete"
        assert collected(resumed) == [0, 1, 2]

    def test_corrupt_artifact_is_demoted_and_recomputed(self, tmp_path):
        chunks = plan_chunks([echo_specs(3)], 1)
        first = make_runner(tmp_path).run(chunks)
        victim = chunks[1].chunk_id
        artifact = tmp_path / "ledger" / "chunks" / f"{victim}.json"
        artifact.write_text(json.dumps({"values": [999]}))

        second = make_runner(tmp_path).run(chunks, resume=True)
        assert second.state == "complete"
        assert collected(second) == collected(first) == [0, 1, 2]
        assert second.metrics["counters"]["sweep.chunks.demoted"] == 1

    def test_two_runners_share_one_ledger(self, tmp_path):
        import threading

        chunks = plan_chunks([echo_specs(6)], 1)
        outcomes = {}

        def drive(name):
            runner = make_runner(tmp_path, owner=name)
            resume = name == "late"
            outcomes[name] = runner.run(chunks, resume=resume)

        early = threading.Thread(target=drive, args=("early",))
        early.start()
        early.join()
        # Sequential here (SQLite serialises the claims anyway); the
        # concurrency torture lives in the ledger tests.  The point:
        # a second runner attaching to the same ledger sees the done
        # work and completes without re-executing anything.
        drive("late")
        assert outcomes["early"].state == "complete"
        assert outcomes["late"].state == "complete"
        assert collected(outcomes["late"]) == list(range(6))


class TestQuarantine:
    def doomed_chunks(self):
        doomed = JobSpec.make("no-such-kind", {}, label="doomed")
        return plan_chunks([[*echo_specs(2), doomed]], 1)

    def test_degraded_completion_lists_quarantined(self, tmp_path):
        chunks = self.doomed_chunks()
        outcome = make_runner(tmp_path, chunk_retries=1).run(chunks)
        assert outcome.state == "degraded"
        assert collected(outcome) == [0, 1]
        [row] = outcome.quarantined
        assert row.label == "doomed"
        assert row.failures == 2  # first try + chunk_retries
        assert "no-such-kind" in row.error
        assert outcome.metrics["counters"]["sweep.chunks.quarantined"] == 1

    def test_budget_overrun_fails_the_sweep(self, tmp_path):
        chunks = self.doomed_chunks()
        outcome = make_runner(
            tmp_path, chunk_retries=0, max_quarantined=0
        ).run(chunks)
        assert outcome.state == "failed"
        assert "exceed" in outcome.error

    def test_chunk_failure_message_names_the_job(self, tmp_path):
        chunks = self.doomed_chunks()
        outcome = make_runner(tmp_path, chunk_retries=0).run(chunks)
        [row] = outcome.quarantined
        assert "doomed" in row.error


class TestSummarizeContract:
    def test_summarize_exception_fails_the_chunk(self, tmp_path):
        def explode(chunk, results):
            raise ValueError("summary refused")

        runner = SweepRunner(
            tmp_path / "ledger",
            WorkerPool(workers=1, retries=0),
            explode,
            lease_seconds=30.0,
            chunk_retries=0,
            install_signal_handlers=False,
        )
        outcome = runner.run(plan_chunks([echo_specs(1)], 1))
        assert outcome.state == "degraded"
        assert "summary refused" in outcome.quarantined[0].error

    def test_combine_time_corruption_raises(self, tmp_path):
        # An artifact that rots *between* its chunk finishing and the
        # combine step must fail loudly, never stitch garbage.
        chunks = plan_chunks([echo_specs(2)], 1)
        artifact = (
            tmp_path / "ledger" / "chunks" / f"{chunks[0].chunk_id}.json"
        )

        class RottingPool:
            def __init__(self):
                self.inner = WorkerPool(workers=1, retries=0)

            def run(self, specs):
                if artifact.exists():  # chunk 0 landed; rot it
                    artifact.write_text("garbage")
                return self.inner.run(specs)

        with pytest.raises(ChunkFailure):
            make_runner(tmp_path, pool=RottingPool()).run(chunks)

    # EXIT code constants are part of the CLI contract.
    def test_exit_codes_are_distinct(self):
        assert len({EXIT_OK, EXIT_DEGRADED, 1, 2, 3}) == 5
