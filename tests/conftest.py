"""Shared fixtures for the test suite."""

import pytest

from repro.chain import (
    ETH_CONFIG,
    Blockchain,
    PrivateKey,
    build_genesis,
    ether,
)
from repro.scenarios.dao import ChainWriter


@pytest.fixture
def alice_key():
    return PrivateKey.from_seed("test:alice")


@pytest.fixture
def bob_key():
    return PrivateKey.from_seed("test:bob")


@pytest.fixture
def miner_key():
    return PrivateKey.from_seed("test:miner")


@pytest.fixture
def funded_chain(alice_key, bob_key, miner_key):
    """A full-execution chain with two funded accounts and a writer."""
    genesis, state = build_genesis(
        {alice_key.address: ether(100), bob_key.address: ether(50)}
    )
    chain = Blockchain(ETH_CONFIG, genesis, state)
    writer = ChainWriter(chain, miner_key.address)
    return chain, writer
