"""Header/body validation rules — the partition's enforcement layer."""

from dataclasses import replace

import pytest

from repro.chain.block import Block, BlockHeader, transactions_root
from repro.chain.config import DAO_EXTRA_DATA, ETC_CONFIG, ETH_CONFIG
from repro.chain.crypto import PrivateKey
from repro.chain.transaction import Transaction, sign_transaction
from repro.chain.types import Address, Hash32
from repro.chain.validation import (
    ValidationError,
    first_validation_error,
    validate_body,
    validate_header,
)

CONFIG = replace(ETH_CONFIG, dao_fork_block=100, bomb_delay=10**9)
ANTI = replace(ETC_CONFIG, dao_fork_block=100, bomb_delay=10**9)


def make_parent(number=9, timestamp=1_000, difficulty=10**9):
    return Block(
        header=BlockHeader(
            parent_hash=Hash32.zero(),
            number=number,
            timestamp=timestamp,
            difficulty=difficulty,
            coinbase=Address.zero(),
            state_root=Hash32.zero(),
            tx_root=transactions_root(()),
            gas_limit=4_700_000,
            gas_used=0,
        )
    )


def make_child(parent, config=CONFIG, **overrides):
    timestamp = overrides.pop("timestamp", parent.timestamp + 14)
    number = overrides.pop("number", parent.number + 1)
    if "difficulty" in overrides:
        difficulty = overrides.pop("difficulty")
    else:
        difficulty = config.compute_difficulty(
            parent.difficulty, parent.timestamp, timestamp, number
        )
    fields = dict(
        parent_hash=parent.block_hash,
        number=number,
        timestamp=timestamp,
        difficulty=difficulty,
        coinbase=Address.zero(),
        state_root=Hash32.zero(),
        tx_root=transactions_root(()),
        gas_limit=parent.header.gas_limit,
        gas_used=0,
        extra_data=config.dao_extra_data(number) or b"",
    )
    fields.update(overrides)
    return Block(header=BlockHeader(**fields))


class TestHeaderRules:
    def test_valid_child_passes(self):
        parent = make_parent()
        validate_header(make_child(parent), parent, CONFIG)

    def test_wrong_parent_hash(self):
        parent = make_parent()
        bad = make_child(parent, parent_hash=Hash32.zero())
        with pytest.raises(ValidationError, match="bad-parent"):
            validate_header(bad, parent, CONFIG)

    def test_wrong_number(self):
        parent = make_parent()
        bad = make_child(parent, number=parent.number + 2)
        with pytest.raises(ValidationError, match="bad-number"):
            validate_header(bad, parent, CONFIG)

    def test_non_increasing_timestamp(self):
        parent = make_parent()
        # Build with a valid timestamp, then rewind it (difficulty is
        # computed from the valid one, so only the timestamp rule trips).
        good = make_child(parent)
        bad = make_child(
            parent,
            timestamp=parent.timestamp,
            difficulty=good.difficulty,
        )
        with pytest.raises(ValidationError, match="bad-timestamp"):
            validate_header(bad, parent, CONFIG)

    def test_future_block_rejected_against_wall_clock(self):
        parent = make_parent()
        child = make_child(parent, timestamp=parent.timestamp + 10_000)
        with pytest.raises(ValidationError, match="future-block"):
            validate_header(child, parent, CONFIG, now=parent.timestamp)

    def test_wrong_difficulty(self):
        parent = make_parent()
        honest = make_child(parent)
        cheat = make_child(parent, difficulty=honest.difficulty * 2)
        with pytest.raises(ValidationError, match="bad-difficulty"):
            validate_header(cheat, parent, CONFIG)

    def test_gas_limit_jump_rejected(self):
        parent = make_parent()
        bad = make_child(parent, gas_limit=parent.header.gas_limit * 2)
        with pytest.raises(ValidationError, match="bad-gas-limit"):
            validate_header(bad, parent, CONFIG)

    def test_gas_limit_small_move_allowed(self):
        parent = make_parent()
        nudge = parent.header.gas_limit // 1024 - 1
        validate_header(
            make_child(parent, gas_limit=parent.header.gas_limit + nudge),
            parent,
            CONFIG,
        )


class TestDaoMarkerRules:
    def test_pro_fork_accepts_marked_fork_block(self):
        parent = make_parent(number=99)
        child = make_child(parent, config=CONFIG)
        assert child.header.extra_data == DAO_EXTRA_DATA
        validate_header(child, parent, CONFIG)

    def test_pro_fork_rejects_unmarked_fork_block(self):
        parent = make_parent(number=99)
        bad = make_child(parent, config=CONFIG, extra_data=b"")
        with pytest.raises(ValidationError, match="dao-extra-data"):
            validate_header(bad, parent, CONFIG)

    def test_anti_fork_rejects_marked_fork_block(self):
        parent = make_parent(number=99)
        marked = make_child(parent, config=CONFIG)
        with pytest.raises(ValidationError, match="dao-extra-data"):
            validate_header(marked, parent, ANTI)

    def test_anti_fork_accepts_unmarked(self):
        parent = make_parent(number=99)
        validate_header(make_child(parent, config=ANTI), parent, ANTI)

    def test_both_accept_either_outside_window(self):
        parent = make_parent(number=200)
        plain = make_child(parent, config=CONFIG)
        validate_header(plain, parent, CONFIG)
        validate_header(plain, parent, ANTI)


class TestBodyRules:
    def test_tx_root_mismatch(self):
        key = PrivateKey.from_seed("val:key")
        tx = sign_transaction(
            key,
            Transaction(nonce=0, gas_price=1, gas_limit=21_000,
                        to=Address.zero(), value=0),
        )
        parent = make_parent()
        block = Block(header=make_child(parent).header, transactions=(tx,))
        with pytest.raises(ValidationError, match="bad-tx-root"):
            validate_body(block, CONFIG)

    def test_foreign_chain_id_rejected_in_body(self):
        key = PrivateKey.from_seed("val:key")
        tx = sign_transaction(
            key,
            Transaction(nonce=0, gas_price=1, gas_limit=21_000,
                        to=Address.zero(), value=0, chain_id=61),
        )
        parent = make_parent()
        shaped = make_child(parent, tx_root=transactions_root((tx,)))
        block = Block(header=shaped.header, transactions=(tx,))
        with pytest.raises(ValidationError, match="bad-chain-id"):
            validate_body(block, CONFIG)

    def test_first_validation_error_returns_reason(self):
        parent = make_parent()
        bad = make_child(parent, number=parent.number + 2)
        assert first_validation_error(bad, parent, CONFIG) == "bad-number"
        good = make_child(parent)
        assert first_validation_error(good, parent, CONFIG) is None
