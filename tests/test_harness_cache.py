"""Cache keys and the content-addressed store."""

import pytest

from repro.harness import (
    JobSpec,
    NullCache,
    ResultCache,
    execute_job,
    figure_spec,
    simulate_spec,
)
from repro.harness.jobs import canonical_json
from repro.sim.engine import ForkSimConfig


class TestCacheKeys:
    def test_same_params_same_key(self):
        a = JobSpec.make("selftest-echo", {"value": 1, "other": "x"})
        b = JobSpec.make("selftest-echo", {"other": "x", "value": 1})
        assert a.cache_key() == b.cache_key()

    def test_key_insensitive_to_dict_insertion_order(self):
        config = ForkSimConfig(days=3)
        payload = config.to_dict()
        shuffled = dict(reversed(list(payload.items())))
        a = JobSpec.make("simulate", {"config": payload})
        b = JobSpec.make("simulate", {"config": shuffled})
        assert a.cache_key() == b.cache_key()

    def test_config_change_invalidates_key(self):
        base = simulate_spec(ForkSimConfig(days=3))
        longer = simulate_spec(ForkSimConfig(days=4))
        reseeded = simulate_spec(ForkSimConfig(days=3, seed=999))
        recalibrated = simulate_spec(
            ForkSimConfig(days=3, allocator_alpha=0.2)
        )
        keys = {
            base.cache_key(),
            longer.cache_key(),
            reseeded.cache_key(),
            recalibrated.cache_key(),
        }
        assert len(keys) == 4

    def test_kind_distinguishes_keys(self):
        a = JobSpec.make("simulate", {"x": 1})
        b = JobSpec.make("partition", {"x": 1})
        assert a.cache_key() != b.cache_key()

    def test_label_does_not_affect_key(self):
        a = JobSpec.make("selftest-echo", {"value": 1}, label="first")
        b = JobSpec.make("selftest-echo", {"value": 1}, label="second")
        assert a.cache_key() == b.cache_key()

    def test_figure_spec_rejects_unknown_figure(self):
        with pytest.raises(ValueError):
            figure_spec(6, ForkSimConfig(days=3))

    def test_non_json_params_rejected(self):
        with pytest.raises(TypeError):
            canonical_json({"bad": object()})


class TestResultCache:
    def test_store_then_lookup_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("ab" + "0" * 62, {"payload": [1, 2, 3]})
        hit, value = cache.lookup("ab" + "0" * 62)
        assert hit and value == {"payload": [1, 2, 3]}
        assert cache.stats.hits == 1 and cache.stats.stores == 1

    def test_missing_key_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        hit, value = cache.lookup("cd" + "0" * 62)
        assert not hit and value is None
        assert cache.stats.misses == 1

    def test_corrupt_entry_evicted_and_missed(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ef" + "0" * 62
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a pickle")
        hit, _ = cache.lookup(key)
        assert not hit
        assert not path.exists()

    def test_null_cache_never_hits(self):
        cache = NullCache()
        cache.store("aa" + "0" * 62, 42)
        hit, _ = cache.lookup("aa" + "0" * 62)
        assert not hit


class TestExecuteJob:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = JobSpec.make("selftest-echo", {"value": "payload"})
        first = execute_job(spec, cache)
        second = execute_job(spec, cache)
        assert first.value == "payload" and not first.cache_hit
        assert second.value == "payload" and second.cache_hit

    def test_different_params_do_not_collide(self, tmp_path):
        cache = ResultCache(tmp_path)
        a = execute_job(JobSpec.make("selftest-echo", {"value": 1}), cache)
        b = execute_job(JobSpec.make("selftest-echo", {"value": 2}), cache)
        assert (a.value, b.value) == (1, 2)
