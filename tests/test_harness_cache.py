"""Cache keys and the content-addressed store."""

import pytest

from repro.harness import (
    JobSpec,
    NullCache,
    ResultCache,
    execute_job,
    figure_spec,
    simulate_spec,
)
from repro.harness.jobs import canonical_json
from repro.sim.engine import ForkSimConfig


class TestCacheKeys:
    def test_same_params_same_key(self):
        a = JobSpec.make("selftest-echo", {"value": 1, "other": "x"})
        b = JobSpec.make("selftest-echo", {"other": "x", "value": 1})
        assert a.cache_key() == b.cache_key()

    def test_key_insensitive_to_dict_insertion_order(self):
        config = ForkSimConfig(days=3)
        payload = config.to_dict()
        shuffled = dict(reversed(list(payload.items())))
        a = JobSpec.make("simulate", {"config": payload})
        b = JobSpec.make("simulate", {"config": shuffled})
        assert a.cache_key() == b.cache_key()

    def test_config_change_invalidates_key(self):
        base = simulate_spec(ForkSimConfig(days=3))
        longer = simulate_spec(ForkSimConfig(days=4))
        reseeded = simulate_spec(ForkSimConfig(days=3, seed=999))
        recalibrated = simulate_spec(
            ForkSimConfig(days=3, allocator_alpha=0.2)
        )
        keys = {
            base.cache_key(),
            longer.cache_key(),
            reseeded.cache_key(),
            recalibrated.cache_key(),
        }
        assert len(keys) == 4

    def test_kind_distinguishes_keys(self):
        a = JobSpec.make("simulate", {"x": 1})
        b = JobSpec.make("partition", {"x": 1})
        assert a.cache_key() != b.cache_key()

    def test_label_does_not_affect_key(self):
        a = JobSpec.make("selftest-echo", {"value": 1}, label="first")
        b = JobSpec.make("selftest-echo", {"value": 1}, label="second")
        assert a.cache_key() == b.cache_key()

    def test_figure_spec_rejects_unknown_figure(self):
        with pytest.raises(ValueError):
            figure_spec(6, ForkSimConfig(days=3))

    def test_non_json_params_rejected(self):
        with pytest.raises(TypeError):
            canonical_json({"bad": object()})


class TestResultCache:
    def test_store_then_lookup_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("ab" + "0" * 62, {"payload": [1, 2, 3]})
        hit, value = cache.lookup("ab" + "0" * 62)
        assert hit and value == {"payload": [1, 2, 3]}
        assert cache.stats.hits == 1 and cache.stats.stores == 1

    def test_missing_key_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        hit, value = cache.lookup("cd" + "0" * 62)
        assert not hit and value is None
        assert cache.stats.misses == 1

    def test_corrupt_entry_evicted_and_missed(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ef" + "0" * 62
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a pickle")
        hit, _ = cache.lookup(key)
        assert not hit
        assert not path.exists()

    def test_null_cache_never_hits(self):
        cache = NullCache()
        cache.store("aa" + "0" * 62, 42)
        hit, _ = cache.lookup("aa" + "0" * 62)
        assert not hit


class TestExecuteJob:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = JobSpec.make("selftest-echo", {"value": "payload"})
        first = execute_job(spec, cache)
        second = execute_job(spec, cache)
        assert first.value == "payload" and not first.cache_hit
        assert second.value == "payload" and second.cache_hit

    def test_different_params_do_not_collide(self, tmp_path):
        cache = ResultCache(tmp_path)
        a = execute_job(JobSpec.make("selftest-echo", {"value": 1}), cache)
        b = execute_job(JobSpec.make("selftest-echo", {"value": 2}), cache)
        assert (a.value, b.value) == (1, 2)


class TestByteAccounting:
    def test_store_counts_bytes_written(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("aa" + "0" * 62, {"payload": list(range(100))})
        assert cache.stats.bytes_written > 0
        assert cache.stats.bytes_written == cache.total_bytes()

    def test_stats_dict_includes_byte_fields(self, tmp_path):
        cache = ResultCache(tmp_path)
        stats = cache.stats.as_dict()
        for field in ("bytes_written", "evictions", "bytes_evicted"):
            assert field in stats


class TestPrune:
    def fill(self, cache, count, size=1000):
        keys = []
        for index in range(count):
            key = f"{index:02x}" + "0" * 62
            cache.store(key, "x" * size)
            keys.append(key)
        return keys

    def test_prune_noop_under_budget(self, tmp_path):
        cache = ResultCache(tmp_path)
        self.fill(cache, 3)
        result = cache.prune(max_bytes=10**9)
        assert result.evicted == 0
        assert result.bytes_evicted == 0
        assert result.remaining_bytes == cache.total_bytes()

    def test_prune_drops_oldest_first(self, tmp_path):
        import os
        import time

        cache = ResultCache(tmp_path)
        keys = self.fill(cache, 4)
        # Force a strict mtime ordering, oldest first.
        now = time.time()
        for age, key in enumerate(reversed(keys)):
            path = cache.path_for(key)
            os.utime(path, (now - age * 100, now - age * 100))
        per_entry = cache.total_bytes() // 4
        result = cache.prune(max_bytes=per_entry * 2)
        assert result.evicted == 2
        hit_oldest, _ = cache.lookup(keys[0])
        hit_newest, _ = cache.lookup(keys[-1])
        assert not hit_oldest  # LRU victim
        assert hit_newest
        assert cache.total_bytes() <= per_entry * 2
        assert cache.stats.evictions == 2
        assert cache.stats.bytes_evicted == result.bytes_evicted > 0

    def test_prune_to_zero_empties_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        self.fill(cache, 3)
        result = cache.prune(max_bytes=0)
        assert result.evicted == 3
        assert cache.total_bytes() == 0

    def test_prune_tolerates_concurrent_deletion(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = self.fill(cache, 2)
        # Simulate another process removing an entry mid-prune.
        cache.path_for(keys[0]).unlink()
        result = cache.prune(max_bytes=0)
        assert result.evicted == 1
        assert cache.total_bytes() == 0

    def test_prune_missing_dir_is_noop(self, tmp_path):
        cache = ResultCache(tmp_path / "never-created")
        result = cache.prune(max_bytes=0)
        assert result.evicted == 0


class TestConcurrentAccess:
    """Many threads hammering one cache directory: no torn reads."""

    def test_parallel_store_and_lookup_never_torn(self, tmp_path):
        import threading

        cache = ResultCache(tmp_path)
        key = "ab" + "0" * 62
        payload = {"rows": list(range(500))}
        errors = []
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                ResultCache(tmp_path).store(key, payload)

        def reader():
            local = ResultCache(tmp_path)
            for _ in range(200):
                try:
                    hit, value = local.lookup(key)
                except Exception as exc:  # torn read would surface here
                    errors.append(exc)
                    return
                if hit and value != payload:
                    errors.append(AssertionError(f"torn value: {value!r}"))
                    return

        write_thread = threading.Thread(target=writer)
        readers = [threading.Thread(target=reader) for _ in range(4)]
        write_thread.start()
        for thread in readers:
            thread.start()
        for thread in readers:
            thread.join()
        stop.set()
        write_thread.join()
        assert errors == []
        hit, value = cache.lookup(key)
        assert hit and value == payload

    def test_corrupt_entry_eviction_race_is_safe(self, tmp_path):
        """Two caches both spotting the same corrupt file must not crash."""
        import threading

        cache = ResultCache(tmp_path)
        key = "cd" + "0" * 62
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        errors = []
        barrier = threading.Barrier(4)

        def evict():
            local = ResultCache(tmp_path)
            barrier.wait()
            try:
                hit, _ = local.lookup(key)
                assert not hit
            except Exception as exc:
                errors.append(exc)

        for _ in range(20):
            path.write_bytes(b"not a pickle")
            threads = [threading.Thread(target=evict) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert errors == []
            assert not path.exists()
