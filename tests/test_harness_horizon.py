"""Horizon-chunked ``run-all``: one horizon split into resumable day ranges.

``run_all_chunked(horizon_chunk_days=...)`` replaces the single
``simulate`` root with a chain of ``simulate-chunk`` jobs that hand a
checkpoint to their successor through the cache.  The contract: the
chunked run's artifacts are byte-identical to the classic single-shot
run, and the final chunk publishes the full result under the plain
``simulate`` cache key so downstream jobs cannot tell the difference.
"""

import pytest

from repro.harness import (
    ResultCache,
    build_waves,
    run_all,
    run_all_chunked,
    run_cached,
    simulate_chunk_spec,
    simulate_spec,
)
from repro.scenarios.partition_event import PartitionScenarioConfig
from repro.sim.engine import ForkSimConfig, run_fork_sim

DAYS = 6
QUICK_PARTITION = PartitionScenarioConfig(
    num_nodes=14, num_miners=4, post_fork_horizon=1200.0
)


def _runall_kwargs(root, out):
    return dict(
        days=DAYS,
        prefork_days=2,
        jobs=1,
        cache_dir=root / "cache",
        output_dir=root / out,
        timeout=300.0,
        partition_config=QUICK_PARTITION,
    )


class TestWavePlan:
    def test_chunk_chain_replaces_simulate_root(self):
        config = ForkSimConfig(days=10)
        waves = build_waves(config, horizon_chunk_days=3)
        # uptos 3, 6, 9, 10 → four chunk waves, then echoes, then figures.
        assert [len(wave) for wave in waves] == [2, 1, 1, 1, 1, 6]
        labels = [spec.label for wave in waves for spec in wave]
        assert labels[0] == f"simulate-chunk[3/10d seed={config.seed}]"
        assert f"simulate-chunk[10/10d seed={config.seed}]" in labels
        assert not any(label.startswith("simulate[") for label in labels)

    def test_exact_multiple_has_no_stub_chunk(self):
        waves = build_waves(ForkSimConfig(days=10), horizon_chunk_days=5)
        chunk_labels = [
            spec.label
            for wave in waves
            for spec in wave
            if spec.kind == "simulate-chunk"
        ]
        assert len(chunk_labels) == 2

    def test_chunk_days_validated(self):
        with pytest.raises(ValueError):
            build_waves(ForkSimConfig(days=10), horizon_chunk_days=0)


class TestChunkRunner:
    def test_cold_chunk_chains_through_cache(self, tmp_path):
        config = ForkSimConfig(days=DAYS, prefork_days=2, seed=7)
        cache = ResultCache(tmp_path / "cache")
        # Asking for the *final* chunk cold recursively computes its
        # predecessors through the cache.
        final = run_cached(simulate_chunk_spec(config, DAYS, 2), cache)
        assert final["checkpoint"] is None
        assert final["digest"] == run_fork_sim(config).digest()
        # Every intermediate chunk landed in the cache on the way.
        for upto in (2, 4):
            spec = simulate_chunk_spec(config, upto, 2)
            assert cache.contains(spec.cache_key())

    def test_final_chunk_publishes_simulate_key(self, tmp_path):
        config = ForkSimConfig(days=DAYS, prefork_days=2, seed=7)
        cache = ResultCache(tmp_path / "cache")
        run_cached(simulate_chunk_spec(config, DAYS, 3), cache)
        hit, value = cache.lookup(simulate_spec(config).cache_key())
        assert hit
        assert value.digest() == run_fork_sim(config).digest()

    def test_intermediate_chunk_does_not_publish(self, tmp_path):
        config = ForkSimConfig(days=DAYS, prefork_days=2, seed=7)
        cache = ResultCache(tmp_path / "cache")
        partial = run_cached(simulate_chunk_spec(config, 3, 3), cache)
        assert partial["checkpoint"] is not None
        assert not cache.contains(simulate_spec(config).cache_key())


class TestHorizonChunkedRunAll:
    def test_artifacts_match_classic_run(self, tmp_path):
        classic = run_all(**_runall_kwargs(tmp_path / "a", "out"))
        assert not classic.failures
        result = run_all_chunked(
            **_runall_kwargs(tmp_path / "b", "out"),
            chunk_size=2,
            horizon_chunk_days=2,
        )
        assert result.state == "complete"
        assert result.exit_code == 0
        assert not result.manifest.failures
        for number in range(1, 6):
            for suffix in ("txt", "csv"):
                name = f"figure{number}.{suffix}"
                assert (tmp_path / "b" / "out" / name).read_bytes() == (
                    tmp_path / "a" / "out" / name
                ).read_bytes()
        assert (tmp_path / "b" / "out" / "observations.txt").read_bytes() == (
            tmp_path / "a" / "out" / "observations.txt"
        ).read_bytes()

    def test_requires_cache(self, tmp_path):
        with pytest.raises(ValueError, match="cache"):
            run_all_chunked(
                days=DAYS,
                prefork_days=2,
                cache_dir=None,
                output_dir=tmp_path / "out",
                partition_config=QUICK_PARTITION,
                chunk_size=2,
                horizon_chunk_days=2,
            )
