"""Mining layer: hashpower ledger, payouts, pools, strategies."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mining.hashpower import (
    HashpowerLedger,
    sample_block_interval,
    winner_weighted_choice,
)
from repro.mining.miner import Miner, MinerAllegiance
from repro.mining.payout import PPLNSPayout, ProportionalPayout, Share
from repro.mining.pool import MiningPool, PoolDirectory
from repro.mining.strategy import (
    ChainEconomics,
    RationalSwitching,
    hashes_per_usd,
    profitability_usd_per_second,
)


class TestHashpowerLedger:
    def test_set_and_total(self):
        ledger = HashpowerLedger()
        ledger.set_hashrate("a", 100.0)
        ledger.set_hashrate("b", 300.0)
        assert ledger.total == 400.0
        assert ledger.shares() == {"a": 0.25, "b": 0.75}

    def test_zero_removes(self):
        ledger = HashpowerLedger()
        ledger.set_hashrate("a", 100.0)
        ledger.set_hashrate("a", 0.0)
        assert "a" not in ledger
        assert len(ledger) == 0

    def test_add_hashrate_clamps_at_zero(self):
        ledger = HashpowerLedger()
        ledger.set_hashrate("a", 10.0)
        ledger.add_hashrate("a", -50.0)
        assert ledger.hashrate_of("a") == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            HashpowerLedger().set_hashrate("a", -1.0)

    def test_expected_blocks(self):
        ledger = HashpowerLedger()
        ledger.set_hashrate("a", 1000.0)
        assert ledger.expected_blocks(difficulty=14_000, seconds=14_000) == 1000.0

    def test_winner_distribution_tracks_shares(self):
        """Statistical: winner frequency ≈ hashrate share (Figure 5's
        underlying assumption)."""
        ledger = HashpowerLedger()
        ledger.set_hashrate("big", 900.0)
        ledger.set_hashrate("small", 100.0)
        rng = random.Random(42)
        wins = sum(1 for _ in range(4000) if ledger.sample_winner(rng) == "big")
        assert 0.86 < wins / 4000 < 0.94

    def test_interval_is_exponential_with_right_mean(self):
        rng = random.Random(42)
        samples = [sample_block_interval(14_000, 1000.0, rng) for _ in range(4000)]
        mean = sum(samples) / len(samples)
        assert 13 < mean < 15

    def test_zero_hashrate_raises(self):
        with pytest.raises(ValueError):
            sample_block_interval(1000, 0.0, random.Random(1))

    def test_weighted_choice_requires_positive_mass(self):
        with pytest.raises(ValueError):
            winner_weighted_choice({}, random.Random(1))


class TestPayouts:
    def test_proportional_splits_by_round_shares(self):
        payout = ProportionalPayout()
        payout.record_share(Share("a", 3.0))
        payout.record_share(Share("b", 1.0))
        result = payout.split_reward(4000)
        assert result == {"a": 3000, "b": 1000}

    def test_proportional_round_resets(self):
        payout = ProportionalPayout()
        payout.record_share(Share("a", 1.0))
        payout.split_reward(100)
        assert payout.split_reward(100) == {}

    def test_pplns_window_spans_rounds(self):
        payout = PPLNSPayout(window=100)
        payout.record_share(Share("a", 1.0))
        payout.split_reward(100)
        # "a" still in the window; next reward still pays them.
        assert payout.split_reward(100) == {"a": 100}

    def test_pplns_window_evicts_old_shares(self):
        payout = PPLNSPayout(window=2)
        payout.record_share(Share("a", 1.0))
        payout.record_share(Share("b", 1.0))
        payout.record_share(Share("b", 1.0))  # evicts a's share
        assert payout.split_reward(100) == {"b": 100}

    def test_payout_never_exceeds_reward(self):
        payout = ProportionalPayout()
        for member in "abcdefg":
            payout.record_share(Share(member, 1 / 3))
        result = payout.split_reward(1000)
        assert sum(result.values()) <= 1000

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            PPLNSPayout(window=0)


class TestMiningPool:
    def test_pool_aggregates_member_hashrate(self):
        pool = MiningPool("testpool")
        pool.join("m1", 100.0)
        pool.join("m2", 300.0)
        assert pool.hashrate == 400.0

    def test_block_reward_distribution_with_fee(self):
        pool = MiningPool("testpool", fee_fraction=0.10)
        pool.join("m1", 100.0)
        pool.join("m2", 300.0)
        pool.record_effort(seconds=1000)
        payouts = pool.on_block_won(10_000)
        assert pool.operator_earned >= 1000  # the fee
        assert payouts["m2"] == 3 * payouts["m1"]
        assert pool.blocks_won == 1

    def test_member_earnings_accumulate(self):
        pool = MiningPool("p", fee_fraction=0.0)
        pool.join("m1", 1.0)
        pool.record_effort(100)
        pool.on_block_won(500)
        assert pool.members["m1"].earned == 500

    def test_leave_and_rehash(self):
        pool = MiningPool("p")
        pool.join("m1", 5.0)
        pool.set_member_hashrate("m1", 7.0)
        assert pool.hashrate == 7.0
        pool.leave("m1")
        assert pool.hashrate == 0.0

    def test_coinbase_is_stable_per_name(self):
        assert MiningPool("alpha").coinbase == MiningPool("alpha").coinbase
        assert MiningPool("alpha").coinbase != MiningPool("beta").coinbase

    def test_invalid_fee(self):
        with pytest.raises(ValueError):
            MiningPool("p", fee_fraction=1.0)


class TestPoolDirectory:
    def test_resolves_pool_coinbase(self):
        pool = MiningPool("dwarfpool")
        directory = PoolDirectory()
        directory.register_pool(pool)
        assert directory.name_for(pool.coinbase) == "dwarfpool"
        assert directory.label_for(pool.coinbase) == "dwarfpool"

    def test_unknown_coinbase_gets_truncated_label(self):
        from repro.chain.types import Address

        directory = PoolDirectory()
        unknown = Address.from_int(0xABCDEF)
        assert directory.name_for(unknown) is None
        assert directory.label_for(unknown) == unknown.hex()[:10]


class TestEconomics:
    def test_hashes_per_usd_formula(self):
        economics = ChainEconomics("ETH", difficulty=70_000_000_000_000,
                                   price_usd=14.0)
        # hashes/ether = d/5; hashes/USD = d/5/price
        assert hashes_per_usd(economics) == pytest.approx(
            70_000_000_000_000 / 5 / 14.0
        )

    def test_profitability_scales_with_hashrate(self):
        economics = ChainEconomics("ETH", difficulty=10**12, price_usd=10.0)
        assert profitability_usd_per_second(
            economics, 2e6
        ) == pytest.approx(2 * profitability_usd_per_second(economics, 1e6))


class TestRationalSwitching:
    def economics(self, eth_price=10.0, etc_price=1.0, eth_diff=10**13,
                  etc_diff=10**12):
        return {
            "ETH": ChainEconomics("ETH", eth_diff, eth_price),
            "ETC": ChainEconomics("ETC", etc_diff, etc_price),
        }

    def test_ideological_miners_never_leave(self):
        strategy = RationalSwitching(seed=1)
        anti = Miner("anti", 1e6, allegiance=MinerAllegiance.ANTI_FORK,
                     chain="ETC")
        # Make ETH vastly more profitable; the loyalist stays.
        options = self.economics(eth_price=100.0, eth_diff=10**12)
        assert strategy.decide(anti, options) == "ETC"

    def test_pro_fork_moves_to_eth(self):
        strategy = RationalSwitching(seed=1)
        pro = Miner("pro", 1e6, allegiance=MinerAllegiance.PRO_FORK,
                    chain="pre-fork")
        assert strategy.decide(pro, self.economics()) == "ETH"

    def test_profit_miner_chases_revenue_with_agility(self):
        strategy = RationalSwitching(threshold=0.01, seed=3)
        miner = Miner("p", 1e6, allegiance=MinerAllegiance.PROFIT,
                      chain="ETH", agility=1.0)
        # ETC at a tenth the difficulty but the same price: 10x revenue.
        options = self.economics(etc_price=10.0)
        assert strategy.decide(miner, options) == "ETC"

    def test_profit_miner_with_zero_agility_stays(self):
        strategy = RationalSwitching(threshold=0.01, seed=3)
        miner = Miner("p", 1e6, chain="ETH", agility=0.0)
        options = self.economics(etc_price=10.0)
        assert strategy.decide(miner, options) == "ETH"

    def test_small_gaps_below_threshold_ignored(self):
        strategy = RationalSwitching(threshold=0.5, seed=3)
        miner = Miner("p", 1e6, chain="ETH", agility=1.0)
        # ETC only slightly better.
        options = self.economics(eth_price=10.0, etc_price=1.05,
                                 etc_diff=10**12)
        assert strategy.decide(miner, options) == "ETH"

    def test_dead_home_chain_forces_move(self):
        strategy = RationalSwitching(seed=1)
        miner = Miner("p", 1e6, chain="pre-fork", agility=0.0)
        assert strategy.decide(miner, self.economics()) in {"ETH", "ETC"}

    def test_apply_epoch_mutates_population(self):
        strategy = RationalSwitching(threshold=0.01, seed=5)
        miners = {
            f"m{i}": Miner(f"m{i}", 1e6, chain="ETH", agility=1.0)
            for i in range(10)
        }
        options = self.economics(etc_price=20.0)
        switches = strategy.apply_epoch(miners, options)
        assert switches.get("ETC", 0) == 10
        assert all(m.chain == "ETC" for m in miners.values())

    def test_miner_validation(self):
        with pytest.raises(ValueError):
            Miner("bad", hashrate=0)
        with pytest.raises(ValueError):
            Miner("bad", hashrate=1.0, allegiance="flip-flopper")

    def test_miner_earnings_ledger(self):
        miner = Miner("m", 1.0)
        miner.credit("ETH", 100)
        miner.credit("ETH", 50)
        miner.credit("ETC", 7)
        assert miner.total_earned("ETH") == 150
        assert miner.total_earned("ETC") == 7
