"""TimeSeries operations and the Pearson statistic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.timeseries import TimeSeries, align, pearson


class TestConstruction:
    def test_sorts_by_timestamp(self):
        series = TimeSeries([3, 1, 2], [30.0, 10.0, 20.0])
        assert series.timestamps == [1, 2, 3]
        assert series.values == [10.0, 20.0, 30.0]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries([1, 2], [1.0])

    def test_from_pairs(self):
        series = TimeSeries.from_pairs([(1, 2.0), (0, 1.0)])
        assert list(series) == [(0, 1.0), (1, 2.0)]

    def test_from_window_dict(self):
        series = TimeSeries.from_window_dict({0: 5.0, 2: 7.0}, width=3600)
        assert series.timestamps == [0, 7200]


class TestOperations:
    def test_map(self):
        series = TimeSeries([0, 1], [1.0, 2.0]).map(lambda v: v * 10)
        assert series.values == [10.0, 20.0]

    def test_ratio_to_aligns_first(self):
        a = TimeSeries([0, 1, 2], [10.0, 20.0, 30.0])
        b = TimeSeries([1, 2, 3], [2.0, 3.0, 4.0])
        ratio = a.ratio_to(b)
        assert ratio.timestamps == [1, 2]
        assert ratio.values == [10.0, 10.0]

    def test_resample_mean(self):
        series = TimeSeries([0, 10, 3700], [1.0, 3.0, 8.0])
        hourly = series.resample_mean(3600)
        assert hourly.timestamps == [0, 3600]
        assert hourly.values == [2.0, 8.0]

    def test_clip_time_half_open(self):
        series = TimeSeries([0, 5, 10], [1.0, 2.0, 3.0])
        clipped = series.clip_time(0, 10)
        assert clipped.timestamps == [0, 5]

    def test_summaries(self):
        series = TimeSeries([0, 1, 2], [5.0, 9.0, 1.0])
        assert series.mean() == 5.0
        assert series.max() == 9.0
        assert series.min() == 1.0
        assert series.argmax() == 1

    def test_empty_series_mean_raises(self):
        with pytest.raises(ValueError):
            TimeSeries([], []).mean()


class TestAlign:
    def test_common_timestamps_only(self):
        a = TimeSeries([0, 1, 2], [1.0, 2.0, 3.0])
        b = TimeSeries([1, 2, 3], [4.0, 5.0, 6.0])
        aligned_a, aligned_b = align(a, b)
        assert aligned_a.timestamps == [1, 2]
        assert aligned_b.values == [4.0, 5.0]


class TestPearson:
    def test_perfect_positive(self):
        a = TimeSeries([0, 1, 2], [1.0, 2.0, 3.0])
        b = TimeSeries([0, 1, 2], [10.0, 20.0, 30.0])
        assert pearson(a, b) == pytest.approx(1.0)

    def test_perfect_negative(self):
        a = TimeSeries([0, 1, 2], [1.0, 2.0, 3.0])
        b = TimeSeries([0, 1, 2], [3.0, 2.0, 1.0])
        assert pearson(a, b) == pytest.approx(-1.0)

    def test_constant_series_rejected(self):
        a = TimeSeries([0, 1], [1.0, 1.0])
        b = TimeSeries([0, 1], [1.0, 2.0])
        with pytest.raises(ValueError):
            pearson(a, b)

    def test_insufficient_overlap_rejected(self):
        a = TimeSeries([0], [1.0])
        b = TimeSeries([0], [2.0])
        with pytest.raises(ValueError):
            pearson(a, b)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1000),
                st.floats(min_value=-1e6, max_value=1e6),
            ),
            min_size=3,
            max_size=40,
            unique_by=lambda pair: pair[0],
        )
    )
    @settings(max_examples=60)
    def test_pearson_bounded_and_symmetric(self, pairs):
        timestamps = [t for t, _ in pairs]
        values = [v for _, v in pairs]
        if max(values) - min(values) < 1e-6:
            return  # (near-)constant series: correlation numerically degenerate
        a = TimeSeries(timestamps, values)
        b = TimeSeries(timestamps, [v * 2 + 1 for v in values])
        try:
            r_ab = pearson(a, b)
            r_ba = pearson(b, a)
        except ValueError:
            return  # constant series
        assert -1.0 - 1e-9 <= r_ab <= 1.0 + 1e-9
        assert r_ab == pytest.approx(r_ba)
        # b is a positive affine map of a: correlation must be 1.
        assert r_ab == pytest.approx(1.0)
