"""TimeSeries operations and the Pearson statistic."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.timeseries import TimeSeries, align, pearson


class TestConstruction:
    def test_sorts_by_timestamp(self):
        series = TimeSeries([3, 1, 2], [30.0, 10.0, 20.0])
        assert series.timestamps == [1, 2, 3]
        assert series.values == [10.0, 20.0, 30.0]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries([1, 2], [1.0])

    def test_from_pairs(self):
        series = TimeSeries.from_pairs([(1, 2.0), (0, 1.0)])
        assert list(series) == [(0, 1.0), (1, 2.0)]

    def test_from_window_dict(self):
        series = TimeSeries.from_window_dict({0: 5.0, 2: 7.0}, width=3600)
        assert series.timestamps == [0, 7200]


class TestOperations:
    def test_map(self):
        series = TimeSeries([0, 1], [1.0, 2.0]).map(lambda v: v * 10)
        assert series.values == [10.0, 20.0]

    def test_ratio_to_aligns_first(self):
        a = TimeSeries([0, 1, 2], [10.0, 20.0, 30.0])
        b = TimeSeries([1, 2, 3], [2.0, 3.0, 4.0])
        ratio = a.ratio_to(b)
        assert ratio.timestamps == [1, 2]
        assert ratio.values == [10.0, 10.0]

    def test_resample_mean(self):
        series = TimeSeries([0, 10, 3700], [1.0, 3.0, 8.0])
        hourly = series.resample_mean(3600)
        assert hourly.timestamps == [0, 3600]
        assert hourly.values == [2.0, 8.0]

    def test_clip_time_half_open(self):
        series = TimeSeries([0, 5, 10], [1.0, 2.0, 3.0])
        clipped = series.clip_time(0, 10)
        assert clipped.timestamps == [0, 5]

    def test_summaries(self):
        series = TimeSeries([0, 1, 2], [5.0, 9.0, 1.0])
        assert series.mean() == 5.0
        assert series.max() == 9.0
        assert series.min() == 1.0
        assert series.argmax() == 1

    def test_empty_series_mean_raises(self):
        with pytest.raises(ValueError):
            TimeSeries([], []).mean()


class TestNaNGaps:
    """Zero denominators are gaps (NaN), never ``inf``.

    Regression for the silent numeric poisoning: ``ratio_to`` used to
    map ``a/0`` — including ``0/0`` — to ``float("inf")``, and one such
    point turned every downstream windowed mean infinite.
    """

    def test_zero_denominator_is_nan_not_inf(self):
        a = TimeSeries([0, 1, 2], [10.0, 20.0, 30.0])
        b = TimeSeries([0, 1, 2], [2.0, 0.0, 3.0])
        ratio = a.ratio_to(b)
        assert ratio.values[0] == 5.0
        assert math.isnan(ratio.values[1])
        assert ratio.values[2] == 10.0
        assert not any(math.isinf(v) for v in ratio.values)

    def test_zero_over_zero_is_nan(self):
        a = TimeSeries([0], [0.0])
        b = TimeSeries([0], [0.0])
        assert math.isnan(a.ratio_to(b).values[0])

    def test_resample_mean_skips_nan(self):
        series = TimeSeries(
            [0, 10, 20], [1.0, float("nan"), 3.0]
        )
        resampled = series.resample_mean(3600)
        assert resampled.values == [2.0]

    def test_resample_drops_all_nan_windows(self):
        series = TimeSeries(
            [0, 3700], [float("nan"), 4.0]
        )
        resampled = series.resample_mean(3600)
        assert resampled.timestamps == [3600]
        assert resampled.values == [4.0]

    def test_mean_skips_nan(self):
        series = TimeSeries([0, 1, 2], [1.0, float("nan"), 3.0])
        assert series.mean() == 2.0

    def test_all_nan_mean_raises(self):
        with pytest.raises(ValueError):
            TimeSeries([0], [float("nan")]).mean()

    def test_figure3_ratio_path_with_zero_volume_window(self):
        """The Figure 3 hashes/USD comparison with a dead window.

        Build two daily series the way the figure pipeline does (one
        value per day), zero out one ETC day (a zero-volume window: no
        blocks, no priced revenue), take the ETH:ETC ratio, and resample
        to weekly means.  Every resampled mean must be finite — under
        the old ``inf`` behaviour the week containing the dead day (and
        the overall mean) came out infinite.
        """
        day = 86_400
        timestamps = [i * day for i in range(14)]
        eth = TimeSeries(timestamps, [5.0e15 + i * 1e13 for i in range(14)],
                         name="ETH hashes/USD")
        etc_values = [2.0e15 + i * 1e13 for i in range(14)]
        etc_values[3] = 0.0  # the zero-volume window
        etc = TimeSeries(timestamps, etc_values, name="ETC hashes/USD")

        ratio = eth.ratio_to(etc, name="ETH:ETC")
        weekly = ratio.resample_mean(7 * day)

        assert len(weekly) == 2
        assert all(math.isfinite(v) for v in weekly.values)
        assert math.isfinite(ratio.mean())
        # The dead day is a gap, not a data point: the weekly mean must
        # average the six live days, staying near the true ~2.5 ratio.
        assert weekly.values[0] == pytest.approx(2.5, rel=0.05)


class TestAlign:
    def test_common_timestamps_only(self):
        a = TimeSeries([0, 1, 2], [1.0, 2.0, 3.0])
        b = TimeSeries([1, 2, 3], [4.0, 5.0, 6.0])
        aligned_a, aligned_b = align(a, b)
        assert aligned_a.timestamps == [1, 2]
        assert aligned_b.values == [4.0, 5.0]


class TestPearson:
    def test_perfect_positive(self):
        a = TimeSeries([0, 1, 2], [1.0, 2.0, 3.0])
        b = TimeSeries([0, 1, 2], [10.0, 20.0, 30.0])
        assert pearson(a, b) == pytest.approx(1.0)

    def test_perfect_negative(self):
        a = TimeSeries([0, 1, 2], [1.0, 2.0, 3.0])
        b = TimeSeries([0, 1, 2], [3.0, 2.0, 1.0])
        assert pearson(a, b) == pytest.approx(-1.0)

    def test_constant_series_rejected(self):
        a = TimeSeries([0, 1], [1.0, 1.0])
        b = TimeSeries([0, 1], [1.0, 2.0])
        with pytest.raises(ValueError):
            pearson(a, b)

    def test_insufficient_overlap_rejected(self):
        a = TimeSeries([0], [1.0])
        b = TimeSeries([0], [2.0])
        with pytest.raises(ValueError):
            pearson(a, b)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1000),
                st.floats(min_value=-1e6, max_value=1e6),
            ),
            min_size=3,
            max_size=40,
            unique_by=lambda pair: pair[0],
        )
    )
    @settings(max_examples=60)
    def test_pearson_bounded_and_symmetric(self, pairs):
        timestamps = [t for t, _ in pairs]
        values = [v for _, v in pairs]
        if max(values) - min(values) < 1e-6:
            return  # (near-)constant series: correlation numerically degenerate
        a = TimeSeries(timestamps, values)
        b = TimeSeries(timestamps, [v * 2 + 1 for v in values])
        try:
            r_ab = pearson(a, b)
            r_ba = pearson(b, a)
        except ValueError:
            return  # constant series
        assert -1.0 - 1e-9 <= r_ab <= 1.0 + 1e-9
        assert r_ab == pytest.approx(r_ba)
        # b is a positive affine map of a: correlation must be 1.
        assert r_ab == pytest.approx(1.0)
