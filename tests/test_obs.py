"""Unit tests for repro.obs: metrics, tracer, spans, and the facade."""

import io
import json

import pytest

from repro.obs import (
    DEFAULT_RING_CAPACITY,
    MetricsRegistry,
    Observability,
    SpanProfile,
    TRACE_EVENT_KINDS,
    Tracer,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("x")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")


class TestGauge:
    def test_set_and_add(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(3.5)
        gauge.add(1.5)
        assert gauge.value == 5.0


class TestHistogram:
    def test_observations_land_in_buckets(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 0.7, 5.0, 100.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.counts == [2, 1, 1]  # <=1, <=10, overflow
        assert hist.mean() == pytest.approx((0.5 + 0.7 + 5.0 + 100.0) / 4)

    def test_empty_mean_is_zero(self):
        assert MetricsRegistry().histogram("h").mean() == 0.0

    def test_rebuckets_must_match(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1.0, 3.0))


class TestMetricsRegistry:
    def test_cross_type_name_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(ValueError):
            registry.gauge("name")
        with pytest.raises(ValueError):
            registry.histogram("name")

    def test_dump_is_sorted_and_canonical(self):
        registry = MetricsRegistry()
        registry.counter("b").inc(2)
        registry.counter("a").inc(1)
        registry.gauge("z").set(1.5)
        dump = registry.dump()
        assert list(dump["counters"]) == ["a", "b"]
        # dumps() must be canonical JSON: re-encoding the parsed dump
        # with the same settings reproduces it byte for byte.
        text = registry.dumps()
        assert text == json.dumps(
            json.loads(text), sort_keys=True, separators=(",", ":")
        )

    def test_same_recording_same_digest(self):
        def record(registry):
            registry.counter("events").inc(7)
            registry.gauge("depth").set(2.0)
            registry.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)

        a, b = MetricsRegistry(), MetricsRegistry()
        record(a)
        record(b)
        assert a.digest() == b.digest()
        a.counter("events").inc()
        assert a.digest() != b.digest()

    def test_summary_none_when_empty(self):
        assert MetricsRegistry().summary() is None
        registry = MetricsRegistry()
        registry.counter("x").inc()
        summary = registry.summary()
        assert summary["counters"] == {"x": 1}
        assert summary["digest"] == registry.digest()


class TestTracer:
    def test_emits_canonical_lines_to_ring_and_sink(self):
        sink = io.StringIO()
        tracer = Tracer(capacity=8, sink=sink)
        tracer.emit(1.5, "msg.send", src="a", dst="b")
        events = tracer.tail()
        assert events == [{"t": 1.5, "kind": "msg.send",
                           "src": "a", "dst": "b"}]
        line = sink.getvalue().strip()
        assert json.loads(line)["kind"] == "msg.send"
        assert line == json.dumps(
            json.loads(line), sort_keys=True, separators=(",", ":")
        )

    def test_ring_evicts_but_digest_covers_everything(self):
        small = Tracer(capacity=2)
        big = Tracer(capacity=1000)
        for i in range(10):
            small.emit(float(i), "event.fired", seq=i)
            big.emit(float(i), "event.fired", seq=i)
        assert len(small.tail()) == 2
        assert small.tail()[-1]["seq"] == 9
        # Retention differs; the stream fingerprint must not.
        assert small.digest() == big.digest()
        assert small.events_emitted == 10

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)
        unbounded = Tracer(capacity=None)
        unbounded.emit(0.0, "reorg")
        assert len(unbounded.tail()) == 1

    def test_nan_fields_rejected(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            tracer.emit(0.0, "msg.send", delay=float("nan"))

    def test_summary_counts_by_kind(self):
        tracer = Tracer()
        tracer.emit(0.0, "msg.send")
        tracer.emit(1.0, "msg.send")
        tracer.emit(2.0, "msg.lost")
        summary = tracer.summary()
        assert summary["events"] == 3
        assert summary["by_kind"] == {"msg.lost": 1, "msg.send": 2}
        assert summary["digest"] == tracer.digest()

    def test_taxonomy_is_closed_and_prefixed(self):
        assert len(TRACE_EVENT_KINDS) == len(set(TRACE_EVENT_KINDS))
        for kind in TRACE_EVENT_KINDS:
            prefix = kind.split(".", 1)[0]
            assert prefix in ("event", "msg", "block", "reorg", "fault")


class TestSpanProfile:
    def test_records_totals_counts_maxima(self):
        profile = SpanProfile()
        with profile.span("work"):
            pass
        with profile.span("work"):
            pass
        assert profile.counts["work"] == 2
        assert profile.totals["work"] >= 0.0
        assert profile.maxima["work"] <= profile.totals["work"]
        dump = profile.dump()
        assert dump["work"]["count"] == 2

    def test_report_ranks_by_total(self):
        profile = SpanProfile()
        profile._record("slow", 2.0)
        profile._record("fast", 0.1)
        report = profile.report()
        assert report.index("slow") < report.index("fast")

    def test_empty_report(self):
        assert "no spans" in SpanProfile().report()


class TestObservability:
    def test_enabled_builds_all_three(self):
        obs = Observability.enabled()
        assert obs.metrics is not None
        assert obs.tracer is not None
        assert obs.profile is not None
        assert obs.tracer._ring.maxlen == DEFAULT_RING_CAPACITY

    def test_span_without_profile_is_noop(self):
        obs = Observability(metrics=MetricsRegistry())
        with obs.span("anything"):
            pass  # must not raise, must not record anywhere

    def test_partial_bundles(self):
        metrics_only = Observability(metrics=MetricsRegistry())
        assert metrics_only.tracer is None
        tracer_only = Observability(tracer=Tracer())
        assert tracer_only.metrics is None
