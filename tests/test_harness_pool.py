"""The worker pool: parallel/serial parity, timeouts, retries."""

import pytest

from repro.harness import JobSpec, WorkerPool


def echo_specs(count):
    return [
        JobSpec.make("selftest-echo", {"value": index}, label=f"echo-{index}")
        for index in range(count)
    ]


def make_pool(**kwargs):
    kwargs.setdefault("timeout", 60.0)
    kwargs.setdefault("retries", 0)
    pool = WorkerPool(**kwargs)
    if kwargs.get("workers", 1) > 1 and pool.workers == 1:
        pytest.skip("multiprocessing unavailable on this host")
    return pool


class TestSerial:
    def test_results_in_input_order(self):
        results = make_pool(workers=1).run(echo_specs(5))
        assert [r.value for r in results] == list(range(5))
        assert all(r.record.status == "ok" for r in results)

    def test_failure_recorded_not_raised(self):
        spec = JobSpec.make("no-such-kind", {}, label="bad")
        [result] = make_pool(workers=1).run([spec])
        assert result.record.status == "failed"
        assert result.value is None
        assert "no-such-kind" in result.record.error

    def test_serial_retry_then_success(self, tmp_path):
        marker = tmp_path / "marker"
        spec = JobSpec.make(
            "selftest-flaky",
            {"marker_path": str(marker), "fail_times": 1},
        )
        [result] = make_pool(workers=1, retries=1).run([spec])
        assert result.record.status == "ok"
        assert result.record.attempts == 2

    def test_serial_uses_cache(self, tmp_path):
        pool = make_pool(workers=1, cache_dir=str(tmp_path / "cache"))
        spec = JobSpec.make("selftest-echo", {"value": 7})
        [cold] = pool.run([spec])
        [warm] = pool.run([spec])
        assert not cold.record.cache_hit
        assert warm.record.cache_hit
        assert warm.value == 7


class TestParallel:
    def test_parity_with_serial(self):
        specs = echo_specs(6)
        serial = make_pool(workers=1).run(specs)
        parallel = make_pool(workers=3).run(specs)
        assert [r.value for r in serial] == [r.value for r in parallel]
        assert [r.spec.cache_key() for r in serial] == [
            r.spec.cache_key() for r in parallel
        ]

    def test_timeout_then_retry_then_give_up(self):
        sleeper = JobSpec.make(
            "selftest-sleep", {"seconds": 30.0}, label="sleeper"
        )
        quick = JobSpec.make("selftest-echo", {"value": "ok"}, label="quick")
        pool = make_pool(workers=2, timeout=1.0, retries=1)
        results = {r.spec.label: r for r in pool.run([sleeper, quick])}
        assert results["quick"].record.status == "ok"
        timed_out = results["sleeper"].record
        assert timed_out.status == "timeout"
        assert timed_out.attempts == 2  # first try + one fresh-worker retry
        assert timed_out.error and "deadline" in timed_out.error

    def test_crash_retried_in_fresh_worker(self, tmp_path):
        marker = tmp_path / "marker"
        spec = JobSpec.make(
            "selftest-flaky",
            {"marker_path": str(marker), "fail_times": 1},
        )
        [result] = make_pool(workers=2, retries=1).run([spec, *echo_specs(1)])[:1]
        assert result.record.status == "ok"
        assert result.record.attempts == 2
        assert marker.read_text() == "2"

    def test_persistent_failure_gives_up(self, tmp_path):
        marker = tmp_path / "marker"
        spec = JobSpec.make(
            "selftest-flaky",
            {"marker_path": str(marker), "fail_times": 99},
            label="doomed",
        )
        results = make_pool(workers=2, retries=1).run([spec, *echo_specs(1)])
        doomed = next(r for r in results if r.spec.label == "doomed")
        assert doomed.record.status == "failed"
        assert doomed.record.attempts == 2
        assert "selftest-flaky" in doomed.record.error

    def test_cache_shared_across_workers(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        spec = JobSpec.make("selftest-echo", {"value": "shared"})
        cold = make_pool(workers=2, cache_dir=cache_dir).run(
            [spec, *echo_specs(1)]
        )
        warm = make_pool(workers=2, cache_dir=cache_dir).run(
            [spec, *echo_specs(1)]
        )
        assert not cold[0].record.cache_hit
        assert warm[0].record.cache_hit
        assert warm[0].value == "shared"


class TestSerialTimeoutSemantics:
    def test_deadline_is_per_attempt_not_cumulative(self, tmp_path):
        # Regression: the serial path used to measure the deadline from
        # the FIRST attempt, so a flaky job burning 0.15s per try blew a
        # 0.25s budget on attempt 2 and was recorded "timeout" even
        # though no single attempt came close.  Per-attempt semantics
        # (matching the parallel path) must let every retry run.
        marker = tmp_path / "marker"
        spec = JobSpec.make(
            "selftest-flaky",
            {
                "marker_path": str(marker),
                "fail_times": 3,
                "sleep_seconds": 0.15,
            },
        )
        [result] = make_pool(workers=1, timeout=0.25, retries=3).run([spec])
        assert result.record.status == "ok"
        assert result.record.attempts == 4

    def test_single_slow_attempt_still_times_out(self, tmp_path):
        marker = tmp_path / "marker"
        spec = JobSpec.make(
            "selftest-flaky",
            {
                "marker_path": str(marker),
                "fail_times": 99,
                "sleep_seconds": 0.3,
            },
        )
        [result] = make_pool(workers=1, timeout=0.25, retries=3).run([spec])
        assert result.record.status == "timeout"
        assert result.record.attempts == 1


class TestRetryBackoff:
    def test_delay_is_deterministic_and_bounded(self):
        pool = WorkerPool(workers=1, retry_backoff=0.5, backoff_seed=7)
        same = WorkerPool(workers=1, retry_backoff=0.5, backoff_seed=7)
        for attempt in (2, 3, 4):
            delay = pool.backoff_delay("key", attempt)
            assert delay == same.backoff_delay("key", attempt)
            step = 0.5 * 2.0 ** (attempt - 2)
            assert 0.5 * step <= delay < step

    def test_first_attempt_and_disabled_backoff_wait_nothing(self):
        pool = WorkerPool(workers=1, retry_backoff=0.5)
        assert pool.backoff_delay("key", 1) == 0.0
        assert WorkerPool(workers=1).backoff_delay("key", 3) == 0.0

    def test_seed_and_key_shift_the_jitter(self):
        pool = WorkerPool(workers=1, retry_backoff=0.5, backoff_seed=7)
        other_seed = WorkerPool(workers=1, retry_backoff=0.5, backoff_seed=8)
        assert pool.backoff_delay("key", 2) != other_seed.backoff_delay(
            "key", 2
        )
        assert pool.backoff_delay("key", 2) != pool.backoff_delay("other", 2)

    def test_serial_retries_actually_back_off(self, tmp_path):
        import time

        marker = tmp_path / "marker"
        spec = JobSpec.make(
            "selftest-flaky", {"marker_path": str(marker), "fail_times": 1}
        )
        pool = make_pool(workers=1, retries=1, retry_backoff=0.2)
        start = time.perf_counter()
        [result] = pool.run([spec])
        elapsed = time.perf_counter() - start
        assert result.record.status == "ok"
        assert elapsed >= pool.backoff_delay(spec.cache_key(), 2)

    def test_parallel_retries_back_off_without_stalling_others(
        self, tmp_path
    ):
        marker = tmp_path / "marker"
        flaky = JobSpec.make(
            "selftest-flaky",
            {"marker_path": str(marker), "fail_times": 1},
            label="flaky",
        )
        pool = make_pool(workers=2, retries=1, retry_backoff=0.2)
        results = {
            r.spec.label: r for r in pool.run([flaky, *echo_specs(2)])
        }
        assert results["flaky"].record.status == "ok"
        assert results["flaky"].record.attempts == 2
        assert results["echo-0"].record.status == "ok"

    def test_rejects_negative_backoff(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=1, retry_backoff=-0.1)


class TestKillDashNineRecovery:
    def test_sigkilled_worker_is_retried_with_identical_result(
        self, tmp_path
    ):
        # The worker process dies mid-job with SIGKILL — no exception,
        # no pipe message.  The fresh-worker retry must return the same
        # deterministic digest an undisturbed in-process run produces,
        # with the manifest recording both attempts.
        marker = tmp_path / "killed"
        spec = JobSpec.make(
            "selftest-killme",
            {"marker_path": str(marker), "value": "fork-census"},
            label="victim",
        )
        pool = make_pool(workers=2, retries=1)
        results = {r.spec.label: r for r in pool.run([spec, *echo_specs(1)])}
        victim = results["victim"]
        assert victim.record.status == "ok"
        assert victim.record.attempts == 2
        assert marker.exists()  # the first attempt really ran

        reference_marker = tmp_path / "reference"
        reference_marker.write_text("already-dead")  # skip the suicide
        reference = JobSpec.make(
            "selftest-killme",
            {"marker_path": str(reference_marker), "value": "fork-census"},
        )
        [in_process] = make_pool(workers=1).run([reference])
        assert victim.value == in_process.value

    def test_sigkill_with_no_retries_is_a_recorded_failure(self, tmp_path):
        spec = JobSpec.make(
            "selftest-killme",
            {"marker_path": str(tmp_path / "killed"), "value": "x"},
            label="victim",
        )
        pool = make_pool(workers=2, retries=0)
        results = {r.spec.label: r for r in pool.run([spec, *echo_specs(1)])}
        victim = results["victim"].record
        assert victim.status == "failed"
        assert victim.attempts == 1
        assert "worker died" in victim.error


class TestValidation:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=0)

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=1, retries=-1)
