"""The worker pool: parallel/serial parity, timeouts, retries."""

import pytest

from repro.harness import JobSpec, WorkerPool


def echo_specs(count):
    return [
        JobSpec.make("selftest-echo", {"value": index}, label=f"echo-{index}")
        for index in range(count)
    ]


def make_pool(**kwargs):
    kwargs.setdefault("timeout", 60.0)
    kwargs.setdefault("retries", 0)
    pool = WorkerPool(**kwargs)
    if kwargs.get("workers", 1) > 1 and pool.workers == 1:
        pytest.skip("multiprocessing unavailable on this host")
    return pool


class TestSerial:
    def test_results_in_input_order(self):
        results = make_pool(workers=1).run(echo_specs(5))
        assert [r.value for r in results] == list(range(5))
        assert all(r.record.status == "ok" for r in results)

    def test_failure_recorded_not_raised(self):
        spec = JobSpec.make("no-such-kind", {}, label="bad")
        [result] = make_pool(workers=1).run([spec])
        assert result.record.status == "failed"
        assert result.value is None
        assert "no-such-kind" in result.record.error

    def test_serial_retry_then_success(self, tmp_path):
        marker = tmp_path / "marker"
        spec = JobSpec.make(
            "selftest-flaky",
            {"marker_path": str(marker), "fail_times": 1},
        )
        [result] = make_pool(workers=1, retries=1).run([spec])
        assert result.record.status == "ok"
        assert result.record.attempts == 2

    def test_serial_uses_cache(self, tmp_path):
        pool = make_pool(workers=1, cache_dir=str(tmp_path / "cache"))
        spec = JobSpec.make("selftest-echo", {"value": 7})
        [cold] = pool.run([spec])
        [warm] = pool.run([spec])
        assert not cold.record.cache_hit
        assert warm.record.cache_hit
        assert warm.value == 7


class TestParallel:
    def test_parity_with_serial(self):
        specs = echo_specs(6)
        serial = make_pool(workers=1).run(specs)
        parallel = make_pool(workers=3).run(specs)
        assert [r.value for r in serial] == [r.value for r in parallel]
        assert [r.spec.cache_key() for r in serial] == [
            r.spec.cache_key() for r in parallel
        ]

    def test_timeout_then_retry_then_give_up(self):
        sleeper = JobSpec.make(
            "selftest-sleep", {"seconds": 30.0}, label="sleeper"
        )
        quick = JobSpec.make("selftest-echo", {"value": "ok"}, label="quick")
        pool = make_pool(workers=2, timeout=1.0, retries=1)
        results = {r.spec.label: r for r in pool.run([sleeper, quick])}
        assert results["quick"].record.status == "ok"
        timed_out = results["sleeper"].record
        assert timed_out.status == "timeout"
        assert timed_out.attempts == 2  # first try + one fresh-worker retry
        assert timed_out.error and "deadline" in timed_out.error

    def test_crash_retried_in_fresh_worker(self, tmp_path):
        marker = tmp_path / "marker"
        spec = JobSpec.make(
            "selftest-flaky",
            {"marker_path": str(marker), "fail_times": 1},
        )
        [result] = make_pool(workers=2, retries=1).run([spec, *echo_specs(1)])[:1]
        assert result.record.status == "ok"
        assert result.record.attempts == 2
        assert marker.read_text() == "2"

    def test_persistent_failure_gives_up(self, tmp_path):
        marker = tmp_path / "marker"
        spec = JobSpec.make(
            "selftest-flaky",
            {"marker_path": str(marker), "fail_times": 99},
            label="doomed",
        )
        results = make_pool(workers=2, retries=1).run([spec, *echo_specs(1)])
        doomed = next(r for r in results if r.spec.label == "doomed")
        assert doomed.record.status == "failed"
        assert doomed.record.attempts == 2
        assert "selftest-flaky" in doomed.record.error

    def test_cache_shared_across_workers(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        spec = JobSpec.make("selftest-echo", {"value": "shared"})
        cold = make_pool(workers=2, cache_dir=cache_dir).run(
            [spec, *echo_specs(1)]
        )
        warm = make_pool(workers=2, cache_dir=cache_dir).run(
            [spec, *echo_specs(1)]
        )
        assert not cold[0].record.cache_hit
        assert warm[0].record.cache_hit
        assert warm[0].value == "shared"


class TestValidation:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=0)

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=1, retries=-1)
