"""The hand-rolled HTTP layer: parsing, responses, SSE frames."""

import asyncio
import json

import pytest

from repro.serve.http import (
    HttpError,
    Request,
    Response,
    read_request,
    sse_event,
)


def parse(raw: bytes):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


class TestRequestParsing:
    def test_get_with_query(self):
        request = parse(b"GET /jobs/abc?limit=5&x=%20y HTTP/1.1\r\n"
                        b"Host: localhost\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/jobs/abc"
        assert request.query == {"limit": "5", "x": " y"}
        assert request.header("host") == "localhost"

    def test_post_with_body(self):
        body = json.dumps({"kind": "partition"}).encode()
        raw = (b"POST /jobs HTTP/1.1\r\nContent-Length: "
               + str(len(body)).encode() + b"\r\n\r\n" + body)
        request = parse(raw)
        assert request.body == body
        assert request.json() == {"kind": "partition"}

    def test_header_names_lowercased(self):
        request = parse(b"GET / HTTP/1.1\r\nX-Repro-Tenant: Alice\r\n\r\n")
        assert request.headers["x-repro-tenant"] == "Alice"

    def test_eof_before_any_bytes_is_none(self):
        assert parse(b"") is None

    def test_malformed_request_line(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"GARBAGE\r\n\r\n")
        assert excinfo.value.status == 400

    def test_truncated_body_rejected(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
        assert excinfo.value.status == 400

    def test_oversized_body_rejected(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n"
        with pytest.raises(HttpError) as excinfo:
            parse(raw)
        assert excinfo.value.status == 413

    def test_bad_content_length(self):
        with pytest.raises(HttpError):
            parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")

    def test_chunked_rejected(self):
        with pytest.raises(HttpError):
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")

    def test_json_on_empty_body_is_400(self):
        request = parse(b"POST / HTTP/1.1\r\nContent-Length: 0\r\n\r\n")
        with pytest.raises(HttpError) as excinfo:
            request.json()
        assert excinfo.value.status == 400

    def test_json_on_malformed_body_is_400(self):
        request = parse(b"POST / HTTP/1.1\r\nContent-Length: 3\r\n\r\n{{{")
        with pytest.raises(HttpError) as excinfo:
            request.json()
        assert excinfo.value.status == 400


class TestResponse:
    def test_json_response_roundtrip(self):
        response = Response.json({"ok": True}, status=202)
        header = response.header_bytes().decode()
        assert header.startswith("HTTP/1.1 202 Accepted\r\n")
        assert "Content-Type: application/json" in header
        assert f"Content-Length: {len(response.body)}" in header
        assert "Connection: close" in header
        assert json.loads(response.body) == {"ok": True}

    def test_error_response(self):
        response = Response.error(429, "slow down")
        payload = json.loads(response.body)
        assert response.status == 429
        assert payload == {"error": "slow down", "status": 429}

    def test_sse_response_has_no_content_length(self):
        async def stream():
            yield b""

        response = Response.sse(stream())
        header = response.header_bytes().decode()
        assert "Content-Length" not in header
        assert "text/event-stream" in header


class TestSse:
    def test_frame_shape(self):
        frame = sse_event("progress", {"n": 1}).decode()
        assert frame == 'event: progress\ndata: {"n":1}\n\n'

    def test_data_is_single_line_canonical_json(self):
        frame = sse_event("done", {"b": 2, "a": "x\ny"}).decode()
        lines = frame.splitlines()
        assert lines[0] == "event: done"
        assert lines[1] == 'data: {"a":"x\\ny","b":2}'
