"""Stateful property tests: StateDB snapshot machine, chain-store fuzz.

These use hypothesis's stateful testing to explore interleavings no
hand-written test would: arbitrary credit/debit/snapshot/revert sequences
against a Python-dict model, and random block DAGs against the chain
store's fork-choice invariants.
"""

import random

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.chain.state import InsufficientBalance, StateDB
from repro.chain.types import Address

ADDRESSES = [Address.from_int(i) for i in range(1, 6)]


class StateDBMachine(RuleBasedStateMachine):
    """The journal/snapshot engine vs a plain-dict reference model."""

    def __init__(self):
        super().__init__()
        self.state = StateDB()
        self.model = {}  # address -> (balance, nonce)
        self.storage_model = {}  # (address, slot) -> value
        self.snapshots = []  # (snapshot_id, model copy, storage copy)

    def _model_balance(self, address):
        return self.model.get(address, (0, 0))[0]

    @rule(address=st.sampled_from(ADDRESSES),
          amount=st.integers(min_value=0, max_value=1000))
    def credit(self, address, amount):
        self.state.credit(address, amount)
        balance, nonce = self.model.get(address, (0, 0))
        self.model[address] = (balance + amount, nonce)

    @rule(address=st.sampled_from(ADDRESSES),
          amount=st.integers(min_value=0, max_value=1000))
    def debit(self, address, amount):
        balance, nonce = self.model.get(address, (0, 0))
        if amount > balance:
            with pytest.raises(InsufficientBalance):
                self.state.debit(address, amount)
        else:
            self.state.debit(address, amount)
            self.model[address] = (balance - amount, nonce)

    @rule(address=st.sampled_from(ADDRESSES))
    def bump_nonce(self, address):
        self.state.increment_nonce(address)
        balance, nonce = self.model.get(address, (0, 0))
        self.model[address] = (balance, nonce + 1)

    @rule(address=st.sampled_from(ADDRESSES),
          slot=st.integers(min_value=0, max_value=3),
          value=st.integers(min_value=0, max_value=99))
    def set_storage(self, address, slot, value):
        self.state.set_storage(address, slot, value)
        self.storage_model[(address, slot)] = value

    @rule()
    def take_snapshot(self):
        snapshot_id = self.state.snapshot()
        self.snapshots.append(
            (snapshot_id, dict(self.model), dict(self.storage_model))
        )

    @precondition(lambda self: self.snapshots)
    @rule()
    def revert_to_latest(self):
        snapshot_id, model, storage = self.snapshots.pop()
        self.state.revert(snapshot_id)
        self.model = model
        self.storage_model = storage

    @precondition(lambda self: len(self.snapshots) >= 2)
    @rule()
    def revert_to_oldest(self):
        snapshot_id, model, storage = self.snapshots[0]
        self.state.revert(snapshot_id)
        self.model = model
        self.storage_model = storage
        self.snapshots = []

    @precondition(lambda self: self.snapshots)
    @rule()
    def discard_latest(self):
        snapshot_id, _, _ = self.snapshots.pop()
        self.state.discard_snapshot(snapshot_id)

    @invariant()
    def balances_and_nonces_match_model(self):
        for address in ADDRESSES:
            balance, nonce = self.model.get(address, (0, 0))
            assert self.state.balance_of(address) == balance
            assert self.state.nonce_of(address) == nonce

    @invariant()
    def storage_matches_model(self):
        for (address, slot), value in self.storage_model.items():
            assert self.state.storage_at(address, slot) == value


TestStateDBMachine = StateDBMachine.TestCase
TestStateDBMachine.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)


class TestChainStoreFuzz:
    """Random block DAGs: fork-choice and index invariants always hold."""

    @pytest.mark.parametrize("seed", range(6))
    def test_random_dag_invariants(self, seed):
        from dataclasses import replace as dc_replace

        from repro.chain.block import Block, BlockHeader, transactions_root
        from repro.chain.chainstore import Blockchain
        from repro.chain.config import ETH_CONFIG
        from repro.chain.genesis import build_genesis
        from repro.chain.types import Address, Hash32

        config = dc_replace(ETH_CONFIG, dao_fork_block=10**9, bomb_delay=10**9)
        genesis, _ = build_genesis({}, difficulty=10**9)
        chain = Blockchain(config, genesis, execute_transactions=False)
        rng = random.Random(seed)
        known = [genesis]

        for step in range(60):
            parent = rng.choice(known[-8:])  # recent bias → branching
            delta = rng.choice([5, 9, 14, 20, 30])
            timestamp = parent.timestamp + delta
            number = parent.number + 1
            block = Block(
                header=BlockHeader(
                    parent_hash=parent.block_hash,
                    number=number,
                    timestamp=timestamp,
                    difficulty=config.compute_difficulty(
                        parent.difficulty, parent.timestamp, timestamp, number
                    ),
                    coinbase=Address.from_int(rng.randrange(4)),
                    state_root=Hash32.zero(),
                    tx_root=transactions_root(()),
                    gas_limit=genesis.header.gas_limit,
                    gas_used=0,
                    nonce=rng.getrandbits(32),
                )
            )
            result = chain.import_block(block)
            assert result.status in ("imported", "known")
            known.append(block)

            # Invariant 1: the head is the heaviest known tip.
            head_td = chain.total_difficulty_of(chain.head.block_hash)
            for tip in chain.branch_tips():
                assert chain.total_difficulty_of(tip) <= head_td

            # Invariant 2: the canonical index is a connected chain from
            # genesis to the head.
            cursor = chain.head
            while not cursor.is_genesis:
                parent_block = chain.block_by_number(cursor.number - 1)
                assert parent_block is not None
                assert cursor.parent_hash == parent_block.block_hash
                assert chain.is_canonical(cursor.block_hash)
                cursor = parent_block

            # Invariant 3: canonical + orphaned partitions the store.
            orphans = {b.block_hash for b in chain.orphaned_blocks()}
            canonical = {
                chain.canonical_hash(n) for n in range(chain.height + 1)
            }
            assert not (orphans & canonical)
