"""Hashing and recoverable-signature tests."""

import pytest

from repro.chain.crypto import (
    PrivateKey,
    Signature,
    SignatureError,
    keccak256,
    recover,
    sign,
)
from repro.chain.types import Hash32


class TestKeccak:
    def test_returns_hash32(self):
        digest = keccak256(b"hello")
        assert isinstance(digest, Hash32)
        assert len(digest) == 32

    def test_deterministic(self):
        assert keccak256(b"x") == keccak256(b"x")

    def test_different_inputs_differ(self):
        assert keccak256(b"a") != keccak256(b"b")

    def test_empty_input_ok(self):
        assert len(keccak256(b"")) == 32


class TestPrivateKey:
    def test_from_seed_deterministic(self):
        assert PrivateKey.from_seed("s").address == PrivateKey.from_seed("s").address

    def test_different_seeds_different_addresses(self):
        assert PrivateKey.from_seed("a").address != PrivateKey.from_seed("b").address

    def test_secret_must_be_32_bytes(self):
        with pytest.raises(ValueError):
            PrivateKey(b"short")

    def test_address_is_20_bytes(self):
        assert len(PrivateKey.from_seed("x").address) == 20


class TestSignRecover:
    def test_recover_yields_signer_address(self):
        key = PrivateKey.from_seed("signer")
        message = keccak256(b"message")
        signature = sign(key, message)
        assert recover(message, signature) == key.address

    def test_wrong_message_fails_recovery(self):
        key = PrivateKey.from_seed("signer")
        signature = sign(key, keccak256(b"message"))
        assert recover(keccak256(b"other"), signature) is None

    def test_tampered_proof_fails(self):
        key = PrivateKey.from_seed("signer")
        message = keccak256(b"message")
        signature = sign(key, message)
        tampered = Signature(
            proof=bytes(32), pubkey=signature.pubkey
        )
        assert recover(message, tampered) is None

    def test_forged_pubkey_fails(self):
        key = PrivateKey.from_seed("signer")
        other = PrivateKey.from_seed("other")
        sign(other, keccak256(b"prime the registry"))
        message = keccak256(b"message")
        signature = sign(key, message)
        forged = Signature(proof=signature.proof, pubkey=bytes(other.public_key))
        assert recover(message, forged) is None

    def test_signature_serialization_round_trip(self):
        key = PrivateKey.from_seed("signer")
        signature = sign(key, keccak256(b"m"))
        assert Signature.from_bytes(signature.to_bytes()) == signature

    def test_bad_serialized_length(self):
        with pytest.raises(SignatureError):
            Signature.from_bytes(b"\x00" * 63)

    def test_component_length_enforced(self):
        with pytest.raises(ValueError):
            Signature(proof=b"\x00" * 31, pubkey=b"\x00" * 32)
