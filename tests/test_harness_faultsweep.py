"""The fault-sweep job family: grid, artifacts, caching, reproducibility."""

import dataclasses
import json

import pytest

from repro.harness import (
    EXIT_DEGRADED,
    EXIT_OK,
    FaultSweepConfig,
    NullProgress,
    build_fault_grid,
    run_fault_sweep,
    run_fault_sweep_chunked,
    sweep_digest,
)

TINY = FaultSweepConfig(
    num_nodes=10,
    num_miners=3,
    post_fork_horizon=600.0,
    census_interval=120.0,
    churn_rates=(0.0, 0.01),
    loss_rates=(0.0,),
    split_durations=(0.0, 300.0),
    max_events=2_000_000,
)


class TestGrid:
    def test_one_cell_per_cross_product_entry(self):
        grid = build_fault_grid(TINY)
        assert len(grid) == 4
        cells = [cell for cell, _ in grid]
        assert cells[0] == (0.0, 0.0, 0.0)  # the control arm survives
        assert len({spec.cache_key() for _, spec in grid}) == 4

    def test_cell_schedule_reflects_axes(self):
        schedule = TINY.cell_schedule(0.01, 0.1, 300.0)
        kinds = sorted(fault.KIND for fault in schedule.faults)
        assert kinds == ["churn", "link-loss", "split"]
        assert TINY.cell_schedule(0.0, 0.0, 0.0).faults == ()

    def test_sweep_digest_is_order_sensitive(self):
        assert sweep_digest(["a", "b"]) != sweep_digest(["b", "a"])
        assert sweep_digest(["a", "b"]) == sweep_digest(["a", "b"])


class TestRunFaultSweep:
    @pytest.fixture()
    def outcome(self, tmp_path):
        manifest = run_fault_sweep(
            TINY,
            jobs=1,
            cache_dir=tmp_path / "cache",
            output_dir=tmp_path / "out",
            progress=NullProgress(),
        )
        return manifest, tmp_path

    def test_all_cells_succeed_and_artifacts_land(self, outcome):
        manifest, tmp_path = outcome
        assert not manifest.failures
        out = tmp_path / "out"
        assert (out / "robustness.txt").exists()
        assert (out / "robustness.csv").exists()
        payload = json.loads((out / "robustness.json").read_text())
        assert len(payload["cells"]) == 4
        assert payload["sweep_digest"]
        assert (out / "fault-sweep-manifest.json").exists()
        lines = (out / "robustness.txt").read_text().strip().splitlines()
        assert len(lines) == 4
        assert "recovery=" in lines[0]

    def test_warm_cache_reproduces_sweep_digest(self, outcome):
        manifest, tmp_path = outcome
        first = json.loads(
            (tmp_path / "out" / "robustness.json").read_text()
        )
        second_manifest = run_fault_sweep(
            TINY,
            jobs=1,
            cache_dir=tmp_path / "cache",
            output_dir=tmp_path / "out2",
            progress=NullProgress(),
        )
        assert not second_manifest.failures
        records = second_manifest.jobs
        assert all(record.cache_hit for record in records)
        second = json.loads(
            (tmp_path / "out2" / "robustness.json").read_text()
        )
        assert second["sweep_digest"] == first["sweep_digest"]

    def test_cold_recompute_reproduces_sweep_digest(self, outcome):
        # No cache at all: every cell recomputed from scratch must land
        # on the same digest — the determinism claim, not just pickle
        # stability.
        manifest, tmp_path = outcome
        first = json.loads(
            (tmp_path / "out" / "robustness.json").read_text()
        )
        run_fault_sweep(
            TINY,
            jobs=1,
            cache_dir=None,
            output_dir=tmp_path / "out3",
            progress=NullProgress(),
        )
        third = json.loads(
            (tmp_path / "out3" / "robustness.json").read_text()
        )
        assert third["sweep_digest"] == first["sweep_digest"]


class TestChunkedSweep:
    def test_chunked_combine_matches_single_shot_byte_for_byte(
        self, tmp_path
    ):
        # THE determinism contract of the chunked engine: splitting the
        # grid into ledger chunks and stitching the artifacts back must
        # land on the identical sweep digest (and identical cells) as
        # the uninterrupted single-shot run.  The shared cache keeps
        # this to one cold sweep.
        manifest = run_fault_sweep(
            TINY,
            jobs=1,
            cache_dir=tmp_path / "cache",
            output_dir=tmp_path / "single",
            progress=NullProgress(),
        )
        assert not manifest.failures
        single = json.loads(
            (tmp_path / "single" / "robustness.json").read_text()
        )

        result = run_fault_sweep_chunked(
            TINY,
            jobs=1,
            cache_dir=tmp_path / "cache",
            output_dir=tmp_path / "chunked",
            chunk_size=1,
            progress=NullProgress(),
        )
        assert result.state == "complete"
        assert result.exit_code == EXIT_OK
        assert result.sweep_digest == single["sweep_digest"]
        chunked = json.loads(
            (tmp_path / "chunked" / "robustness.json").read_text()
        )
        assert chunked["cells"] == single["cells"]
        assert not chunked["degraded"]
        assert chunked["quarantined"] == []
        assert (tmp_path / "chunked" / "robustness.txt").read_text() == (
            tmp_path / "single" / "robustness.txt"
        ).read_text()
        assert not result.manifest.failures
        assert result.manifest.cache_hits == 4

    def test_poisoned_cells_quarantine_and_degrade(self, tmp_path):
        # A starved event budget makes every cell fail fast — the sweep
        # must complete DEGRADED (exit 4) with the quarantine manifest,
        # not hang or hard-fail.
        poisoned = dataclasses.replace(TINY, max_events=10)
        result = run_fault_sweep_chunked(
            poisoned,
            jobs=1,
            cache_dir=None,
            output_dir=tmp_path / "out",
            chunk_size=2,
            chunk_retries=0,
            progress=NullProgress(),
        )
        assert result.state == "degraded"
        assert result.exit_code == EXIT_DEGRADED
        assert len(result.quarantined) == 2  # 4 cells / chunk_size 2
        payload = json.loads(
            (tmp_path / "out" / "robustness.json").read_text()
        )
        assert payload["degraded"]
        assert payload["cells"] == []
        quarantined_cells = [
            label
            for entry in payload["quarantined"]
            for label in entry["cells"]
        ]
        assert len(quarantined_cells) == 4
        # The manifest records every quarantined cell as a failed job.
        assert len(result.manifest.failures) == 4

    def test_quarantine_budget_fails_the_sweep(self, tmp_path):
        poisoned = dataclasses.replace(TINY, max_events=10)
        result = run_fault_sweep_chunked(
            poisoned,
            jobs=1,
            cache_dir=None,
            output_dir=tmp_path / "out",
            chunk_size=2,
            chunk_retries=0,
            max_quarantined=0,
            progress=NullProgress(),
        )
        assert result.state == "failed"
        assert result.exit_code == 1
        assert result.manifest is None
        assert not (tmp_path / "out" / "robustness.json").exists()
