"""Transactions, EIP-155 semantics, and replay validity."""

import pytest

from repro.chain.crypto import PrivateKey
from repro.chain.transaction import (
    Transaction,
    TransactionError,
    sign_transaction,
)
from repro.chain.types import Address, ether


@pytest.fixture
def key():
    return PrivateKey.from_seed("tx:sender")


@pytest.fixture
def recipient():
    return PrivateKey.from_seed("tx:recipient").address


def make_tx(recipient, chain_id=None, nonce=0, value=ether(1), data=b""):
    return Transaction(
        nonce=nonce,
        gas_price=10**9,
        gas_limit=100_000,
        to=recipient,
        value=value,
        data=data,
        chain_id=chain_id,
    )


class TestValidation:
    def test_negative_nonce_rejected(self, recipient):
        with pytest.raises(TransactionError):
            make_tx(recipient, nonce=-1)

    def test_negative_value_rejected(self, recipient):
        with pytest.raises(TransactionError):
            make_tx(recipient, value=-1)

    def test_zero_chain_id_rejected(self, recipient):
        with pytest.raises(TransactionError):
            make_tx(recipient, chain_id=0)

    def test_contract_creation_has_no_recipient(self):
        tx = make_tx(None, data=b"\x60\x00")
        assert tx.is_contract_creation
        assert tx.is_contract_interaction


class TestClassification:
    def test_plain_transfer_is_not_contract(self, recipient):
        assert not make_tx(recipient).is_contract_interaction

    def test_calldata_makes_it_a_contract_call(self, recipient):
        assert make_tx(recipient, data=b"\x01").is_contract_interaction

    def test_replay_protection_flag(self, recipient):
        assert not make_tx(recipient).is_replay_protected
        assert make_tx(recipient, chain_id=1).is_replay_protected


class TestSigningHash:
    def test_chain_id_changes_signing_hash(self, recipient):
        legacy = make_tx(recipient)
        protected = make_tx(recipient, chain_id=1)
        assert legacy.signing_hash != protected.signing_hash

    def test_different_chain_ids_differ(self, recipient):
        assert (
            make_tx(recipient, chain_id=1).signing_hash
            != make_tx(recipient, chain_id=61).signing_hash
        )

    def test_every_field_is_committed(self, recipient):
        base = make_tx(recipient)
        variants = [
            make_tx(recipient, nonce=1),
            make_tx(recipient, value=ether(2)),
            make_tx(recipient, data=b"\x00"),
            make_tx(Address(b"\x01" * 20)),
        ]
        for variant in variants:
            assert variant.signing_hash != base.signing_hash


class TestSignedTransaction:
    def test_sender_recovery(self, key, recipient):
        signed = sign_transaction(key, make_tx(recipient))
        assert signed.sender == key.address
        assert signed.verify()

    def test_legacy_tx_valid_on_every_chain(self, key, recipient):
        signed = sign_transaction(key, make_tx(recipient))
        assert signed.valid_on_chain(1)
        assert signed.valid_on_chain(61)
        assert signed.valid_on_chain(9999)

    def test_protected_tx_valid_only_on_its_chain(self, key, recipient):
        signed = sign_transaction(key, make_tx(recipient, chain_id=61))
        assert signed.valid_on_chain(61)
        assert not signed.valid_on_chain(1)

    def test_tx_hash_differs_by_signer(self, recipient):
        payload = make_tx(recipient)
        a = sign_transaction(PrivateKey.from_seed("a"), payload)
        b = sign_transaction(PrivateKey.from_seed("b"), payload)
        assert a.tx_hash != b.tx_hash

    def test_same_payload_same_signer_same_hash(self, key, recipient):
        payload = make_tx(recipient)
        assert (
            sign_transaction(key, payload).tx_hash
            == sign_transaction(key, payload).tx_hash
        )

    def test_identical_hash_is_the_echo_property(self, key, recipient):
        """The replay attack's signature: one hash visible on two chains.

        A legacy transaction rebroadcast on the sibling chain is
        *recognizable* because its hash is unchanged — the detector's
        whole premise.
        """
        signed = sign_transaction(key, make_tx(recipient))
        # "Broadcasting on the other chain" is the same object; the hash
        # commits to payload+signature only, not to any chain.
        assert signed.valid_on_chain(1) and signed.valid_on_chain(61)
        assert signed.tx_hash == signed.tx_hash

    def test_passthrough_properties(self, key, recipient):
        signed = sign_transaction(key, make_tx(recipient, data=b"\x01"))
        assert signed.nonce == 0
        assert signed.to == recipient
        assert signed.value == ether(1)
        assert signed.gas_limit == 100_000
        assert signed.is_contract_interaction
