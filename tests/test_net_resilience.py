"""Opt-in peer resilience: dial backoff, liveness pings, scoring, healing."""

from dataclasses import replace

import pytest

from repro.chain.chainstore import Blockchain
from repro.chain.config import ETH_CONFIG
from repro.chain.genesis import build_genesis
from repro.net.latency import ConstantLatency
from repro.net.messages import Ping, Pong
from repro.net.network import Network
from repro.net.node import FullNode, ResiliencePolicy
from repro.net.simulator import Simulator

CFG = replace(ETH_CONFIG, dao_fork_block=10**9, bomb_delay=10**9)


def resilient_network(n=3, seed=1, policy=None):
    genesis, _ = build_genesis({})
    sim = Simulator()
    net = Network(sim, latency=ConstantLatency(0.01), seed=seed)
    nodes = [
        FullNode(
            f"n{i}",
            Blockchain(CFG, genesis, execute_transactions=False),
            rng_seed=i,
            resilience=policy or ResiliencePolicy(),
        )
        for i in range(n)
    ]
    for node in nodes:
        net.add_node(node)
    return sim, net, nodes


class TestPolicyValidation:
    def test_round_trip(self):
        policy = ResiliencePolicy(dial_timeout=5.0, dial_retry_budget=3)
        assert ResiliencePolicy.from_dict(policy.to_dict()) == policy

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(dial_timeout=0.0)
        with pytest.raises(ValueError):
            ResiliencePolicy(dial_backoff_base=100.0, dial_backoff_cap=50.0)
        with pytest.raises(ValueError):
            ResiliencePolicy(dial_retry_budget=0)
        with pytest.raises(ValueError):
            ResiliencePolicy(ban_threshold=1.0)


class TestDialBackoff:
    def test_timeout_backs_off_and_respects_budget(self):
        policy = ResiliencePolicy(
            dial_timeout=5.0, dial_backoff_base=30.0, dial_retry_budget=2
        )
        sim, net, nodes = resilient_network(policy=policy)
        a, dead = nodes[0], nodes[1]
        dead.go_offline()
        a.routing.observe("n1")

        a.dial("n1")
        assert a.stats["dials_started"] == 1
        # Second dial while the first is pending is suppressed.
        a.dial("n1")
        assert a.stats["dials_started"] == 1

        sim.run_until(6.0)
        assert a.stats["dials_timed_out"] == 1
        # Within the backoff window nothing goes out.
        a.dial("n1")
        assert a.stats["dials_started"] == 1

        sim.run_until(40.0)  # backoff (30s) expired
        a.dial("n1")
        assert a.stats["dials_started"] == 2
        sim.run_until(50.0)
        assert a.stats["dials_timed_out"] == 2
        # Budget of 2 spent: the peer is dropped from the routing table.
        assert "n1" not in a.routing

    def test_successful_handshake_clears_slate(self):
        sim, net, nodes = resilient_network()
        a = nodes[0]
        a.dial("n1")
        sim.run_until(5.0)
        assert "n1" in a.peers
        assert a.stats["dials_timed_out"] == 0
        assert not a._dial_pending

    def test_churn_does_not_storm(self):
        # A population redialing one dead peer stays bounded by the
        # exponential backoff: a handful of dials across 120 redial
        # ticks, not one per tick — and the corpse leaves the routing
        # table once the retry budget is spent.
        policy = ResiliencePolicy(dial_timeout=2.0, dial_backoff_base=60.0,
                                  dial_retry_budget=3)
        sim, net, nodes = resilient_network(n=5, policy=policy)
        nodes[4].go_offline()
        for node in nodes[:4]:
            node.routing.observe("n4")

        def redial():
            for node in nodes[:4]:
                node.dial("n4")
            sim.schedule(5.0, redial)

        sim.schedule(0.0, redial)
        sim.run_until(600.0, max_events=5_000)
        for node in nodes[:4]:
            assert node.stats["dials_started"] <= 5  # vs 120 naive ticks
            assert "n4" not in node.routing


class TestLivenessPings:
    def test_ping_gets_pong_and_peer_survives(self):
        sim, net, nodes = resilient_network()
        a = nodes[0]
        a.dial("n1")
        sim.run_until(5.0)
        a.ping_peers()
        sim.run_until(20.0)
        assert "n1" in a.peers
        assert a.stats["peers_evicted_unresponsive"] == 0

    def test_crashed_peer_evicted(self):
        sim, net, nodes = resilient_network()
        a, b = nodes[0], nodes[1]
        a.dial("n1")
        sim.run_until(5.0)
        assert "n1" in a.peers
        b.online = False  # crash without the disconnect courtesy
        a.ping_peers()
        sim.run_until(20.0)
        assert "n1" not in a.peers
        assert a.stats["peers_evicted_unresponsive"] == 1

    def test_liveness_loop_drives_eviction(self):
        sim, net, nodes = resilient_network()
        net.schedule_liveness_loop(interval=30.0)
        nodes[0].dial("n1")
        sim.run_until(5.0)
        nodes[1].online = False
        sim.run_until(120.0)
        assert "n1" not in nodes[0].peers


class TestScoringAndBans:
    def test_ban_disconnects_and_silences(self):
        sim, net, nodes = resilient_network()
        a = nodes[0]
        a.dial("n1")
        sim.run_until(5.0)
        a._punish("n1", "penalty_invalid_block")  # -10 hits the threshold
        assert a.stats["peers_banned"] == 1
        assert "n1" not in a.peers
        assert "n1" not in a.routing
        # Messages from the banned peer are ignored...
        a.receive(Ping(sender_id="n1"))
        assert net.messages_sent == pytest.approx(net.messages_sent)
        assert "n1" not in a.peers
        # ...and we refuse to dial it until the ban lapses.
        before = a.stats["dials_started"]
        a.dial("n1")
        assert a.stats["dials_started"] == before
        sim.run_until(5.0 + ResiliencePolicy().ban_seconds + 1.0)
        a.dial("n1")
        assert a.stats["dials_started"] == before + 1

    def test_small_penalties_accumulate(self):
        sim, net, nodes = resilient_network()
        a = nodes[0]
        for _ in range(9):
            a._punish("n2", "penalty_ping_timeout")
        assert a.stats["peers_banned"] == 0
        a._punish("n2", "penalty_ping_timeout")
        assert a.stats["peers_banned"] == 1


class TestGossipHealing:
    def test_ping_pong_round_trip(self):
        sim, net, nodes = resilient_network()
        a, b = nodes[0], nodes[1]
        a.dial("n1")
        sim.run_until(5.0)
        a.ping_peers()
        assert "n1" in a._ping_pending
        sim.run_until(10.0)
        assert "n1" not in a._ping_pending

    def test_announce_head_reaches_peers(self):
        sim, net, nodes = resilient_network()
        a = nodes[0]
        a.dial("n1")
        sim.run_until(5.0)
        sent_before = net.messages_sent
        a.announce_head()
        assert net.messages_sent == sent_before + 1
        assert a.stats["head_reannounces"] == 1

    def test_policyless_node_ignores_heal_ticks(self):
        genesis, _ = build_genesis({})
        sim = Simulator()
        net = Network(sim, latency=ConstantLatency(0.01), seed=1)
        node = FullNode(
            "legacy", Blockchain(CFG, genesis, execute_transactions=False)
        )
        net.add_node(node)
        net.schedule_liveness_loop(interval=10.0)
        net.schedule_gossip_heal_loop(interval=10.0)
        sim.run_until(100.0)
        assert net.messages_sent == 0
        assert node.stats["head_reannounces"] == 0
