"""Data layer: records, windowing, the database, CSV IO."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.records import BlockRecord, TxRecord
from repro.data.store import ChainDatabase
from repro.data.windows import (
    DAY,
    HOUR,
    bucket_by_window,
    count_per_window,
    fill_missing_windows,
    mean_per_window,
    sum_per_window,
    window_index,
    window_start,
)


def block(chain="ETH", number=1, timestamp=1000, difficulty=100,
          miner="poolA", tx_count=2, contract_tx_count=1):
    return BlockRecord(chain=chain, number=number, timestamp=timestamp,
                       difficulty=difficulty, miner=miner, tx_count=tx_count,
                       contract_tx_count=contract_tx_count)


def tx(chain="ETH", tx_hash=b"\x01" * 8, block_number=1, timestamp=1000,
       is_contract=False, protected=False):
    return TxRecord(chain=chain, tx_hash=tx_hash, block_number=block_number,
                    timestamp=timestamp, sender=b"\xaa" * 20, to=b"\xbb" * 20,
                    value=1, is_contract=is_contract,
                    replay_protected=protected)


class TestWindows:
    def test_window_index_floor(self):
        assert window_index(0, HOUR) == 0
        assert window_index(3599, HOUR) == 0
        assert window_index(3600, HOUR) == 1

    def test_window_start_inverse(self):
        assert window_start(window_index(5000, HOUR), HOUR) == 3600

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            window_index(0, 0)

    def test_count_per_window(self):
        counts = count_per_window([0, 10, 3700, 3800, 7300], HOUR)
        assert counts == {0: 2, 1: 2, 2: 1}

    def test_sum_and_mean(self):
        items = [(0, 10.0), (10, 20.0), (3700, 5.0)]
        sums = sum_per_window(items, lambda i: i[0], lambda i: i[1], HOUR)
        means = mean_per_window(items, lambda i: i[0], lambda i: i[1], HOUR)
        assert sums == {0: 30.0, 1: 5.0}
        assert means == {0: 15.0, 1: 5.0}

    def test_bucket_by_window(self):
        buckets = bucket_by_window([1, 2, 3601], lambda t: t, HOUR)
        assert sorted(buckets[0]) == [1, 2]
        assert buckets[1] == [3601]

    def test_fill_missing_windows(self):
        dense = fill_missing_windows({0: 5.0, 2: 7.0}, 0, 3)
        assert dense == [(0, 5.0), (1, 0.0), (2, 7.0), (3, 0.0)]

    def test_fill_missing_rejects_reversed_range(self):
        with pytest.raises(ValueError):
            fill_missing_windows({}, 5, 0)

    @given(st.lists(st.floats(min_value=0, max_value=1e9), max_size=50))
    @settings(max_examples=50)
    def test_counts_partition_the_events(self, timestamps):
        counts = count_per_window(timestamps, HOUR)
        assert sum(counts.values()) == len(timestamps)


class TestChainDatabase:
    def test_insert_and_query_blocks(self):
        db = ChainDatabase()
        db.insert_blocks([block(number=2, timestamp=2000),
                          block(number=1, timestamp=1000)])
        records = db.blocks("ETH")
        assert [r.number for r in records] == [1, 2]
        assert db.block_count("ETH") == 2
        assert db.chains() == ["ETH"]

    def test_blocks_per_hour(self):
        db = ChainDatabase()
        db.insert_blocks([block(timestamp=t) for t in (0, 100, 3700)])
        assert db.blocks_per_hour("ETH") == {0: 2, 1: 1}

    def test_block_deltas(self):
        db = ChainDatabase()
        db.insert_blocks([
            block(number=1, timestamp=100),
            block(number=2, timestamp=130),
            block(number=3, timestamp=144),
        ])
        assert db.block_deltas("ETH") == [(130, 30), (144, 14)]

    def test_difficulty_series(self):
        db = ChainDatabase()
        db.insert_blocks([block(number=1, difficulty=5, timestamp=10)])
        assert db.difficulty_series("ETH") == [(10, 5)]

    def test_transactions_per_day(self):
        db = ChainDatabase()
        db.insert_transactions([
            tx(tx_hash=b"\x01" * 8, timestamp=100),
            tx(tx_hash=b"\x02" * 8, timestamp=200),
            tx(tx_hash=b"\x03" * 8, timestamp=DAY + 5),
        ])
        assert db.transactions_per_day("ETH") == {0: 2, 1: 1}

    def test_contract_fraction(self):
        db = ChainDatabase()
        db.insert_transactions([
            tx(tx_hash=b"\x01" * 8, is_contract=True),
            tx(tx_hash=b"\x02" * 8),
            tx(tx_hash=b"\x03" * 8),
            tx(tx_hash=b"\x04" * 8, is_contract=True),
        ])
        assert db.contract_fraction_per_day("ETH") == {0: 0.5}

    def test_lookup_tx_first_sighting_wins(self):
        db = ChainDatabase()
        db.insert_transactions([
            tx(timestamp=500, block_number=5),
            tx(timestamp=100, block_number=1),
        ])
        # Insertion order defines first observation.
        assert db.lookup_tx("ETH", b"\x01" * 8).timestamp == 500

    def test_iter_tx_sightings_time_ordered_across_chains(self):
        db = ChainDatabase()
        db.insert_transactions([
            tx(chain="ETH", tx_hash=b"\x01" * 8, timestamp=300),
            tx(chain="ETC", tx_hash=b"\x02" * 8, timestamp=100),
            tx(chain="ETH", tx_hash=b"\x03" * 8, timestamp=200),
        ])
        order = [r.timestamp for r in db.iter_tx_sightings()]
        assert order == [100, 200, 300]

    def test_miner_label_series(self):
        db = ChainDatabase()
        db.insert_blocks([block(miner="p1"), block(number=2, miner="p2",
                                                    timestamp=2000)])
        assert db.miner_label_series("ETH") == [(1000, "p1"), (2000, "p2")]

    def test_blocks_between(self):
        db = ChainDatabase()
        db.insert_blocks([block(number=n, timestamp=n * 100)
                          for n in range(1, 6)])
        subset = db.blocks_between("ETH", 200, 400)
        assert [r.number for r in subset] == [2, 3]


class TestCsvIO:
    def test_block_round_trip(self, tmp_path):
        from repro.data.csvio import read_blocks_csv, write_blocks_csv

        records = [block(number=n, timestamp=n * 14) for n in range(1, 4)]
        path = tmp_path / "blocks.csv"
        assert write_blocks_csv(path, records) == 3
        assert read_blocks_csv(path) == records

    def test_tx_round_trip(self, tmp_path):
        from repro.data.csvio import read_txs_csv, write_txs_csv

        records = [
            tx(tx_hash=bytes([n]) * 8, is_contract=bool(n % 2),
               protected=bool(n % 3)) for n in range(4)
        ]
        path = tmp_path / "txs.csv"
        write_txs_csv(path, records)
        assert read_txs_csv(path) == records

    def test_tx_round_trip_with_creation(self, tmp_path):
        from repro.data.csvio import read_txs_csv, write_txs_csv

        record = TxRecord(
            chain="ETH", tx_hash=b"\x09" * 8, block_number=1, timestamp=5,
            sender=b"\xaa" * 20, to=None, value=0, is_contract=True,
            replay_protected=False,
        )
        path = tmp_path / "txs.csv"
        write_txs_csv(path, [record])
        assert read_txs_csv(path)[0].to is None

    def test_series_round_trip(self, tmp_path):
        from repro.data.csvio import read_series_csv, write_series_csv

        path = tmp_path / "series.csv"
        write_series_csv(
            path, {"a": [1.0, 2.0], "b": [3.0, 4.0]}, index=[10, 20]
        )
        header, rows = read_series_csv(path)
        assert header == ["t", "a", "b"]
        assert rows == [[10.0, 1.0, 3.0], [20.0, 2.0, 4.0]]

    def test_series_length_mismatch_rejected(self, tmp_path):
        from repro.data.csvio import write_series_csv

        with pytest.raises(ValueError):
            write_series_csv(tmp_path / "x.csv", {"a": [1.0], "b": []})


class TestExportChain:
    def test_export_full_chain(self, funded_chain, alice_key, bob_key):
        from repro.chain.transaction import Transaction, sign_transaction
        from repro.chain.types import ether
        from repro.data.records import export_chain, export_transactions

        chain, writer = funded_chain
        transfer = sign_transaction(
            alice_key,
            Transaction(nonce=0, gas_price=10**9, gas_limit=21_000,
                        to=bob_key.address, value=ether(1)),
        )
        call = sign_transaction(
            alice_key,
            Transaction(nonce=1, gas_price=10**9, gas_limit=50_000,
                        to=bob_key.address, value=0, data=b"\x01"),
        )
        writer.extend((transfer,))
        writer.extend((call,))
        records = export_chain(chain, lambda c: "miner", start=1)
        assert len(records) == 2
        assert records[0].tx_count == 1
        assert records[0].contract_tx_count == 0
        assert records[1].contract_tx_count == 1

        txs = list(export_transactions(chain, start=1))
        assert len(txs) == 2
        assert txs[0].tx_hash == bytes(transfer.tx_hash)
        assert txs[1].is_contract


class TestIngestOrdering:
    """The skip-sort fast path is observationally invisible.

    ``insert_blocks``/``insert_transactions`` only re-sort a chain when a
    batch actually arrives out of order; these differentials pin that an
    in-order ingest (sort skipped) and a shuffled ingest of the same rows
    answer every query identically.
    """

    ROWS = [block(number=n, timestamp=500 + n * 137 + (n % 3) * 40,
                  difficulty=90 + n, miner=f"p{n % 4}",
                  tx_count=n % 5, contract_tx_count=n % 2)
            for n in range(1, 40)]

    @staticmethod
    def _shuffled(rows):
        import random

        shuffled = list(rows)
        random.Random(13).shuffle(shuffled)
        return shuffled

    def test_block_queries_order_independent(self):
        ordered = ChainDatabase()
        ordered.insert_blocks(self.ROWS)
        scrambled = ChainDatabase()
        scrambled.insert_blocks(self._shuffled(self.ROWS))
        assert scrambled.blocks("ETH") == ordered.blocks("ETH")
        assert scrambled.blocks_per_hour("ETH") == ordered.blocks_per_hour("ETH")
        assert scrambled.daily_mean_difficulty("ETH") == (
            ordered.daily_mean_difficulty("ETH")
        )
        assert scrambled.daily_miner_counts("ETH") == (
            ordered.daily_miner_counts("ETH")
        )

    def test_tx_queries_order_independent(self):
        rows = [tx(tx_hash=bytes([n]) * 8, block_number=n, timestamp=n * 50,
                   is_contract=bool(n % 2)) for n in range(1, 30)]
        ordered = ChainDatabase()
        ordered.insert_transactions(rows)
        scrambled = ChainDatabase()
        scrambled.insert_transactions(self._shuffled(rows))
        assert scrambled.transactions("ETH") == ordered.transactions("ETH")
        assert scrambled.transactions_per_day("ETH") == (
            ordered.transactions_per_day("ETH")
        )
        assert scrambled.contract_fraction_per_day("ETH") == (
            ordered.contract_fraction_per_day("ETH")
        )

    def test_blocks_between_bisect_vs_scan(self):
        # Monotone timestamps take the bisect fast path; the same rows
        # with one timestamp inversion force the linear scan.  Identical
        # windows must come back from both.
        db_fast = ChainDatabase()
        db_fast.insert_blocks(self.ROWS)
        inverted = list(self.ROWS)
        inverted.append(block(number=99, timestamp=self.ROWS[0].timestamp - 1,
                              miner="late"))
        db_scan = ChainDatabase()
        db_scan.insert_blocks(inverted)
        lo = self.ROWS[4].timestamp
        hi = self.ROWS[20].timestamp
        fast = db_fast.blocks_between("ETH", lo, hi)
        scan = [r for r in db_scan.blocks_between("ETH", lo, hi)
                if r.number != 99]
        assert fast == scan
        # Half-open: the block exactly at hi is excluded, at lo included.
        assert all(lo <= r.timestamp < hi for r in fast)
        assert fast[0].timestamp == lo

    def test_aggregates_match_brute_force(self):
        db = ChainDatabase()
        db.insert_blocks(self.ROWS)
        days = {}
        for row in self.ROWS:
            days.setdefault(row.timestamp // DAY, []).append(row)
        expected = {
            d: sum(float(r.difficulty) for r in rows) / len(rows)
            for d, rows in days.items()
        }
        assert db.daily_mean_difficulty("ETH") == expected
        expected_tx = {
            d: sum(r.tx_count for r in rows) for d, rows in days.items()
        }
        assert db.block_transactions_per_day("ETH") == expected_tx
