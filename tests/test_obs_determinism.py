"""Observability determinism: same seed ⇒ same metric dumps, same trace
digests — in-process and across fork/spawn workers.

Mirrors ``tests/test_faults_determinism.py``: the obs layer's dumps are
only useful as regression fingerprints if they are as reproducible as
the simulation itself, and the disabled path must not perturb the
trajectory (observing a run cannot change it).
"""

import pytest

from repro.faults.schedule import ChurnBurst, FaultSchedule, LinkFault
from repro.harness import (
    NullProgress,
    WorkerPool,
    execute_job,
    obs_probe_spec,
    partition_spec,
)
from repro.harness.cache import NullCache
from repro.net.node import ResiliencePolicy
from repro.obs import Observability
from repro.scenarios.partition_event import (
    ChaosPartitionConfig,
    PartitionScenario,
    PartitionScenarioConfig,
)
from repro.sim.engine import ForkSimConfig, run_fork_sim


def small_config():
    return PartitionScenarioConfig(
        num_nodes=12, num_miners=4, post_fork_horizon=600.0
    )


def small_chaos_config():
    schedule = FaultSchedule(
        faults=(
            ChurnBurst(start=300.0, duration=300.0, rate=0.01,
                       downtime=90.0),
            LinkFault(start=400.0, duration=200.0, loss_rate=0.2,
                      scope="region"),
        ),
        seed=7,
    )
    return ChaosPartitionConfig(
        num_nodes=12,
        num_miners=4,
        post_fork_horizon=600.0,
        faults=schedule.to_dict(),
        resilience=ResiliencePolicy().to_dict(),
        max_events=2_000_000,
    )


class TestObservationDoesNotPerturb:
    @pytest.mark.parametrize("make_config",
                             [small_config, small_chaos_config])
    def test_trajectory_identical_with_and_without_obs(self, make_config):
        config = make_config()
        bare = PartitionScenario(config).run()
        observed = PartitionScenario(config, obs=Observability.enabled()).run()
        assert bare.snapshots == observed.snapshots
        assert bare.handshake_refusals == observed.handshake_refusals

    def test_forksim_digest_unchanged_by_obs(self):
        config = ForkSimConfig(days=4, prefork_days=2, seed=11,
                               with_transactions=False)
        bare = run_fork_sim(config)
        observed = run_fork_sim(config, obs=Observability.enabled())
        assert bare.digest() == observed.digest()


class TestInProcessObsDeterminism:
    def test_same_seed_same_metric_and_trace_digests(self):
        config = small_chaos_config()
        a, b = Observability.enabled(), Observability.enabled()
        PartitionScenario(config, obs=a).run()
        PartitionScenario(config, obs=b).run()
        assert a.metrics.dumps() == b.metrics.dumps()
        assert a.metrics.digest() == b.metrics.digest()
        assert a.tracer.digest() == b.tracer.digest()
        assert a.tracer.summary() == b.tracer.summary()

    def test_different_seed_different_digests(self):
        base = small_config()
        other = PartitionScenarioConfig(
            num_nodes=12, num_miners=4, post_fork_horizon=600.0,
            seed=base.seed + 1,
        )
        a, b = Observability.enabled(), Observability.enabled()
        PartitionScenario(base, obs=a).run()
        PartitionScenario(other, obs=b).run()
        assert a.tracer.digest() != b.tracer.digest()

    def test_ring_capacity_does_not_change_digest(self):
        config = small_config()
        small, large = Observability.enabled(capacity=16), \
            Observability.enabled(capacity=1 << 16)
        PartitionScenario(config, obs=small).run()
        PartitionScenario(config, obs=large).run()
        assert small.tracer.digest() == large.tracer.digest()

    def test_forksim_metrics_deterministic(self):
        config = ForkSimConfig(days=4, prefork_days=2, seed=11,
                               with_transactions=False)
        a, b = Observability.enabled(), Observability.enabled()
        run_fork_sim(config, obs=a)
        run_fork_sim(config, obs=b)
        assert a.metrics.dumps() == b.metrics.dumps()
        counters = a.metrics.dump()["counters"]
        assert counters["forksim.days"] == 4
        assert counters["forksim.eth.blocks"] > 0


class TestObsProbeJob:
    def test_probe_returns_digests(self):
        outcome = execute_job(obs_probe_spec(small_config()), NullCache())
        payload = outcome.value
        assert set(payload) == {
            "metrics", "metrics_digest", "trace_digest", "events",
        }
        assert payload["events"] > 0

    def test_per_job_metrics_summary_on_outcome(self):
        spec = obs_probe_spec(small_config())
        plain = execute_job(spec, NullCache())
        assert plain.metrics is None  # collection off by default
        # obs-probe is not registry-aware (it builds its own bundle), so
        # use a registry-aware kind to exercise collection.
        collected = execute_job(
            partition_spec(small_config()), NullCache(), collect_metrics=True
        )
        assert collected.metrics is not None
        assert collected.metrics["counters"]["net.messages.sent"] > 0
        assert "digest" in collected.metrics


class TestSubprocessObsDeterminism:
    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_worker_digests_match_in_process(self, start_method):
        pool = WorkerPool(
            workers=2,
            cache_dir=None,
            timeout=300.0,
            retries=0,
            progress=NullProgress(),
            start_method=start_method,
        )
        if pool.workers == 1:
            pytest.skip("multiprocessing unavailable on this host")
        config = small_chaos_config()
        spec = obs_probe_spec(config)
        results = pool.run([spec, spec])
        assert all(r.record.status == "ok" for r in results)

        local = Observability.enabled()
        PartitionScenario(config, obs=local).run()
        for result in results:
            assert result.value["metrics"] == local.metrics.dumps()
            assert result.value["metrics_digest"] == local.metrics.digest()
            assert result.value["trace_digest"] == local.tracer.digest()

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_pool_embeds_job_metrics_in_records(self, start_method):
        pool = WorkerPool(
            workers=2,
            cache_dir=None,
            timeout=300.0,
            retries=0,
            progress=NullProgress(),
            start_method=start_method,
            collect_metrics=True,
        )
        if pool.workers == 1:
            pytest.skip("multiprocessing unavailable on this host")
        spec = partition_spec(small_config())
        first, second = pool.run([spec, spec])
        assert first.record.status == second.record.status == "ok"
        summaries = [
            r.record.metrics for r in (first, second)
            if r.record.metrics is not None
        ]
        # Both jobs executed (no shared cache), so both carry summaries
        # and — same seed — identical ones.
        assert len(summaries) == 2
        assert summaries[0] == summaries[1]
        assert summaries[0]["counters"]["net.messages.sent"] > 0
