"""Scenario contract library: the DAO vault, the exploit, the workhorses."""

import pytest

from repro.chain.gas import FRONTIER_SCHEDULE, TANGERINE_SCHEDULE
from repro.chain.state import StateDB
from repro.chain.types import Address, ether
from repro.evm.abi import decode_words, encode_call, word
from repro.evm.contracts import (
    SEL_ATTACK,
    SEL_DEPOSIT,
    SEL_TRANSFER,
    SEL_WITHDRAW,
    counter_code,
    deploy_wrapper,
    gas_guzzler_code,
    ledger_code,
    reentrancy_attacker_code,
    vulnerable_bank_code,
)
from repro.evm.vm import EVM, BlockEnvironment, Message

USER = Address.from_int(0x11)
ATTACKER = Address.from_int(0x22)
BANK = Address.from_int(0xBA)


@pytest.fixture
def state():
    db = StateDB()
    db.credit(USER, ether(100))
    db.credit(ATTACKER, ether(10))
    db.set_code(BANK, vulnerable_bank_code())
    return db


def call(state, sender, to, value=0, data=b"", gas=5_000_000, env=None):
    evm = EVM(state, env or BlockEnvironment())
    return evm.execute(
        Message(sender=sender, to=to, value=value, data=data, gas=gas)
    )


class TestAbi:
    def test_word_encodes_int_and_address(self):
        assert word(1) == (1).to_bytes(32, "big")
        assert word(USER)[-20:] == bytes(USER)

    def test_encode_call_layout(self):
        data = encode_call(2, 7, USER)
        assert len(data) == 96
        assert decode_words(data)[:2] == (2, 7)

    def test_decode_pads_tail(self):
        assert decode_words(b"\x01") == (
            int.from_bytes(b"\x01" + b"\x00" * 31, "big"),
        )

    def test_negative_word_rejected(self):
        with pytest.raises(ValueError):
            word(-1)


class TestVulnerableBank:
    def test_deposit_credits_caller_slot(self, state):
        result = call(state, USER, BANK, value=ether(5),
                      data=encode_call(SEL_DEPOSIT))
        assert result.success
        assert state.balance_of(BANK) == ether(5)
        assert state.storage_at(BANK, int.from_bytes(USER, "big")) == ether(5)

    def test_deposits_accumulate(self, state):
        for _ in range(2):
            call(state, USER, BANK, value=ether(3), data=encode_call(SEL_DEPOSIT))
        assert state.storage_at(BANK, int.from_bytes(USER, "big")) == ether(6)

    def test_withdraw_pays_out_and_zeroes(self, state):
        call(state, USER, BANK, value=ether(5), data=encode_call(SEL_DEPOSIT))
        before = state.balance_of(USER)
        result = call(state, USER, BANK, data=encode_call(SEL_WITHDRAW))
        assert result.success
        assert state.balance_of(USER) == before + ether(5)
        assert state.storage_at(BANK, int.from_bytes(USER, "big")) == 0

    def test_withdraw_without_balance_is_harmless(self, state):
        before = state.balance_of(USER)
        result = call(state, USER, BANK, data=encode_call(SEL_WITHDRAW))
        assert result.success
        assert state.balance_of(USER) == before

    def test_plain_transfer_accepted_by_fallback(self, state):
        result = call(state, USER, BANK, value=ether(1))
        assert result.success
        assert state.balance_of(BANK) == ether(1)


class TestReentrancyExploit:
    def deploy_attacker(self, state, max_reentries=3):
        evm = EVM(state, BlockEnvironment())
        result = evm.execute(
            Message(
                sender=ATTACKER, to=None, value=0, data=b"", gas=5_000_000,
                code=deploy_wrapper(
                    reentrancy_attacker_code(BANK, max_reentries)
                ),
            )
        )
        assert result.success
        return result.created_address

    def test_attack_drains_multiple_of_stake(self, state):
        call(state, USER, BANK, value=ether(50), data=encode_call(SEL_DEPOSIT))
        evil = self.deploy_attacker(state, max_reentries=3)
        result = call(state, ATTACKER, evil, value=ether(1),
                      data=encode_call(SEL_ATTACK))
        assert result.success
        # 1 deposit withdrawn 1 + 3 reentrant times = 4 ether.
        assert state.balance_of(evil) == ether(4)
        assert state.balance_of(BANK) == ether(50 - 3)

    def test_drain_scales_with_reentry_bound(self, state):
        call(state, USER, BANK, value=ether(50), data=encode_call(SEL_DEPOSIT))
        evil = self.deploy_attacker(state, max_reentries=5)
        call(state, ATTACKER, evil, value=ether(1), data=encode_call(SEL_ATTACK))
        assert state.balance_of(evil) == ether(6)

    def test_fixed_bank_is_not_drainable(self, state):
        """A bank that zeroes the balance *before* sending is immune —
        the counterfactual that makes the vulnerability a bug, not fate."""
        from repro.evm.opcodes import assemble

        fixed_bank = Address.from_int(0xF1)
        state.set_code(
            fixed_bank,
            assemble(
                """
                CALLDATASIZE ISZERO @done JUMPI
                PUSH1 0 CALLDATALOAD
                DUP1 1 EQ @deposit JUMPI
                DUP1 2 EQ @withdraw JUMPI
                STOP
                deposit:
                    POP CALLER SLOAD CALLVALUE ADD CALLER SSTORE STOP
                withdraw:
                    POP
                    CALLER SLOAD            ; amount
                    0 CALLER SSTORE         ; zero BEFORE the send
                    0 0 0 0
                    DUP5 CALLER GAS CALL POP
                    POP STOP
                done: STOP
                """
            ),
        )
        call(state, USER, fixed_bank, value=ether(50),
             data=encode_call(SEL_DEPOSIT))
        evil_code = reentrancy_attacker_code(fixed_bank, 3)
        evm = EVM(state, BlockEnvironment())
        deployed = evm.execute(
            Message(sender=ATTACKER, to=None, value=0, data=b"",
                    gas=5_000_000, code=deploy_wrapper(evil_code))
        )
        result = call(state, ATTACKER, deployed.created_address,
                      value=ether(1), data=encode_call(SEL_ATTACK))
        assert result.success
        # Attacker recovers at most its own deposit.
        assert state.balance_of(deployed.created_address) <= ether(1)


class TestWorkhorses:
    def test_counter_increments_per_call(self, state):
        counter = Address.from_int(0xC0)
        state.set_code(counter, counter_code())
        for _ in range(3):
            assert call(state, USER, counter, data=b"\x01").success
        assert state.storage_at(counter, 0) == 3

    def test_ledger_transfer(self, state):
        ledger = Address.from_int(0x1E)
        state.set_code(ledger, ledger_code())
        recipient = Address.from_int(0x99)
        result = call(
            state, USER, ledger,
            data=encode_call(SEL_TRANSFER, recipient, 500),
        )
        assert result.success, result.error
        assert state.storage_at(ledger, int.from_bytes(recipient, "big")) == 500

    def test_gas_guzzler_is_cheap_under_frontier_dear_under_eip150(self, state):
        guzzler = Address.from_int(0xD0)
        state.set_code(guzzler, gas_guzzler_code(iterations=100))
        cheap = call(state, USER, guzzler, data=b"\x01",
                     env=BlockEnvironment(schedule=FRONTIER_SCHEDULE))
        dear = call(state, USER, guzzler, data=b"\x01",
                    env=BlockEnvironment(schedule=TANGERINE_SCHEDULE))
        assert cheap.success and dear.success
        # Each iteration does one EXTCODESIZE (20→700) + one BALANCE
        # (20→400); with loop overhead the total cost still multiplies ~4x.
        assert dear.gas_used > cheap.gas_used * 3.5

    def test_gas_guzzler_exhausts_small_budget_after_repricing(self, state):
        guzzler = Address.from_int(0xD0)
        state.set_code(guzzler, gas_guzzler_code(iterations=200))
        budget = 40_000
        cheap = call(state, USER, guzzler, data=b"\x01", gas=budget,
                     env=BlockEnvironment(schedule=FRONTIER_SCHEDULE))
        dear = call(state, USER, guzzler, data=b"\x01", gas=budget,
                    env=BlockEnvironment(schedule=TANGERINE_SCHEDULE))
        assert cheap.success       # affordable pre-fork (the DoS vector)
        assert not dear.success    # repriced out of existence
