"""End-to-end ``run_all``: artifacts, manifest, cold/warm cache behavior."""

import pytest

from repro.harness import RunManifest, build_waves, run_all, run_all_chunked
from repro.scenarios.partition_event import PartitionScenarioConfig
from repro.sim.engine import ForkSimConfig

#: Small enough for tier-1 latency, large enough that every job kind runs.
DAYS = 3
QUICK_PARTITION = PartitionScenarioConfig(
    num_nodes=14, num_miners=4, post_fork_horizon=1200.0
)


@pytest.fixture(scope="module")
def cold_and_warm(tmp_path_factory):
    root = tmp_path_factory.mktemp("runall")
    kwargs = dict(
        days=DAYS,
        prefork_days=2,
        jobs=1,
        cache_dir=root / "cache",
        output_dir=root / "out",
        timeout=300.0,
        partition_config=QUICK_PARTITION,
    )
    cold = run_all(**kwargs)
    warm = run_all(**kwargs)
    return root, cold, warm


class TestArtifacts:
    def test_all_figures_and_scoreboard_written(self, cold_and_warm):
        root, cold, _ = cold_and_warm
        for number in range(1, 6):
            assert (root / "out" / f"figure{number}.txt").exists()
            assert (root / "out" / f"figure{number}.csv").exists()
        scoreboard = (root / "out" / "observations.txt").read_text()
        assert scoreboard.count("Observation") == 6
        assert len(cold.outputs) == 11  # 5 txt + 5 csv + scoreboard

    def test_manifest_written_and_readable(self, cold_and_warm):
        root, cold, _ = cold_and_warm
        loaded = RunManifest.read(root / "out" / "manifest.json")
        # The file reflects the *warm* (latest) invocation.
        assert loaded.cache_hits == len(loaded.jobs)
        assert cold.cache_misses == len(cold.jobs)

    def test_figure_tables_have_content(self, cold_and_warm):
        root, _, _ = cold_and_warm
        table = (root / "out" / "figure1.txt").read_text()
        assert "Figure 1" in table
        assert "2016-07" in table


class TestCacheBehavior:
    def test_cold_run_all_misses(self, cold_and_warm):
        _, cold, _ = cold_and_warm
        assert cold.cache_hits == 0
        assert cold.cache_misses == 9  # 2 roots + echoes + 5 figures + obs
        assert not cold.failures

    def test_warm_run_all_hits(self, cold_and_warm):
        _, _, warm = cold_and_warm
        assert warm.cache_misses == 0
        assert warm.cache_hits == 9
        assert not warm.failures

    def test_warm_run_is_faster(self, cold_and_warm):
        _, cold, warm = cold_and_warm
        assert warm.total_wall_time < cold.total_wall_time

    def test_no_cache_mode_recomputes(self, tmp_path):
        manifest = run_all(
            days=2,
            prefork_days=2,
            jobs=1,
            cache_dir=None,
            output_dir=tmp_path / "out",
            timeout=300.0,
            partition_config=QUICK_PARTITION,
        )
        assert manifest.cache_hits == 0
        assert manifest.cache_dir is None
        assert not manifest.failures


class TestChunkedRunAll:
    def test_chunked_run_matches_classic_artifacts(self, cold_and_warm):
        # Reuses the module fixture's warm cache: the chunked pass is
        # pure cache hits, and its figure/scoreboard files must be
        # byte-identical to the classic path's.
        root, _, _ = cold_and_warm
        result = run_all_chunked(
            days=DAYS,
            prefork_days=2,
            jobs=1,
            cache_dir=root / "cache",
            output_dir=root / "chunked",
            timeout=300.0,
            partition_config=QUICK_PARTITION,
            chunk_size=2,
        )
        assert result.state == "complete"
        assert result.exit_code == 0
        assert not result.manifest.failures
        assert result.manifest.cache_hits == 9
        for number in range(1, 6):
            for suffix in ("txt", "csv"):
                name = f"figure{number}.{suffix}"
                assert (root / "chunked" / name).read_bytes() == (
                    root / "out" / name
                ).read_bytes()
        assert (root / "chunked" / "observations.txt").read_bytes() == (
            root / "out" / "observations.txt"
        ).read_bytes()
        assert len(result.manifest.outputs) == 11

        # The waves became ledger stages: 2/1/6 jobs at chunk_size 2
        # → 1+1+3 chunks, claimed behind stage barriers.
        from repro.harness import SweepLedger

        ledger = SweepLedger(
            root / "chunked" / "run-all-ledger" / "ledger.db"
        )
        try:
            stages = [row.stage for row in ledger.chunks()]
        finally:
            ledger.close()
        assert stages == [0, 1, 2, 2, 2]


class TestWavePlan:
    def test_three_waves_cover_nine_jobs(self):
        waves = build_waves(ForkSimConfig(days=DAYS))
        assert [len(wave) for wave in waves] == [2, 1, 6]
        labels = [spec.label for wave in waves for spec in wave]
        assert "observations" in labels
        assert sum(label.startswith("figure-") for label in labels) == 5

    def test_wave_specs_are_deterministic(self):
        config = ForkSimConfig(days=DAYS)
        first = build_waves(config)
        second = build_waves(config)
        assert [
            [spec.cache_key() for spec in wave] for wave in first
        ] == [[spec.cache_key() for spec in wave] for wave in second]
