"""EVM interpreter semantics: opcodes, gas, calls, reverts."""

import pytest

from repro.chain.gas import FRONTIER_SCHEDULE, TANGERINE_SCHEDULE
from repro.chain.state import StateDB
from repro.chain.types import Address, ether
from repro.evm.opcodes import assemble
from repro.evm.vm import (
    EVM,
    BlockEnvironment,
    Message,
    derive_contract_address,
)

CALLER = Address.from_int(0xAAAA)
CONTRACT = Address.from_int(0xBBBB)


def run_code(source, state=None, gas=1_000_000, value=0, data=b"",
             env=None, caller=CALLER):
    """Install code at CONTRACT and call it; returns (result, state)."""
    state = state or StateDB()
    state.credit(caller, ether(10))
    state.set_code(CONTRACT, assemble(source))
    evm = EVM(state, env or BlockEnvironment())
    result = evm.execute(
        Message(sender=caller, to=CONTRACT, value=value, data=data, gas=gas)
    )
    return result, state


def returned_word(result):
    assert result.success, result.error
    return int.from_bytes(result.return_data, "big")


RETURN_TOP = "PUSH1 0 MSTORE PUSH1 32 PUSH1 0 RETURN"


class TestArithmetic:
    @pytest.mark.parametrize(
        "expression, expected",
        [
            ("1 2 ADD", 3),
            ("3 4 MUL", 12),
            ("5 9 SUB", 4),          # pushes 5 then 9: computes 9-5
            ("4 20 DIV", 5),
            ("0 5 DIV", 0),          # division by zero yields zero
            ("3 10 MOD", 1),
            ("0 7 MOD", 0),
            ("5 3 2 ADDMOD", 0),     # (2+3) % 5
            ("7 3 4 MULMOD", 5),     # (4*3) % 7
            ("2 3 EXP", 9),          # 3**2
            ("3 2 LT", 1),           # 2 < 3
            ("2 3 GT", 1),           # 3 > 2
            ("5 5 EQ", 1),
            ("0 ISZERO", 1),
            ("7 ISZERO", 0),
            ("0b1100 0b1010 AND", 0b1000),
            ("0b1100 0b1010 OR", 0b1110),
            ("0b1100 0b1010 XOR", 0b0110),
        ],
    )
    def test_binary_ops(self, expression, expected):
        # Expression leaves one word; return it.
        result, _ = run_code(f"{expression} {RETURN_TOP}")
        assert returned_word(result) == expected

    def test_not(self):
        result, _ = run_code(f"0 NOT {RETURN_TOP}")
        assert returned_word(result) == 2**256 - 1

    def test_signed_division(self):
        # -6 / 2 == -3 in two's complement
        minus_six = 2**256 - 6
        result, _ = run_code(f"2 {minus_six} SDIV {RETURN_TOP}")
        assert returned_word(result) == 2**256 - 3

    def test_signed_comparison(self):
        minus_one = 2**256 - 1
        result, _ = run_code(f"1 {minus_one} SLT {RETURN_TOP}")
        assert returned_word(result) == 1  # -1 < 1

    def test_byte_op(self):
        result, _ = run_code(f"0xff00 30 BYTE {RETURN_TOP}")
        assert returned_word(result) == 0xFF

    def test_sha3_matches_keccak(self):
        from repro.chain.crypto import keccak256

        result, _ = run_code(
            f"0xabcd PUSH1 0 MSTORE PUSH1 32 PUSH1 0 SHA3 {RETURN_TOP}"
        )
        expected = int.from_bytes(
            keccak256((0xABCD).to_bytes(32, "big")), "big"
        )
        assert returned_word(result) == expected


class TestEnvironment:
    def test_caller_and_callvalue(self):
        result, _ = run_code(f"CALLER {RETURN_TOP}", value=ether(1))
        assert returned_word(result) == int.from_bytes(CALLER, "big")
        result, _ = run_code(f"CALLVALUE {RETURN_TOP}", value=12345)
        assert returned_word(result) == 12345

    def test_calldataload_and_size(self):
        data = (99).to_bytes(32, "big")
        result, _ = run_code(f"PUSH1 0 CALLDATALOAD {RETURN_TOP}", data=data)
        assert returned_word(result) == 99
        result, _ = run_code(f"CALLDATASIZE {RETURN_TOP}", data=data)
        assert returned_word(result) == 32

    def test_calldata_reads_past_end_are_zero_padded(self):
        result, _ = run_code(f"PUSH1 31 CALLDATALOAD {RETURN_TOP}", data=b"\xff")
        assert returned_word(result) == 0

    def test_block_environment_opcodes(self):
        env = BlockEnvironment(
            block_number=777, timestamp=1234, difficulty=5555,
            coinbase=Address.from_int(42), gas_limit=999_999,
        )
        for source, expected in [
            ("NUMBER", 777),
            ("TIMESTAMP", 1234),
            ("DIFFICULTY", 5555),
            ("COINBASE", 42),
            ("GASLIMIT", 999_999),
        ]:
            result, _ = run_code(f"{source} {RETURN_TOP}", env=env)
            assert returned_word(result) == expected

    def test_balance(self):
        state = StateDB()
        state.credit(Address.from_int(7), 1234)
        result, _ = run_code(f"7 BALANCE {RETURN_TOP}", state=state)
        assert returned_word(result) == 1234

    def test_address_opcode(self):
        result, _ = run_code(f"ADDRESS {RETURN_TOP}")
        assert returned_word(result) == int.from_bytes(CONTRACT, "big")


class TestStorageAndFlow:
    def test_sstore_sload(self):
        result, state = run_code(
            f"42 PUSH1 5 SSTORE PUSH1 5 SLOAD {RETURN_TOP}"
        )
        assert returned_word(result) == 42
        assert state.storage_at(CONTRACT, 5) == 42

    def test_storage_reverted_on_failure(self):
        # Store then force an invalid jump: all mutations roll back.
        result, state = run_code("42 PUSH1 5 SSTORE PUSH1 3 JUMP")
        assert not result.success
        assert state.storage_at(CONTRACT, 5) == 0

    def test_revert_opcode_returns_gas_and_rolls_back(self):
        result, state = run_code(
            "42 PUSH1 5 SSTORE PUSH1 0 PUSH1 0 REVERT", gas=100_000
        )
        assert not result.success
        assert result.error == "reverted"
        assert result.gas_left > 0  # unlike OOG, gas is returned
        assert state.storage_at(CONTRACT, 5) == 0

    def test_out_of_gas_consumes_everything(self):
        result, _ = run_code("loop: @loop JUMP", gas=5_000)
        assert not result.success
        assert result.gas_left == 0

    def test_jumpi_taken_and_not_taken(self):
        result, _ = run_code(
            f"1 @skip JUMPI 99 {RETURN_TOP} skip: 7 {RETURN_TOP}"
        )
        assert returned_word(result) == 7
        result, _ = run_code(
            f"0 @skip JUMPI 99 {RETURN_TOP} skip: 7 {RETURN_TOP}"
        )
        assert returned_word(result) == 99

    def test_jump_into_push_data_rejected(self):
        # Offset 1 is PUSH operand data, not a JUMPDEST.
        result, _ = run_code("PUSH1 0x5b PUSH1 1 JUMP")
        assert not result.success

    def test_implicit_stop_at_end_of_code(self):
        result, _ = run_code("1 POP")
        assert result.success
        assert result.return_data == b""

    def test_gas_opcode_decreases(self):
        result, _ = run_code(f"GAS {RETURN_TOP}", gas=100_000)
        assert 0 < returned_word(result) < 100_000


class TestGasAccounting:
    def test_plain_stop_costs_nothing_extra(self):
        result, _ = run_code("STOP", gas=100)
        assert result.success
        assert result.gas_used == 0

    def test_arithmetic_gas_exact(self):
        # PUSH1(3) + PUSH1(3) + ADD(3) = 9
        result, _ = run_code("1 2 ADD", gas=100)
        assert result.gas_used == 9

    def test_sstore_set_vs_reset_pricing(self):
        set_cost = FRONTIER_SCHEDULE.sstore_set
        result, _ = run_code("1 PUSH1 0 SSTORE")
        assert result.gas_used == 3 + 3 + set_cost

    def test_sstore_clear_earns_refund(self):
        result, _ = run_code("1 PUSH1 0 SSTORE 0 PUSH1 0 SSTORE")
        assert result.gas_refund == FRONTIER_SCHEDULE.sstore_refund

    def test_memory_expansion_charged(self):
        # MSTORE at offset 0 → 1 word; at 4096 → 129 words.
        small, _ = run_code("1 PUSH1 0 MSTORE")
        large, _ = run_code("1 PUSH2 4096 MSTORE")
        assert large.gas_used > small.gas_used

    def test_eip150_makes_state_reads_expensive(self):
        """The repricing the November 2016 fork shipped (Section 2.1)."""
        cheap_env = BlockEnvironment(schedule=FRONTIER_SCHEDULE)
        dear_env = BlockEnvironment(schedule=TANGERINE_SCHEDULE)
        source = "CALLER EXTCODESIZE POP"
        cheap, _ = run_code(source, env=cheap_env)
        dear, _ = run_code(source, env=dear_env)
        assert cheap.gas_used < dear.gas_used
        assert dear.gas_used - cheap.gas_used == (
            TANGERINE_SCHEDULE.extcode - FRONTIER_SCHEDULE.extcode
        )


class TestCalls:
    def test_plain_value_call_transfers(self):
        state = StateDB()
        recipient = Address.from_int(0xCCCC)
        # CALL(gas, to, value, 0,0,0,0)
        source = f"0 0 0 0 1000 {int.from_bytes(recipient, 'big')} GAS CALL {RETURN_TOP}"
        result, state = run_code(source, state=state, value=2000)
        assert returned_word(result) == 1  # success flag
        assert state.balance_of(recipient) == 1000

    def test_call_to_missing_balance_fails_cleanly(self):
        recipient = Address.from_int(0xCCCC)
        source = (
            f"0 0 0 0 {ether(100)} {int.from_bytes(recipient, 'big')} GAS CALL "
            + RETURN_TOP
        )
        result, state = run_code(source)
        assert returned_word(result) == 0  # inner failure, outer continues
        assert state.balance_of(recipient) == 0

    def test_callee_executes_and_writes_its_own_storage(self):
        state = StateDB()
        callee = Address.from_int(0xDDDD)
        state.set_code(callee, assemble("7 PUSH1 0 SSTORE STOP"))
        source = f"0 0 0 0 0 {int.from_bytes(callee, 'big')} GAS CALL POP STOP"
        result, state = run_code(source, state=state)
        assert result.success
        assert state.storage_at(callee, 0) == 7
        assert state.storage_at(CONTRACT, 0) == 0

    def test_failed_callee_reverts_only_its_frame(self):
        state = StateDB()
        callee = Address.from_int(0xDDDD)
        state.set_code(callee, assemble("7 PUSH1 0 SSTORE PUSH1 0 PUSH1 0 REVERT"))
        source = (
            f"1 PUSH1 9 SSTORE "
            f"0 0 0 0 0 {int.from_bytes(callee, 'big')} GAS CALL POP STOP"
        )
        result, state = run_code(source, state=state)
        assert result.success
        assert state.storage_at(callee, 0) == 0  # callee reverted
        assert state.storage_at(CONTRACT, 9) == 1  # caller preserved

    def test_create_deploys_returned_code(self):
        from repro.evm.contracts import counter_code, deploy_wrapper

        state = StateDB()
        state.credit(CALLER, ether(1))
        evm = EVM(state, BlockEnvironment())
        result = evm.execute(
            Message(
                sender=CALLER, to=None, value=0, data=b"",
                gas=1_000_000, code=deploy_wrapper(counter_code()),
            )
        )
        assert result.success
        assert state.code_of(result.created_address) == counter_code()

    def test_create_address_matches_derivation(self):
        from repro.evm.contracts import counter_code, deploy_wrapper

        state = StateDB()
        state.credit(CALLER, ether(1))
        state.increment_nonce(CALLER)  # as the tx processor would
        evm = EVM(state, BlockEnvironment())
        result = evm.execute(
            Message(sender=CALLER, to=None, value=0, data=b"",
                    gas=1_000_000, code=deploy_wrapper(counter_code()))
        )
        assert result.created_address == derive_contract_address(CALLER, 0)

    def test_selfdestruct_sends_balance_and_removes_code(self):
        state = StateDB()
        heir = Address.from_int(0xEEEE)
        source = f"{int.from_bytes(heir, 'big')} SELFDESTRUCT"
        result, state = run_code(source, state=state, value=5000)
        assert result.success
        assert state.balance_of(heir) == 5000
        assert not state.is_contract(CONTRACT)

    def test_call_depth_limit(self):
        """A contract that calls itself recurses until the 1024 frame cap,
        then the inner call fails while the outer chain unwinds cleanly."""
        state = StateDB()
        self_word = int.from_bytes(CONTRACT, "big")
        # Count depth in slot 0, recurse unconditionally.
        source = (
            "PUSH1 0 SLOAD 1 ADD PUSH1 0 SSTORE "
            f"0 0 0 0 0 {self_word} GAS CALL POP STOP"
        )
        result, state = run_code(source, state=state, gas=10_000_000)
        assert result.success
        # Frontier gas rules (no 63/64) let recursion hit a floor set by
        # gas, not necessarily 1024 — but it must be bounded and > 1.
        assert 1 < state.storage_at(CONTRACT, 0) <= 1025
