"""Report rendering and observation predicates — unit level."""

import pytest

from repro.core.observations import Observation
from repro.core.report import FigureData, _nearest
from repro.core.timeseries import TimeSeries
from repro.data.windows import DAY
from repro.sim.clock import FORK_TIMESTAMP


def day_ts(day):
    return FORK_TIMESTAMP + day * DAY


class TestFigureData:
    def make(self):
        series = {
            "a": TimeSeries([day_ts(0), day_ts(1), day_ts(2)], [1.0, 2.0, 3.0]),
            "b": TimeSeries([day_ts(1), day_ts(2), day_ts(3)], [10.0, 20.0, 30.0]),
        }
        return FigureData(
            figure_id="Figure X", title="test figure", series=series,
            notes="a note",
        )

    def test_render_contains_header_and_rows(self):
        text = self.make().render(sample_days=1)
        assert "Figure X" in text
        assert "a note" in text
        assert "2016-07-20" in text

    def test_render_dash_for_missing_values(self):
        text = self.make().render(sample_days=1)
        first_row = [line for line in text.splitlines()
                     if line.startswith("2016-07-20")][0]
        assert "-" in first_row  # series b has no day-0 point

    def test_render_sampling_limits_rows(self):
        series = {
            "x": TimeSeries([day_ts(d) for d in range(100)],
                            [float(d) for d in range(100)])
        }
        figure = FigureData("F", "t", series)
        text = figure.render(sample_days=30)
        data_rows = [line for line in text.splitlines()
                     if line.startswith("201")]
        assert len(data_rows) == 4  # days 0, 30, 60, 90

    def test_empty_figure_renders_no_data(self):
        figure = FigureData("F", "t", {"x": TimeSeries([], [])})
        assert "(no data)" in figure.render()

    def test_csv_dense_union_axis(self, tmp_path):
        figure = self.make()
        path = tmp_path / "f.csv"
        rows = figure.write_csv(path)
        assert rows == 4  # union of 4 distinct timestamps
        lines = path.read_text().splitlines()
        assert lines[0] == "timestamp,a,b"
        assert "nan" in lines[1]  # b missing at day 0

    def test_nearest_falls_back_within_a_week(self):
        lookup = {day_ts(0): 5.0}
        assert _nearest(lookup, day_ts(0)) == 5.0
        assert _nearest(lookup, day_ts(3)) == 5.0
        assert _nearest(lookup, day_ts(10)) is None
        assert _nearest({}, day_ts(0)) is None


class TestObservationRendering:
    def test_reproduced_verdict(self):
        observation = Observation(
            number=1, claim="something", holds=True,
            details={"x": 1.2345},
        )
        text = observation.render()
        assert "Observation 1" in text
        assert "REPRODUCED" in text
        assert "x=1.23" in text

    def test_not_reproduced_verdict(self):
        observation = Observation(number=2, claim="c", holds=False)
        assert "NOT REPRODUCED" in observation.render()


class TestObservationPredicatesOnSyntheticData:
    def test_observation_2_rejects_instant_recovery(self):
        """A fork that never stalls must NOT satisfy Observation 2 —
        guarding against a predicate that trivially passes."""
        from repro.core.observations import observation_2
        from repro.sim.blockprod import ChainTrace
        from repro.sim.engine import ForkSimConfig, ForkSimResult
        from repro.market.exchange import ExchangeRateSeries

        # Build a fake result where ETC never stalls (14 s throughout).
        etc = ChainTrace("ETC")
        eth = ChainTrace("ETH")
        ts = FORK_TIMESTAMP - 100 * 14
        for index in range(100 + 16 * DAY // 14):
            ts += 14
            etc.append(index, ts, 10**12, "m")
            eth.append(index, ts, 10**13, "m")
        rates = ExchangeRateSeries()
        rates.set_series("ETH", [10.0] * 20)
        rates.set_series("ETC", [1.0] * 20)
        result = ForkSimResult(
            config=ForkSimConfig(days=16),
            eth_trace=eth,
            etc_trace=etc,
            fork_timestamp=FORK_TIMESTAMP,
            fork_number=100,
            rates=rates,
            daily_hashrate={"ETH": [], "ETC": []},
        )
        observation = observation_2(result)
        assert not observation.holds