"""Peak-memory regression pin for the analysis pipeline.

The point of the columnar backend is that a half-million-block figure
pass no longer materializes a boxed ``BlockRecord`` per block.  This
test pins that property with tracemalloc: the full database build +
figure + observation pass must fit a fixed byte budget on the columnar
backend — a budget the record backend demonstrably blows through on the
same workload (~6x over, measured ~20 MB vs ~132 MB at 40 days).  A
regression that starts boxing records on the hot path fails the budget
immediately instead of surfacing as a slow OOM at a million blocks.
"""

import gc
import tracemalloc

import pytest

from repro.core.observations import evaluate_all_db
from repro.core.report import figures_from_database
from repro.sim.engine import ForkSimConfig, run_fork_sim

#: 40 days ≈ 520k blocks across both chains — big enough that per-block
#: boxing dominates the peak, small enough for tier-1 latency.
CONFIG = ForkSimConfig(days=40, prefork_days=3, seed=5, with_transactions=False)

#: Hard ceiling for the columnar pass.  Measured peak is ~20 MB; the
#: headroom absorbs allocator noise, not algorithmic regressions — the
#: record backend lands at ~132 MB on the same workload.
COLUMNAR_BUDGET_BYTES = 32 * 1024 * 1024


@pytest.fixture(scope="module")
def result():
    return run_fork_sim(CONFIG)


def _traced_analysis_peak(result, columnar):
    gc.collect()
    tracemalloc.start()
    try:
        db = result.to_database(columnar=columnar)
        figures_from_database(result, db)
        evaluate_all_db(result, db)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def test_columnar_analysis_fits_budget(result):
    peak = _traced_analysis_peak(result, columnar=True)
    assert peak <= COLUMNAR_BUDGET_BYTES, (
        f"columnar analysis peak {peak} bytes exceeds the "
        f"{COLUMNAR_BUDGET_BYTES}-byte budget — something is boxing "
        "records on the hot path"
    )


def test_record_backend_exceeds_budget(result):
    # The budget only means something while the oracle cannot meet it;
    # if this starts passing, tighten COLUMNAR_BUDGET_BYTES.
    peak = _traced_analysis_peak(result, columnar=False)
    assert peak > COLUMNAR_BUDGET_BYTES
