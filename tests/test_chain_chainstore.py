"""Chain store: imports, fork choice, reorgs, and cross-chain refusal."""

from dataclasses import replace

import pytest

from repro.chain.block import Block, BlockHeader, transactions_root
from repro.chain.chainstore import Blockchain, ChainStoreError
from repro.chain.config import ETC_CONFIG, ETH_CONFIG
from repro.chain.genesis import build_genesis
from repro.chain.types import Address, Hash32

CONFIG = replace(ETH_CONFIG, dao_fork_block=10**9, bomb_delay=10**9)


def header_chain(genesis=None):
    genesis = genesis or build_genesis({})[0]
    return Blockchain(CONFIG, genesis, execute_transactions=False)


def make_child(parent, config=CONFIG, coinbase=None, ts_delta=14):
    timestamp = parent.timestamp + ts_delta
    number = parent.number + 1
    return Block(
        header=BlockHeader(
            parent_hash=parent.block_hash,
            number=number,
            timestamp=timestamp,
            difficulty=config.compute_difficulty(
                parent.difficulty, parent.timestamp, timestamp, number
            ),
            coinbase=coinbase or Address.zero(),
            state_root=Hash32.zero(),
            tx_root=transactions_root(()),
            gas_limit=parent.header.gas_limit,
            gas_used=0,
            extra_data=config.dao_extra_data(number) or b"",
        )
    )


class TestImport:
    def test_genesis_is_head(self):
        chain = header_chain()
        assert chain.head.is_genesis
        assert chain.height == 0
        assert len(chain) == 1

    def test_linear_growth(self):
        chain = header_chain()
        block = make_child(chain.head)
        result = chain.import_block(block)
        assert result.accepted
        assert chain.head.block_hash == block.block_hash
        assert chain.height == 1

    def test_duplicate_is_known(self):
        chain = header_chain()
        block = make_child(chain.head)
        chain.import_block(block)
        assert chain.import_block(block).status == "known"

    def test_unknown_parent_is_orphan(self):
        chain = header_chain()
        lonely = make_child(make_child(chain.head))
        assert chain.import_block(lonely).status == "orphan"

    def test_invalid_block_rejected_with_reason(self):
        chain = header_chain()
        block = make_child(chain.head)
        bad = Block(
            header=BlockHeader(
                **{
                    "parent_hash": block.header.parent_hash,
                    "number": block.header.number,
                    "timestamp": block.header.timestamp,
                    "difficulty": block.header.difficulty + 1,
                    "coinbase": block.header.coinbase,
                    "state_root": block.header.state_root,
                    "tx_root": block.header.tx_root,
                    "gas_limit": block.header.gas_limit,
                    "gas_used": 0,
                }
            )
        )
        result = chain.import_block(bad)
        assert result.status == "invalid"
        assert result.reason == "bad-difficulty"

    def test_full_mode_requires_genesis_state(self):
        genesis, _ = build_genesis({})
        with pytest.raises(ChainStoreError):
            Blockchain(CONFIG, genesis, genesis_state=None,
                       execute_transactions=True)


class TestForkChoice:
    def test_heavier_branch_wins(self):
        """Transient-fork resolution: the competing branch that
        accumulates more work takes over (Section 2.1)."""
        chain = header_chain()
        a1 = make_child(chain.head, ts_delta=14)   # multiplier 0
        b1 = make_child(chain.head, ts_delta=25)   # multiplier -1 → lighter
        chain.import_block(a1)
        chain.import_block(b1)
        assert chain.head.block_hash == a1.block_hash

        # Extend the lighter branch until it overtakes.
        tip = b1
        for _ in range(4):
            tip = make_child(tip, ts_delta=5)
            assert chain.import_block(tip).status == "imported"
        assert chain.total_difficulty_of(tip.block_hash) > chain.total_difficulty_of(
            a1.block_hash
        )
        assert chain.head.block_hash == tip.block_hash
        assert chain.is_canonical(tip.block_hash)
        assert not chain.is_canonical(a1.block_hash)

    def test_reorg_flag_set(self):
        chain = header_chain()
        a1 = make_child(chain.head, ts_delta=14)
        chain.import_block(a1)
        b1 = make_child(chain.block_by_number(0), ts_delta=5)  # heavier sibling
        result = chain.import_block(b1)
        assert result.reorged
        assert chain.head.block_hash == b1.block_hash

    def test_orphaned_blocks_listed(self):
        chain = header_chain()
        a1 = make_child(chain.head, ts_delta=14)
        b1 = make_child(chain.head, ts_delta=5)
        chain.import_block(a1)
        chain.import_block(b1)
        orphaned = {b.block_hash for b in chain.orphaned_blocks()}
        assert a1.block_hash in orphaned

    def test_canonical_index_consistent_after_reorg(self):
        chain = header_chain()
        a1 = make_child(chain.head, ts_delta=14)
        a2 = make_child(a1, ts_delta=14)
        for block in (a1, a2):
            chain.import_block(block)
        b1 = make_child(chain.block_by_number(0), ts_delta=5)
        b2 = make_child(b1, ts_delta=5)
        b3 = make_child(b2, ts_delta=5)
        for block in (b1, b2, b3):
            chain.import_block(block)
        assert chain.head.block_hash == b3.block_hash
        for number in range(4):
            block = chain.block_by_number(number)
            if number > 0:
                parent = chain.block_by_number(number - 1)
                assert block.parent_hash == parent.block_hash

    def test_branch_tips_ordering(self):
        chain = header_chain()
        a1 = make_child(chain.head, ts_delta=14)
        b1 = make_child(chain.head, ts_delta=5)
        chain.import_block(a1)
        chain.import_block(b1)
        tips = chain.branch_tips()
        assert tips[0] == b1.block_hash  # heavier first


class TestCommonAncestor:
    def test_shared_prefix_found(self):
        genesis, _ = build_genesis({})
        chain_a = header_chain(genesis)
        chain_b = header_chain(genesis)
        shared = make_child(chain_a.head)
        chain_a.import_block(shared)
        chain_b.import_block(shared)
        a2 = make_child(shared, ts_delta=14)
        b2 = make_child(shared, ts_delta=10)
        chain_a.import_block(a2)
        chain_b.import_block(b2)
        ancestor = chain_a.common_ancestor(chain_b)
        assert ancestor.block_hash == shared.block_hash

    def test_identical_chains_share_head(self):
        genesis, _ = build_genesis({})
        chain_a = header_chain(genesis)
        chain_b = header_chain(genesis)
        assert chain_a.common_ancestor(chain_b).is_genesis


class TestHardForkRefusal:
    def test_sides_reject_each_others_fork_block(self):
        """The persistent-partition property at store level."""
        fork_height = 3
        eth_cfg = replace(ETH_CONFIG, dao_fork_block=fork_height, bomb_delay=10**9)
        etc_cfg = replace(ETC_CONFIG, dao_fork_block=fork_height, bomb_delay=10**9,
                          gas_reprice_block=None, replay_protection_block=None)
        genesis, _ = build_genesis({})
        eth = Blockchain(eth_cfg, genesis, execute_transactions=False)
        etc = Blockchain(etc_cfg, genesis, execute_transactions=False)
        # shared prefix
        for _ in range(fork_height - 1):
            block = make_child(eth.head, config=eth_cfg)
            assert eth.import_block(block).accepted
            assert etc.import_block(block).accepted
        eth_fork = make_child(eth.head, config=eth_cfg)
        etc_fork = make_child(etc.head, config=etc_cfg)
        assert eth.import_block(eth_fork).accepted
        assert etc.import_block(etc_fork).accepted
        assert eth.import_block(etc_fork).status == "invalid"
        assert etc.import_block(eth_fork).status == "invalid"
        # ... and the partition persists: descendants are orphans forever.
        eth_next = make_child(eth.head, config=eth_cfg)
        assert etc.import_block(eth_next).status == "orphan"
