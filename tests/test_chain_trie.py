"""Merkle trie: commitment stability, proofs, and properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.trie import MerkleTrie, verify_proof


class TestBasicOperations:
    def test_empty_tries_share_a_root(self):
        assert MerkleTrie().root == MerkleTrie().root

    def test_set_changes_root(self):
        trie = MerkleTrie()
        empty_root = trie.root
        trie.set(b"key", b"value")
        assert trie.root != empty_root

    def test_get_returns_value(self):
        trie = MerkleTrie()
        trie.set(b"key", b"value")
        assert trie.get(b"key") == b"value"
        assert trie.get(b"missing") is None
        assert trie.get(b"missing", b"default") == b"default"

    def test_delete_restores_prior_root(self):
        trie = MerkleTrie()
        trie.set(b"a", b"1")
        root_with_a = trie.root
        trie.set(b"b", b"2")
        trie.delete(b"b")
        assert trie.root == root_with_a
        assert b"b" not in trie

    def test_delete_to_empty_restores_empty_root(self):
        trie = MerkleTrie()
        empty = trie.root
        trie.set(b"a", b"1")
        trie.delete(b"a")
        assert trie.root == empty

    def test_overwrite_changes_root(self):
        trie = MerkleTrie()
        trie.set(b"a", b"1")
        first = trie.root
        trie.set(b"a", b"2")
        assert trie.root != first

    def test_empty_value_means_delete(self):
        trie = MerkleTrie()
        trie.set(b"a", b"1")
        trie.set(b"a", b"")
        assert b"a" not in trie

    def test_len_and_items(self):
        trie = MerkleTrie({b"a": b"1", b"b": b"2"})
        assert len(trie) == 2
        assert dict(trie.items()) == {b"a": b"1", b"b": b"2"}

    def test_non_bytes_key_rejected(self):
        with pytest.raises(TypeError):
            MerkleTrie().set("string", b"v")

    def test_copy_is_independent(self):
        trie = MerkleTrie({b"a": b"1"})
        clone = trie.copy()
        clone.set(b"b", b"2")
        assert b"b" not in trie
        assert trie.root != clone.root


class TestProofs:
    def test_inclusion_proof_verifies(self):
        trie = MerkleTrie({b"a": b"1", b"b": b"2", b"c": b"3"})
        proof = trie.prove(b"b")
        assert proof.value == b"2"
        assert verify_proof(trie.root, proof)

    def test_exclusion_proof_verifies(self):
        trie = MerkleTrie({b"a": b"1"})
        proof = trie.prove(b"zzz")
        assert proof.value is None
        assert verify_proof(trie.root, proof)

    def test_proof_fails_against_wrong_root(self):
        trie = MerkleTrie({b"a": b"1"})
        proof = trie.prove(b"a")
        other = MerkleTrie({b"a": b"2"})
        assert not verify_proof(other.root, proof)

    def test_forged_value_fails(self):
        from repro.chain.trie import TrieProof

        trie = MerkleTrie({b"a": b"1"})
        honest = trie.prove(b"a")
        forged = TrieProof(key=b"a", value=b"999", siblings=honest.siblings)
        assert not verify_proof(trie.root, forged)

    def test_truncated_proof_fails(self):
        from repro.chain.trie import TrieProof

        trie = MerkleTrie({b"a": b"1"})
        honest = trie.prove(b"a")
        short = TrieProof(key=b"a", value=b"1", siblings=honest.siblings[:-1])
        assert not verify_proof(trie.root, short)


kv_dicts = st.dictionaries(
    st.binary(min_size=1, max_size=16),
    st.binary(min_size=1, max_size=16),
    max_size=12,
)


class TestProperties:
    @given(kv_dicts)
    @settings(max_examples=40, deadline=None)
    def test_root_independent_of_insertion_order(self, items):
        forward = MerkleTrie()
        for key in sorted(items):
            forward.set(key, items[key])
        backward = MerkleTrie()
        for key in sorted(items, reverse=True):
            backward.set(key, items[key])
        assert forward.root == backward.root

    @given(kv_dicts, st.binary(min_size=1, max_size=16))
    @settings(max_examples=40, deadline=None)
    def test_insert_then_delete_is_identity(self, items, extra_key):
        if extra_key in items:
            return
        trie = MerkleTrie(items)
        before = trie.root
        trie.set(extra_key, b"temp")
        trie.delete(extra_key)
        assert trie.root == before

    @given(kv_dicts)
    @settings(max_examples=30, deadline=None)
    def test_all_proofs_verify(self, items):
        trie = MerkleTrie(items)
        for key in items:
            assert verify_proof(trie.root, trie.prove(key))

    @given(kv_dicts, kv_dicts)
    @settings(max_examples=30, deadline=None)
    def test_different_contents_different_roots(self, a, b):
        if a != b:
            assert MerkleTrie(a).root != MerkleTrie(b).root
