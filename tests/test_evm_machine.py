"""EVM machine components: stack, memory, assembler."""

import pytest

from repro.evm.memory import Memory
from repro.evm.opcodes import OPCODES, assemble, disassemble
from repro.evm.stack import MAX_STACK_DEPTH, Stack, StackError


class TestStack:
    def test_push_pop(self):
        stack = Stack()
        stack.push(42)
        assert stack.pop() == 42

    def test_words_wrap_at_256_bits(self):
        stack = Stack()
        stack.push(2**256 + 5)
        assert stack.pop() == 5

    def test_underflow(self):
        with pytest.raises(StackError):
            Stack().pop()

    def test_overflow_at_1024(self):
        stack = Stack()
        for _ in range(MAX_STACK_DEPTH):
            stack.push(0)
        with pytest.raises(StackError):
            stack.push(0)

    def test_dup(self):
        stack = Stack()
        stack.push(1)
        stack.push(2)
        stack.dup(2)  # copy the 1
        assert stack.pop() == 1
        assert len(stack) == 2

    def test_dup_underflow(self):
        stack = Stack()
        stack.push(1)
        with pytest.raises(StackError):
            stack.dup(2)

    def test_swap(self):
        stack = Stack()
        stack.push(1)
        stack.push(2)
        stack.swap(1)
        assert stack.pop() == 1
        assert stack.pop() == 2

    def test_swap_underflow(self):
        stack = Stack()
        stack.push(1)
        with pytest.raises(StackError):
            stack.swap(1)

    def test_peek(self):
        stack = Stack()
        stack.push(7)
        stack.push(8)
        assert stack.peek() == 8
        assert stack.peek(1) == 7
        assert len(stack) == 2


class TestMemory:
    def test_reads_are_zero_initialized(self):
        assert Memory().read(10, 4) == b"\x00" * 4

    def test_write_read_round_trip(self):
        memory = Memory()
        memory.write(3, b"abc")
        assert memory.read(3, 3) == b"abc"

    def test_grows_in_words(self):
        memory = Memory()
        memory.write(0, b"x")
        assert len(memory) == 32
        memory.write(33, b"y")
        assert len(memory) == 64

    def test_expansion_words_counts_new_words_only(self):
        memory = Memory()
        assert memory.expansion_words(0, 32) == 1
        memory.write(0, b"\x00" * 32)
        assert memory.expansion_words(0, 32) == 0
        assert memory.expansion_words(32, 1) == 1
        assert memory.expansion_words(0, 0) == 0

    def test_word_round_trip(self):
        memory = Memory()
        memory.write_word(0, 0xDEADBEEF)
        assert memory.read_word(0) == 0xDEADBEEF

    def test_write_byte(self):
        memory = Memory()
        memory.write_byte(5, 0x1FF)  # truncates to a byte
        assert memory.read(5, 1) == b"\xff"


class TestAssembler:
    def test_simple_sequence(self):
        code = assemble("PUSH1 1 PUSH1 2 ADD STOP")
        assert code == bytes([0x60, 1, 0x60, 2, 0x01, 0x00])

    def test_integer_literals_use_minimal_push(self):
        assert assemble("5") == bytes([0x60, 5])
        assert assemble("256") == bytes([0x61, 1, 0])

    def test_hex_literals(self):
        assert assemble("0xff") == bytes([0x60, 0xFF])

    def test_comments_stripped(self):
        assert assemble("ADD ; a comment\nMUL") == bytes([0x01, 0x02])

    def test_labels_emit_jumpdest_and_resolve(self):
        code = assemble("@end JUMP end: STOP")
        # PUSH2 0x0004 JUMP JUMPDEST STOP
        assert code == bytes([0x61, 0x00, 0x04, 0x56, 0x5B, 0x00])

    def test_forward_and_backward_references(self):
        code = assemble("start: @start JUMP")
        assert code == bytes([0x5B, 0x61, 0x00, 0x00, 0x56])

    def test_undefined_label_raises(self):
        with pytest.raises(ValueError):
            assemble("@nowhere JUMP")

    def test_duplicate_label_raises(self):
        with pytest.raises(ValueError):
            assemble("a: STOP a: STOP")

    def test_unknown_mnemonic_raises(self):
        with pytest.raises(ValueError):
            assemble("FROBNICATE")

    def test_pushn_explicit_width(self):
        assert assemble("PUSH4 0x01") == bytes([0x63, 0, 0, 0, 1])

    def test_pushn_missing_operand(self):
        with pytest.raises(ValueError):
            assemble("PUSH1")

    def test_disassemble_round_trip_mnemonics(self):
        code = assemble("PUSH1 5 DUP1 MUL STOP")
        text = disassemble(code)
        assert "PUSH1" in text and "MUL" in text and "STOP" in text

    def test_all_named_opcodes_have_distinct_bytes(self):
        assert len(set(OPCODES.values())) == len(OPCODES)
