"""Differential tests: the calendar-queue scheduler vs the heap engine.

:class:`BucketSimulator` claims trajectory-identity with the binary-heap
:class:`Simulator` (and the seed-state :class:`ReferenceSimulator`): same
firing order, same ``events_processed``, same observability streams, for
any legal schedule/cancel/run_until sequence.  These tests feed all
three engines identical randomized workloads — same-timestamp bursts,
mid-run cancellations, rejected NaN/inf delays, staggered horizons —
and require bit-identical outcomes.
"""

import math
import random

import pytest

from repro.net.bucketqueue import BucketSimulator
from repro.net.simulator import SimulationError, Simulator
from repro.obs import Observability
from repro.perf.reference import ReferenceSimulator

ENGINES = [Simulator, BucketSimulator, ReferenceSimulator]


def run_workload(factory, seed, cap=2500):
    """A deterministic, self-scheduling storm with ties and cancels.

    The RNG is consumed only inside callbacks, in firing order — so two
    engines stay in lockstep exactly as long as they fire identically,
    and any ordering divergence snowballs into a different log.
    """
    sim = factory()
    rng = random.Random(seed)
    log = []
    cancellable = []

    def spawn(label):
        def callback():
            log.append((sim.now, label))
            if len(log) >= cap:
                return
            u = rng.random()
            if u < 0.30:
                # Same-timestamp burst: three FIFO ties in one bucket.
                delay = rng.random() * 2.0
                for i in range(3):
                    cancellable.append(
                        sim.schedule(delay, spawn(label * 7 + i + 1))
                    )
            elif u < 0.62:
                sim.schedule(rng.random() * 5.0, spawn(label + 101))
            elif u < 0.72 and cancellable:
                cancellable.pop(rng.randrange(len(cancellable))).cancel()
            elif u < 0.76:
                # Rejected delays must not consume queue state.
                with pytest.raises(SimulationError):
                    sim.schedule(float("nan"), callback)
            elif u < 0.80:
                sim.schedule(25.0 + rng.random() * 100.0, spawn(label + 977))
        return callback

    for i in range(40):
        cancellable.append(sim.schedule(rng.random() * 10.0, spawn(i)))
    processed = [sim.run_until(horizon)
                 for horizon in (6.0, 6.0, 21.5, 80.0, 400.0)]
    processed.append(sim.run_all())
    return log, processed, sim.events_processed, sim.now, sim.pending


class TestRandomizedDifferential:
    @pytest.mark.parametrize("seed", [1, 7, 23, 1016])
    def test_three_engines_agree(self, seed):
        results = [run_workload(engine, seed) for engine in ENGINES]
        assert results[0] == results[1] == results[2]

    @pytest.mark.parametrize("width", [0.05, 0.25, 3.0, 500.0])
    def test_bucket_width_does_not_change_trajectory(self, width):
        baseline = run_workload(Simulator, 99)
        bucketed = run_workload(
            lambda: BucketSimulator(bucket_width=width), 99
        )
        assert bucketed == baseline

    @pytest.mark.parametrize("seed", [3, 44])
    def test_obs_streams_identical(self, seed):
        def observed(engine):
            obs = Observability.enabled()
            run_workload(lambda: engine(obs=obs), seed, cap=600)
            return obs.tracer.digest(), obs.metrics.digest()

        assert observed(Simulator) == observed(BucketSimulator)


class TestOrderingEquivalence:
    def test_fifo_among_equal_timestamps_across_buckets(self):
        """Ties must fire in schedule order even when interleaved with
        schedules into the currently draining bucket."""
        def run(factory):
            sim = factory()
            log = []

            def tick(tag):
                log.append((sim.now, tag))
                if tag == "a0":
                    # schedule back into the current bucket, same time
                    sim.schedule(0.0, lambda: log.append((sim.now, "nested")))
            for i in range(6):
                sim.schedule(1.0, lambda i=i: tick(f"a{i}"))
                sim.schedule(1.0 + 1e-12, lambda i=i: tick(f"b{i}"))
            sim.run_all()
            return log

        assert run(Simulator) == run(lambda: BucketSimulator(bucket_width=0.5))

    def test_horizon_pause_then_earlier_schedule(self):
        """After a horizon pause mid-bucket, a schedule targeting an
        earlier bucket must still fire in global time order."""
        def run(factory):
            sim = factory()
            log = []
            sim.schedule(10.0, lambda: log.append("late"))
            sim.run_until(2.0)  # loads nothing, but establishes now=2.0
            sim.schedule(1.0, lambda: log.append("early"))  # t=3.0 < 10.0
            sim.run_all()
            return log

        expected = run(Simulator)
        assert expected == ["early", "late"]
        assert run(lambda: BucketSimulator(bucket_width=100.0)) == expected


class TestBudgetsAndStep:
    def test_max_events_raises_identically(self):
        def run(factory):
            sim = factory()
            fired = []
            for i in range(10):
                sim.schedule(float(i), lambda i=i: fired.append(i))
            with pytest.raises(SimulationError):
                sim.run_until(100.0, max_events=4)
            # The budgeted entries fired; the rest are still queued.
            resumed = sim.run_until(100.0)
            return fired, resumed, sim.events_processed

        assert run(Simulator) == run(BucketSimulator)

    def test_step_drains_cancelled_and_dispatches(self):
        def run(factory):
            sim = factory()
            fired = []
            keep = sim.schedule(1.0, lambda: fired.append("keep"))
            for _ in range(3):
                sim.schedule(0.5, lambda: fired.append("dead")).cancel()
            steps = []
            while sim.step():
                steps.append(sim.now)
            return fired, steps, sim.events_processed, sim.pending

        assert run(Simulator) == run(BucketSimulator) == run(ReferenceSimulator)

    def test_run_all_budget_ignores_cancelled_tail(self):
        def run(factory):
            sim = factory()
            for i in range(5):
                sim.schedule(float(i), lambda: None)
            sim.schedule(9.0, lambda: None).cancel()
            return sim.run_all(max_events=5), sim.pending

        assert run(Simulator) == run(BucketSimulator) == (5, 0)


class TestValidationAndConstruction:
    @pytest.mark.parametrize(
        "delay", [-1.0, float("nan"), float("inf"), -float("inf")]
    )
    def test_bad_delays_rejected(self, delay):
        sim = BucketSimulator()
        with pytest.raises(SimulationError):
            sim.schedule(delay, lambda: None)
        assert sim.pending == 0

    def test_bad_bucket_width_rejected(self):
        for width in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises((SimulationError, ValueError)):
                BucketSimulator(bucket_width=width)

    def test_negative_start_time_rejected(self):
        with pytest.raises((SimulationError, ValueError)):
            BucketSimulator(start_time=-5.0)

    def test_class_switch_redirects_construction(self):
        saved = Simulator.use_bucket_queue
        try:
            Simulator.use_bucket_queue = True
            sim = Simulator()
            assert type(sim) is BucketSimulator
        finally:
            Simulator.use_bucket_queue = saved
        assert type(Simulator()) is Simulator

    def test_class_switch_leaves_subclasses_alone(self):
        class Custom(Simulator):
            pass

        saved = Simulator.use_bucket_queue
        try:
            Simulator.use_bucket_queue = True
            assert type(Custom()) is Custom
        finally:
            Simulator.use_bucket_queue = saved


class TestScenarioDigest:
    def test_partition_digest_identical_under_bucket_engine(self):
        from repro.perf.bench import _partition_digest
        from repro.scenarios.partition_event import (
            PartitionScenario,
            PartitionScenarioConfig,
        )

        def run(sim_cls):
            config = PartitionScenarioConfig(
                num_nodes=10, num_miners=3, post_fork_horizon=240.0, seed=13
            )
            scenario = PartitionScenario(
                config, simulator_factory=lambda **kw: sim_cls(**kw)
            )
            return _partition_digest(scenario.run())

        assert run(Simulator) == run(BucketSimulator)
