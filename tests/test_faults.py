"""repro.faults: schedules, the injector, and the robustness report."""

from dataclasses import replace

import pytest

from repro.chain.chainstore import Blockchain
from repro.chain.config import ETH_CONFIG
from repro.chain.genesis import build_genesis
from repro.faults.injector import ActiveFaults, FaultInjector
from repro.faults.report import RobustnessSample, build_robustness_report
from repro.faults.schedule import (
    ByzantineFault,
    ChurnBurst,
    CrashNode,
    FaultSchedule,
    LatencyFault,
    LinkFault,
    SlowPeerFault,
    SplitFault,
)
from repro.net.latency import ConstantLatency
from repro.net.messages import NewBlockHashes, Ping
from repro.net.network import Network
from repro.net.node import FullNode
from repro.net.simulator import Simulator

CFG = replace(ETH_CONFIG, dao_fork_block=10**9, bomb_delay=10**9)


def tiny_network(n=4, seed=1):
    genesis, _ = build_genesis({})
    sim = Simulator()
    net = Network(sim, latency=ConstantLatency(0.01), seed=seed)
    regions = ["na", "eu", "as", "eu"]
    nodes = [
        FullNode(
            f"n{i}",
            Blockchain(CFG, genesis, execute_transactions=False),
            region=regions[i % len(regions)],
            rng_seed=i,
        )
        for i in range(n)
    ]
    for node in nodes:
        net.add_node(node)
    return sim, net, nodes


class TestScheduleValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            CrashNode(at=-1.0, node="n0")
        with pytest.raises(ValueError):
            ChurnBurst(start=0.0, duration=0.0, rate=0.1)
        with pytest.raises(ValueError):
            LinkFault(start=0.0, duration=10.0, loss_rate=0.0)
        with pytest.raises(ValueError):
            LatencyFault(start=0.0, duration=10.0, factor=0.0)
        with pytest.raises(ValueError):
            SplitFault(start=0.0, duration=10.0, groups=(("a",),))
        with pytest.raises(ValueError):
            SplitFault(
                start=0.0, duration=10.0, groups=(("a",), ("a", "b"))
            )
        with pytest.raises(ValueError):
            ByzantineFault(start=0.0, duration=10.0, node="n0", mode="evil")

    def test_rejects_non_fault_entries(self):
        with pytest.raises(ValueError):
            FaultSchedule(faults=("not-a-fault",))

    def test_window_bounds(self):
        schedule = FaultSchedule(
            faults=(
                CrashNode(at=50.0, node="n0", restart_after=100.0),
                LinkFault(start=10.0, duration=30.0, loss_rate=0.5),
            )
        )
        assert schedule.first_start() == 10.0
        assert schedule.last_end() == 150.0
        assert len(schedule) == 2
        assert FaultSchedule().first_start() is None


class TestScheduleSerialization:
    def schedule(self):
        return FaultSchedule(
            faults=(
                CrashNode(at=5.0, node="n1", restart_after=60.0),
                ChurnBurst(start=10.0, duration=100.0, rate=0.05),
                LinkFault(start=0.0, duration=50.0, loss_rate=0.3,
                          src="na", scope="region"),
                LatencyFault(start=20.0, duration=40.0, factor=3.0,
                             region="eu"),
                SplitFault(start=30.0, duration=60.0,
                           groups=(("n0", "n1"), ("n2",))),
                SlowPeerFault(start=1.0, duration=2.0, node="n3"),
                ByzantineFault(start=4.0, duration=9.0, node="n2",
                               mode="delay", extra_delay=5.0),
            ),
            seed=99,
        )

    def test_round_trip(self):
        schedule = self.schedule()
        assert FaultSchedule.from_dict(schedule.to_dict()) == schedule

    def test_digest_stable_and_sensitive(self):
        schedule = self.schedule()
        assert schedule.digest() == self.schedule().digest()
        other = FaultSchedule(faults=schedule.faults, seed=100)
        assert other.digest() != schedule.digest()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSchedule.from_dict(
                {"seed": 0, "faults": [{"kind": "meteor", "at": 1.0}]}
            )


class TestActiveFaults:
    def test_idle_instance_delivers_untouched(self):
        active = ActiveFaults()
        verdict, scale, extra = active.judge(
            "a", "na", "b", "eu", Ping(sender_id="a")
        )
        assert (verdict, scale, extra) == ("deliver", 1.0, 0.0)
        assert not active.any_active

    def test_split_blocks_cross_group_only(self):
        active = ActiveFaults()
        fault = SplitFault(
            start=0.0, duration=10.0, groups=(("a",), ("b",)), scope="node"
        )
        active.activate(fault)
        msg = Ping(sender_id="a")
        assert active.judge("a", "na", "b", "eu", msg)[0] == "blocked"
        assert active.judge("a", "na", "c", "eu", msg)[0] == "deliver"
        active.deactivate(fault)
        assert active.judge("a", "na", "b", "eu", msg)[0] == "deliver"

    def test_latency_factor_and_slow_peer_compose(self):
        active = ActiveFaults()
        active.activate(
            LatencyFault(start=0.0, duration=10.0, factor=4.0, region="eu")
        )
        active.activate(
            SlowPeerFault(start=0.0, duration=10.0, node="a", extra_delay=2.0)
        )
        verdict, scale, extra = active.judge(
            "a", "eu", "b", "na", Ping(sender_id="a")
        )
        assert (verdict, scale, extra) == ("deliver", 4.0, 2.0)

    def test_byzantine_withholds_blocks_but_not_pings(self):
        active = ActiveFaults()
        active.activate(
            ByzantineFault(start=0.0, duration=10.0, node="a")
        )
        announce = NewBlockHashes(sender_id="a", hashes=())
        assert active.judge("a", "na", "b", "eu", announce)[0] == "blocked"
        assert active.judge("a", "na", "b", "eu",
                            Ping(sender_id="a"))[0] == "deliver"


class TestInjector:
    def test_crash_and_restart(self):
        sim, net, nodes = tiny_network()
        schedule = FaultSchedule(
            faults=(CrashNode(at=10.0, node="n0", restart_after=20.0),)
        )
        injector = FaultInjector(net, schedule, seed=1)
        injector.arm()
        sim.run_until(15.0)
        assert not nodes[0].online
        sim.run_until(40.0)
        assert nodes[0].online
        events = [event for _, event in injector.log]
        assert events == ["crash n0", "restart n0"]

    def test_double_arm_refused(self):
        sim, net, _ = tiny_network()
        injector = FaultInjector(net, FaultSchedule(), seed=1)
        injector.arm()
        with pytest.raises(RuntimeError):
            injector.arm()

    def test_split_blocks_and_heals_through_transport(self):
        sim, net, nodes = tiny_network()
        schedule = FaultSchedule(
            faults=(
                SplitFault(start=10.0, duration=20.0,
                           groups=(("n0",), ("n1",))),
            )
        )
        FaultInjector(net, schedule, seed=1).arm()
        sim.run_until(15.0)
        net.send("n0", "n1", Ping(sender_id="n0"))
        assert net.messages_blocked == 1
        sim.run_until(40.0)
        net.send("n0", "n1", Ping(sender_id="n0"))
        assert net.messages_blocked == 1
        assert net.messages_sent == 1

    def test_link_loss_counts_lost(self):
        sim, net, nodes = tiny_network()
        schedule = FaultSchedule(
            faults=(LinkFault(start=0.0, duration=100.0, loss_rate=1.0),)
        )
        FaultInjector(net, schedule, seed=1).arm()
        sim.run_until(5.0)
        for _ in range(10):
            net.send("n0", "n1", Ping(sender_id="n0"))
        assert net.messages_lost == 10

    def test_churn_trace_is_seed_deterministic(self):
        def trace(seed):
            sim, net, nodes = tiny_network(n=6)
            schedule = FaultSchedule(
                faults=(ChurnBurst(start=0.0, duration=100.0, rate=0.05),),
                seed=3,
            )
            injector = FaultInjector(net, schedule, seed=seed)
            injector.arm()
            sim.run_until(500.0)
            return injector.log

        assert trace(7) == trace(7)
        assert trace(7) != trace(8)


class TestRobustnessReport:
    def make_report(self, samples):
        sim, net, _ = tiny_network()
        schedule = FaultSchedule(
            faults=(LinkFault(start=100.0, duration=50.0, loss_rate=0.5),)
        )
        return build_robustness_report(
            seed=1, schedule=schedule, samples=samples, network=net,
            total_blocks_mined=10, canonical_blocks=9,
        )

    def test_recovery_time_from_disruption_end(self):
        samples = [
            RobustnessSample(0.0, 10, 10, 20, 5.0),
            RobustnessSample(120.0, 3, 10, 20, 1.0),
            RobustnessSample(200.0, 9, 10, 20, 4.0),
        ]
        report = self.make_report(samples)
        assert report.baseline_reachable == 10
        assert report.minimum_reachable == 3
        assert report.disruption_end == 150.0
        assert report.recovery_time == 50.0
        assert report.recovered()
        assert report.orphan_rate == pytest.approx(0.1)

    def test_never_recovered(self):
        samples = [
            RobustnessSample(0.0, 10, 10, 20, 5.0),
            RobustnessSample(200.0, 3, 10, 20, 1.0),
        ]
        report = self.make_report(samples)
        assert report.recovery_time is None
        assert not report.recovered()

    def test_digest_reproducible(self):
        samples = [RobustnessSample(0.0, 10, 10, 20, 5.0)]
        assert (
            self.make_report(samples).digest()
            == self.make_report(samples).digest()
        )
        assert "recovery" in self.make_report(samples).render()
