"""Kademlia routing: XOR metric laws, buckets, lookups."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.kademlia import (
    BUCKET_SIZE,
    RoutingTable,
    bucket_index,
    node_id_digest,
    xor_distance,
)

ids = st.binary(min_size=32, max_size=32)


class TestXorMetric:
    @given(ids)
    def test_identity(self, a):
        assert xor_distance(a, a) == 0

    @given(ids, ids)
    def test_symmetry(self, a, b):
        assert xor_distance(a, b) == xor_distance(b, a)

    @given(ids, ids, ids)
    def test_triangle_inequality(self, a, b, c):
        assert xor_distance(a, c) <= xor_distance(a, b) + xor_distance(b, c)

    @given(ids, ids)
    def test_unidirectional(self, a, b):
        """Kademlia's key lemma: for any a and distance d there is exactly
        one b with d(a,b)=d — xor is a bijection."""
        d = xor_distance(a, b)
        recovered = (int.from_bytes(a, "big") ^ d).to_bytes(32, "big")
        assert recovered == b


class TestBucketIndex:
    def test_self_has_no_bucket(self):
        digest = node_id_digest("n")
        with pytest.raises(ValueError):
            bucket_index(digest, digest)

    def test_bucket_is_log2_distance(self):
        a = (0).to_bytes(32, "big")
        b = (1).to_bytes(32, "big")
        assert bucket_index(a, b) == 0
        c = (2**255).to_bytes(32, "big")
        assert bucket_index(a, c) == 255


class TestRoutingTable:
    def test_observe_and_contains(self):
        table = RoutingTable("me")
        assert table.observe("peer1")
        assert "peer1" in table
        assert len(table) == 1

    def test_never_buckets_itself(self):
        table = RoutingTable("me")
        assert not table.observe("me")
        assert "me" not in table

    def test_bucket_capacity_enforced(self):
        table = RoutingTable("me", bucket_size=2)
        admitted = 0
        # Flood with peers; each bucket holds at most 2.
        for index in range(200):
            if table.observe(f"peer{index}"):
                admitted += 1
        for bucket_length in table.bucket_fill().values():
            assert bucket_length <= 2

    def test_reobserving_refreshes_not_duplicates(self):
        table = RoutingTable("me")
        table.observe("peer")
        table.observe("peer")
        assert len(table) == 1

    def test_remove(self):
        table = RoutingTable("me")
        table.observe("peer")
        table.remove("peer")
        assert "peer" not in table

    def test_closest_orders_by_distance(self):
        table = RoutingTable("me")
        peers = [f"peer{i}" for i in range(50)]
        for peer in peers:
            table.observe(peer)
        target = node_id_digest("target")
        closest = table.closest(target, count=10)
        assert len(closest) == 10
        distances = [
            xor_distance(node_id_digest(name), target) for name in closest
        ]
        assert distances == sorted(distances)
        # And they really are the globally closest of the known peers.
        best_known = min(
            table.all_peers(),
            key=lambda name: xor_distance(node_id_digest(name), target),
        )
        assert closest[0] == best_known

    def test_random_peers_bounded_sample(self):
        table = RoutingTable("me")
        for index in range(30):
            table.observe(f"peer{index}")
        rng = random.Random(1)
        sample = table.random_peers(10, rng)
        assert len(sample) == 10
        assert len(set(sample)) == 10

    def test_random_peers_small_table_returns_all(self):
        table = RoutingTable("me")
        table.observe("only")
        assert table.random_peers(10, random.Random(1)) == ["only"]

    def test_fork_blindness(self):
        """The paper's point (Section 2.2): discovery has no notion of
        chain rules — a routing table happily holds peers from both sides
        of a partition.  Nothing in the table's API can distinguish them.
        """
        table = RoutingTable("etc-node")
        for index in range(10):
            table.observe(f"eth-node{index}")
            table.observe(f"etc-node{index}")
        assert len(table) == 20
