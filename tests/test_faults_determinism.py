"""Chaos-run determinism: identical seed + schedule replay byte-identically.

The fault-sweep's cache keys hash the fault schedule, so the same
soundness precondition applies as for the plain simulation: a
:class:`ChaosPartitionConfig` must reproduce the identical census
trajectory and :class:`RobustnessReport` digest in this process and in a
spawned worker that re-imports everything from scratch.
"""

import pytest

from repro.faults.schedule import (
    ChurnBurst,
    FaultSchedule,
    LinkFault,
    SplitFault,
)
from repro.harness import NullProgress, WorkerPool, chaos_partition_spec
from repro.net.node import ResiliencePolicy
from repro.scenarios.partition_event import (
    ChaosPartitionConfig,
    PartitionScenario,
)


def small_chaos_config(schedule_seed=7):
    schedule = FaultSchedule(
        faults=(
            ChurnBurst(start=300.0, duration=300.0, rate=0.01,
                       downtime=90.0),
            LinkFault(start=400.0, duration=200.0, loss_rate=0.2,
                      scope="region"),
            SplitFault(start=800.0, duration=200.0, scope="region",
                       groups=(("na",), ("eu", "as"))),
        ),
        seed=schedule_seed,
    )
    return ChaosPartitionConfig(
        num_nodes=14,
        num_miners=4,
        post_fork_horizon=900.0,
        faults=schedule.to_dict(),
        resilience=ResiliencePolicy().to_dict(),
        max_events=2_000_000,
    )


class TestInProcessChaosDeterminism:
    def test_identical_runs_identical_trajectories(self):
        config = small_chaos_config()
        a = PartitionScenario(config).run()
        b = PartitionScenario(config).run()
        assert a.snapshots == b.snapshots
        assert a.robustness.samples == b.robustness.samples
        assert a.robustness.fault_log == b.robustness.fault_log
        assert a.robustness.digest() == b.robustness.digest()

    def test_schedule_seed_changes_trajectory(self):
        a = PartitionScenario(small_chaos_config(7)).run()
        b = PartitionScenario(small_chaos_config(8)).run()
        assert a.robustness.digest() != b.robustness.digest()

    def test_faultless_chaos_matches_report_scaffolding(self):
        # An empty schedule still produces a (fault-free) report whose
        # digest is reproducible — the sweep's control cell leans on it.
        config = ChaosPartitionConfig(
            num_nodes=10, num_miners=3, post_fork_horizon=600.0,
            faults=FaultSchedule().to_dict(),
        )
        a = PartitionScenario(config).run()
        b = PartitionScenario(config).run()
        assert a.robustness is not None
        assert a.robustness.digest() == b.robustness.digest()
        assert a.robustness.messages_blocked == 0


class TestSubprocessChaosDeterminism:
    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_worker_digest_matches_in_process(self, start_method):
        pool = WorkerPool(
            workers=2,
            cache_dir=None,
            timeout=300.0,
            retries=0,
            progress=NullProgress(),
            start_method=start_method,
        )
        if pool.workers == 1:
            pytest.skip("multiprocessing unavailable on this host")
        config = small_chaos_config()
        spec = chaos_partition_spec(config)
        results = pool.run([spec, spec])
        assert all(r.record.status == "ok" for r in results)
        local = PartitionScenario(config).run()
        for result in results:
            assert result.value.robustness.digest() == local.robustness.digest()
            assert result.value.snapshots == local.snapshots
