"""Uncle (ommer) blocks: commitments, validation, rewards, mining."""

from dataclasses import replace

import pytest

from repro.chain.block import (
    EMPTY_OMMERS_ROOT,
    MAX_OMMER_DEPTH,
    Block,
    BlockHeader,
    ommers_root,
    transactions_root,
)
from repro.chain.chainstore import Blockchain
from repro.chain.config import ETH_CONFIG
from repro.chain.genesis import build_genesis
from repro.chain.types import Address, Hash32

CONFIG = replace(ETH_CONFIG, dao_fork_block=10**9, bomb_delay=10**9)


def make_child(parent, ts_delta=14, coinbase=None, ommers=()):
    timestamp = parent.timestamp + ts_delta
    number = parent.number + 1
    return Block(
        header=BlockHeader(
            parent_hash=parent.block_hash,
            number=number,
            timestamp=timestamp,
            difficulty=CONFIG.compute_difficulty(
                parent.difficulty, parent.timestamp, timestamp, number
            ),
            coinbase=coinbase or Address.zero(),
            state_root=Hash32.zero(),
            tx_root=transactions_root(()),
            gas_limit=parent.header.gas_limit,
            gas_used=0,
            ommers_hash=ommers_root(tuple(o.header if isinstance(o, Block) else o
                                          for o in ommers)),
        ),
        ommers=tuple(o.header if isinstance(o, Block) else o for o in ommers),
    )


@pytest.fixture
def chain_with_orphan():
    """A chain where block 1 had two competitors; one branch won."""
    genesis, _ = build_genesis({}, difficulty=10**9)
    chain = Blockchain(CONFIG, genesis, execute_transactions=False)
    loser = make_child(genesis, ts_delta=25, coinbase=Address.from_int(0xB))
    winner = make_child(genesis, ts_delta=14, coinbase=Address.from_int(0xA))
    assert chain.import_block(loser).accepted
    assert chain.import_block(winner).accepted
    assert chain.head.block_hash == winner.block_hash
    return chain, winner, loser


class TestCommitments:
    def test_empty_ommers_root_is_default(self):
        genesis, _ = build_genesis({})
        assert genesis.header.ommers_hash == EMPTY_OMMERS_ROOT
        assert genesis.consistent_ommers_root()

    def test_ommers_hash_affects_block_hash(self, chain_with_orphan):
        _, winner, loser = chain_with_orphan
        with_uncle = make_child(winner, ommers=(loser,))
        without = make_child(winner)
        assert with_uncle.block_hash != without.block_hash

    def test_inconsistent_ommers_root_detected(self, chain_with_orphan):
        _, winner, loser = chain_with_orphan
        shaped = make_child(winner)
        forged = Block(header=shaped.header, ommers=(loser.header,))
        assert not forged.consistent_ommers_root()


class TestValidationRules:
    def test_valid_uncle_accepted(self, chain_with_orphan):
        chain, winner, loser = chain_with_orphan
        block = make_child(winner, ommers=(loser,))
        assert chain.import_block(block).accepted

    def test_ancestor_cannot_be_uncle(self, chain_with_orphan):
        chain, winner, _ = chain_with_orphan
        block = make_child(winner, ommers=(winner,))
        result = chain.import_block(block)
        assert result.status == "invalid"
        assert result.reason == "ommer-is-ancestor"

    def test_double_inclusion_rejected(self, chain_with_orphan):
        chain, winner, loser = chain_with_orphan
        first = make_child(winner, ommers=(loser,))
        assert chain.import_block(first).accepted
        second = make_child(first, ommers=(loser,))
        result = chain.import_block(second)
        assert result.status == "invalid"
        assert result.reason == "ommer-already-included"

    def test_duplicate_within_block_rejected(self, chain_with_orphan):
        chain, winner, loser = chain_with_orphan
        block = make_child(winner, ommers=(loser, loser))
        assert chain.import_block(block).reason == "duplicate-ommer"

    def test_too_deep_uncle_rejected(self, chain_with_orphan):
        chain, winner, loser = chain_with_orphan
        tip = winner
        for _ in range(MAX_OMMER_DEPTH + 1):
            tip = make_child(tip)
            assert chain.import_block(tip).accepted
        stale = make_child(tip, ommers=(loser,))
        assert chain.import_block(stale).reason == "bad-ommer-depth"

    def test_foreign_header_rejected(self, chain_with_orphan):
        chain, winner, _ = chain_with_orphan
        # A header whose parent is not on this chain's ancestry.
        other_genesis, _ = build_genesis({}, difficulty=10**9 + 2048)
        foreign = make_child(other_genesis, ts_delta=25)
        block = make_child(winner, ommers=(foreign,))
        assert chain.import_block(block).reason == "ommer-not-sibling"

    def test_wrong_uncle_difficulty_rejected(self, chain_with_orphan):
        chain, winner, loser = chain_with_orphan
        cooked = BlockHeader(
            parent_hash=loser.header.parent_hash,
            number=loser.number,
            timestamp=loser.timestamp,
            difficulty=loser.difficulty + 1,
            coinbase=loser.coinbase,
            state_root=loser.header.state_root,
            tx_root=loser.header.tx_root,
            gas_limit=loser.header.gas_limit,
            gas_used=0,
        )
        block = make_child(winner, ommers=(cooked,))
        assert chain.import_block(block).reason == "bad-ommer-difficulty"


class TestCandidateSelection:
    def test_orphan_is_a_candidate(self, chain_with_orphan):
        chain, _, loser = chain_with_orphan
        candidates = chain.candidate_ommers()
        assert [c.block_hash for c in candidates] == [loser.block_hash]

    def test_candidate_disappears_after_inclusion(self, chain_with_orphan):
        chain, winner, loser = chain_with_orphan
        chain.import_block(make_child(winner, ommers=(loser,)))
        assert chain.candidate_ommers() == []

    def test_candidates_are_importable(self, chain_with_orphan):
        """The selector's output always satisfies the validator."""
        chain, winner, _ = chain_with_orphan
        block = make_child(winner, ommers=tuple(chain.candidate_ommers()))
        assert chain.import_block(block).accepted


class TestRewards:
    def test_full_mode_pays_uncle_and_includer(self):
        """End-to-end through the executing chain store: a real fork, the
        loser referenced as an uncle, balances checked at the head."""
        from repro.chain.block import Block as _Block
        from repro.chain.processor import apply_block

        uncle_miner = Address.from_int(0xB)
        includer = Address.from_int(0xA)
        genesis, state = build_genesis({}, difficulty=10**9)
        chain = Blockchain(CONFIG, genesis, state)

        def seal_full(parent, ts_delta, coinbase, ommers=()):
            shaped = make_child(parent, ts_delta=ts_delta, coinbase=coinbase,
                                ommers=ommers)
            parent_state = chain.state_at(parent.block_hash)
            scratch = parent_state.fork()
            apply_block(scratch, shaped, CONFIG)
            header_fields = {
                field: getattr(shaped.header, field)
                for field in (
                    "parent_hash", "number", "timestamp", "difficulty",
                    "coinbase", "tx_root", "gas_limit", "gas_used",
                    "nonce", "extra_data", "ommers_hash",
                )
            }
            return _Block(
                header=BlockHeader(state_root=scratch.state_root,
                                   **header_fields),
                ommers=shaped.ommers,
            )

        loser = seal_full(genesis, 25, uncle_miner)
        winner = seal_full(genesis, 14, includer)
        assert chain.import_block(loser).accepted
        assert chain.import_block(winner).accepted
        assert chain.head.block_hash == winner.block_hash
        nephew = seal_full(winner, 14, includer, ommers=(loser,))
        assert chain.import_block(nephew).accepted

        head_state = chain.head_state()
        reward = CONFIG.block_reward
        # Distance-1 uncle: (8-1)/8 of the reward.
        assert head_state.balance_of(uncle_miner) == reward * 7 // 8
        # Includer: two full block rewards + 1/32 nephew bonus.
        assert head_state.balance_of(includer) == 2 * reward + reward // 32

    def test_distance_one_uncle_gets_seven_eighths(self):
        from repro.chain.processor import apply_block
        from repro.chain.state import StateDB

        uncle_miner = Address.from_int(0xB)
        genesis, _ = build_genesis({}, difficulty=10**9)
        loser = make_child(genesis, ts_delta=25, coinbase=uncle_miner)
        winner = make_child(genesis, ts_delta=14)
        nephew = make_child(winner, ommers=(loser,))
        state = StateDB()
        apply_block(state, nephew, CONFIG)
        assert state.balance_of(uncle_miner) == CONFIG.block_reward * 7 // 8

    def test_uncle_rewards_inflate_supply(self):
        """Uncles mint extra ether — the documented cost of the scheme."""
        from repro.chain.processor import apply_block
        from repro.chain.state import StateDB

        genesis, _ = build_genesis({}, difficulty=10**9)
        loser = make_child(genesis, ts_delta=25, coinbase=Address.from_int(0xB))
        winner = make_child(genesis, ts_delta=14)
        plain = make_child(winner)
        with_uncle = make_child(winner, ommers=(loser,))
        plain_state, uncle_state = StateDB(), StateDB()
        apply_block(plain_state, plain, CONFIG)
        apply_block(uncle_state, with_uncle, CONFIG)
        assert uncle_state.total_supply() > plain_state.total_supply()
