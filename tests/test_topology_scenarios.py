"""Topology-aware scenarios: partition on explicit graphs + DEthna inference.

Two properties carry the sweep's claims:

* **Additivity** — a plain :class:`PartitionScenarioConfig` must replay
  byte-identically whether or not the topology code exists, and a
  :class:`TopologyPartitionConfig` with ``topology=None`` must take the
  exact legacy mesh path.
* **Determinism** — same config ⇒ same snapshots, same inference digest,
  because the sweep caches cells by canonical config JSON.
"""

import pytest

from repro.net.topology import TopologySpec
from repro.scenarios.partition_event import (
    PartitionResult,
    PartitionScenario,
    PartitionScenarioConfig,
    PartitionSnapshot,
    TopologyPartitionConfig,
)
from repro.scenarios.topology_inference import (
    TopologyInferenceConfig,
    TopologyInferenceResult,
    TopologyInferenceScenario,
)


def small_topology_config(kind="uniform", latency="lognormal", seed=11):
    spec = TopologySpec(kind=kind, num_nodes=12, target_degree=4, seed=seed)
    return TopologyPartitionConfig(
        num_nodes=12,
        num_miners=3,
        fork_block=10,
        post_fork_horizon=600.0,
        census_interval=120.0,
        seed=seed,
        topology=spec.to_dict(),
        latency=latency,
    )


def snapshot(time, etc_reachable):
    return PartitionSnapshot(
        time=time, eth_height=0, etc_height=0,
        eth_reachable=etc_reachable, etc_reachable=etc_reachable,
        eth_mean_peers=0.0, etc_mean_peers=0.0,
    )


class TestStabilizationTime:
    def make_result(self, fork_time, pairs):
        return PartitionResult(
            config=PartitionScenarioConfig(),
            snapshots=[snapshot(t, r) for t, r in pairs],
            fork_time=fork_time,
            handshake_refusals=0,
            incompatible_disconnects=0,
        )

    def test_recovery_measured_from_fork(self):
        result = self.make_result(
            100.0,
            [(50, 50), (100, 50), (200, 20), (300, 30), (400, 48)],
        )
        # Plateau 50, threshold 45: the t=400 census is the first at or
        # after the floor (t=200) to clear it.
        assert result.stabilization_time() == pytest.approx(300.0)

    def test_fraction_parameter_moves_threshold(self):
        result = self.make_result(
            100.0,
            [(50, 50), (100, 50), (200, 20), (300, 30), (400, 48)],
        )
        assert result.stabilization_time(fraction=0.5) == pytest.approx(200.0)

    def test_no_recovery_returns_none(self):
        result = self.make_result(
            100.0, [(100, 50), (200, 20), (300, 30)]
        )
        # The pre-floor plateau census doesn't count as recovery.
        assert result.stabilization_time() is None

    def test_no_fork_returns_none(self):
        result = self.make_result(None, [(100, 50), (200, 50)])
        assert result.stabilization_time() is None

    def test_no_post_fork_census_returns_none(self):
        result = self.make_result(500.0, [(100, 50), (200, 50)])
        assert result.stabilization_time() is None

    def test_dead_side_returns_none(self):
        result = self.make_result(100.0, [(200, 0), (300, 0)])
        assert result.stabilization_time() is None


class TestTopologyPartition:
    @pytest.mark.parametrize("kind,latency", [
        ("uniform", "lognormal"),
        ("powerlaw", "lognormal"),
        ("geo", "geo"),
    ])
    def test_runs_and_is_deterministic(self, kind, latency):
        config = small_topology_config(kind=kind, latency=latency)
        a = PartitionScenario(config).run()
        b = PartitionScenario(config).run()
        assert a.snapshots == b.snapshots
        assert a.fork_time == b.fork_time
        assert a.snapshots  # the census actually ran
        # stabilization_time must be well-defined (float or None) on a
        # real trajectory, whatever the tiny grid decides.
        stab = a.stabilization_time()
        assert stab is None or stab >= 0.0

    def test_topology_none_matches_plain_config(self):
        # The topology axis is strictly additive: with topology=None the
        # subclass must take the exact legacy mesh path.
        base = dict(
            num_nodes=12, num_miners=3, fork_block=10,
            post_fork_horizon=600.0, census_interval=120.0, seed=7,
        )
        plain = PartitionScenario(PartitionScenarioConfig(**base)).run()
        via_topo = PartitionScenario(
            TopologyPartitionConfig(**base, topology=None)
        ).run()
        assert plain.snapshots == via_topo.snapshots
        assert plain.fork_time == via_topo.fork_time
        assert plain.handshake_refusals == via_topo.handshake_refusals

    def test_rejects_unknown_latency(self):
        config = small_topology_config()
        config.latency = "carrier-pigeon"
        with pytest.raises(ValueError, match="latency"):
            PartitionScenario(config).run()

    def test_rejects_node_count_mismatch(self):
        spec = TopologySpec(kind="uniform", num_nodes=8, target_degree=3)
        config = TopologyPartitionConfig(
            num_nodes=12, num_miners=3, topology=spec.to_dict()
        )
        with pytest.raises(ValueError, match="num_nodes"):
            PartitionScenario(config).run()

    def test_seed_changes_trajectory(self):
        a = PartitionScenario(small_topology_config(seed=11)).run()
        b = PartitionScenario(small_topology_config(seed=12)).run()
        assert a.snapshots != b.snapshots


def small_inference_config(**overrides):
    params = dict(
        num_nodes=14,
        target_degree=4,
        seed=5,
        probes_per_target=3,
        latency_kind="constant",
    )
    params.update(overrides)
    return TopologyInferenceConfig(**params)


class TestTopologyInference:
    def test_constant_latency_recovers_graph_exactly(self):
        # With zero jitter the 2-hop/3-hop lag separation is exact, so
        # the classifier must recover the realized mesh perfectly.
        result = TopologyInferenceScenario(small_inference_config()).run()
        assert result.precision == 1.0
        assert result.recall == 1.0
        assert result.f1 == 1.0
        assert result.true_edges  # non-degenerate ground truth

    def test_lognormal_latency_meets_accuracy_floor(self):
        config = small_inference_config(
            latency_kind="lognormal", probes_per_target=5
        )
        result = TopologyInferenceScenario(config).run()
        assert result.precision >= 0.8
        assert result.recall >= 0.8

    def test_deterministic_digest(self):
        config = small_inference_config()
        a = TopologyInferenceScenario(config).run()
        b = TopologyInferenceScenario(config).run()
        assert a.digest() == b.digest()
        assert a.predicted_edges == b.predicted_edges

    def test_probe_accounting(self):
        config = small_inference_config()
        result = TopologyInferenceScenario(config).run()
        assert result.probes_sent == (
            config.num_nodes * config.probes_per_target
        )
        assert result.arrivals_recorded >= result.probes_sent
        assert result.num_nodes == config.num_nodes

    def test_explicit_topology_payload(self):
        spec = TopologySpec(kind="powerlaw", num_nodes=14, target_degree=4,
                            seed=9)
        config = small_inference_config(topology=spec.to_dict())
        result = TopologyInferenceScenario(config).run()
        assert result.precision == 1.0  # still constant latency
        assert result.topology_digest  # pins the ground-truth graph

    def test_result_round_trip(self):
        result = TopologyInferenceScenario(small_inference_config()).run()
        payload = result.to_dict()
        clone = TopologyInferenceResult(
            config=TopologyInferenceConfig(**payload["config"]),
            topology_digest=payload["topology_digest"],
            num_nodes=payload["num_nodes"],
            true_edges=[tuple(e) for e in payload["true_edges"]],
            predicted_edges=[tuple(e) for e in payload["predicted_edges"]],
            precision=payload["precision"],
            recall=payload["recall"],
            f1=payload["f1"],
            probes_sent=payload["probes_sent"],
            arrivals_recorded=payload["arrivals_recorded"],
        )
        assert clone.digest() == result.digest()

    def test_rejects_bad_latency_kind(self):
        config = small_inference_config(latency_kind="uniform")
        with pytest.raises(ValueError, match="latency_kind"):
            TopologyInferenceScenario(config).run()

    def test_rejects_zero_probes(self):
        config = small_inference_config(probes_per_target=0)
        with pytest.raises(ValueError, match="probes_per_target"):
            TopologyInferenceScenario(config).run()

    def test_rejects_monitor_name_collision(self):
        spec = TopologySpec(kind="uniform", num_nodes=4, target_degree=2)
        config = TopologyInferenceConfig(
            topology=spec.to_dict(), monitor_name="n001",
            latency_kind="constant",
        )
        with pytest.raises(ValueError, match="monitor_name"):
            TopologyInferenceScenario(config).run()
