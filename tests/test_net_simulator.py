"""Discrete-event engine: ordering, cancellation, determinism."""

import pytest

from repro.net.simulator import SimulationError, Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(3.0, log.append, "c")
        sim.schedule(1.0, log.append, "a")
        sim.schedule(2.0, log.append, "b")
        sim.run_all()
        assert log == ["a", "b", "c"]

    def test_simultaneous_events_run_fifo(self):
        sim = Simulator()
        log = []
        for tag in "abc":
            sim.schedule(1.0, log.append, tag)
        sim.run_all()
        assert log == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.5, lambda: seen.append(sim.now))
        sim.run_all()
        assert seen == [5.5]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator(start_time=100.0)
        seen = []
        sim.schedule_at(150.0, lambda: seen.append(sim.now))
        sim.run_all()
        assert seen == [150.0]

    def test_events_can_schedule_events(self):
        sim = Simulator()
        log = []

        def first():
            log.append(("first", sim.now))
            sim.schedule(2.0, lambda: log.append(("second", sim.now)))

        sim.schedule(1.0, first)
        sim.run_all()
        assert log == [("first", 1.0), ("second", 3.0)]


class TestRunUntil:
    def test_stops_at_boundary(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, log.append, "in")
        sim.schedule(10.0, log.append, "out")
        sim.run_until(5.0)
        assert log == ["in"]
        assert sim.now == 5.0
        assert sim.pending == 1

    def test_boundary_event_included(self):
        sim = Simulator()
        log = []
        sim.schedule(5.0, log.append, "edge")
        sim.run_until(5.0)
        assert log == ["edge"]

    def test_event_storm_guard(self):
        sim = Simulator()

        def rebound():
            sim.schedule(0.001, rebound)

        sim.schedule(0.0, rebound)
        with pytest.raises(SimulationError):
            sim.run_until(100.0, max_events=50)

    def test_exactly_max_events_is_allowed(self):
        # Regression for the off-by-one: a run needing exactly
        # max_events events must complete, not raise.
        sim = Simulator()
        log = []
        for index in range(5):
            sim.schedule(float(index), log.append, index)
        assert sim.run_until(10.0, max_events=5) == 5
        assert log == [0, 1, 2, 3, 4]

    def test_one_past_max_events_raises(self):
        sim = Simulator()
        for index in range(6):
            sim.schedule(float(index), lambda: None)
        with pytest.raises(SimulationError):
            sim.run_until(10.0, max_events=5)

    def test_cancelled_events_do_not_consume_budget(self):
        sim = Simulator()
        log = []
        for _ in range(5):
            sim.schedule(1.0, log.append, "dead").cancel()
        sim.schedule(2.0, log.append, "live")
        assert sim.run_until(10.0, max_events=1) == 1
        assert log == ["live"]

    def test_run_all_exact_budget(self):
        sim = Simulator()
        for _ in range(4):
            sim.schedule(1.0, lambda: None)
        assert sim.run_all(max_events=4) == 4
        sim2 = Simulator()
        for _ in range(5):
            sim2.schedule(1.0, lambda: None)
        with pytest.raises(SimulationError):
            sim2.run_all(max_events=4)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        log = []
        handle = sim.schedule(1.0, log.append, "x")
        handle.cancel()
        sim.run_all()
        assert log == []

    def test_cancel_mid_run(self):
        sim = Simulator()
        log = []
        later = sim.schedule(2.0, log.append, "later")
        sim.schedule(1.0, later.cancel)
        sim.run_all()
        assert log == []

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run_all()
        assert sim.events_processed == 5


class TestEdgeCases:
    def test_schedule_at_in_past_clamps_to_now(self):
        sim = Simulator(start_time=100.0)
        seen = []
        sim.schedule_at(50.0, lambda: seen.append(sim.now))
        sim.run_all()
        assert seen == [100.0]

    def test_pending_counts_cancelled_until_drained(self):
        sim = Simulator()
        handles = [sim.schedule(1.0, lambda: None) for _ in range(3)]
        handles[1].cancel()
        assert sim.pending == 3
        sim.run_all()
        assert sim.pending == 0

    def test_fifo_order_survives_cancellation(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, log.append, "a")
        doomed = sim.schedule(1.0, log.append, "b")
        sim.schedule(1.0, log.append, "c")
        doomed.cancel()
        sim.run_all()
        assert log == ["a", "c"]

    def test_cancelled_events_not_counted_processed(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None).cancel()
        sim.schedule(2.0, lambda: None)
        assert sim.run_until(5.0) == 1
        assert sim.events_processed == 1


class TestScheduleValidation:
    """NaN/infinity rejection (regression tests).

    NaN is the insidious one: it loses every comparison, so a NaN-timed
    heap entry silently breaks the heap invariant and events start
    firing out of order — and ``max(0.0, nan)`` in ``schedule_at``'s
    clamp would convert a poisoned timestamp into an immediate event.
    Both must be loud errors instead.
    """

    @pytest.mark.parametrize(
        "delay", [float("nan"), float("inf"), -1.0, -0.001]
    )
    def test_schedule_rejects_nonfinite_and_negative_delays(self, delay):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(delay, lambda: None)
        assert sim.pending == 0

    @pytest.mark.parametrize("time", [float("nan"), float("inf")])
    def test_schedule_at_rejects_nonfinite_times(self, time):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(time, lambda: None)
        assert sim.pending == 0

    def test_rejected_delay_leaves_trajectory_intact(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        with pytest.raises(SimulationError):
            sim.schedule(float("nan"), fired.append, "poison")
        sim.schedule(2.0, fired.append, "b")
        sim.run_all()
        assert fired == ["a", "b"]
