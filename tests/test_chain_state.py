"""World-state tests: balances, snapshots, forking, the irregular change."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.state import InsufficientBalance, StateDB, StateError
from repro.chain.types import Address, ether


def addr(n: int) -> Address:
    return Address.from_int(n)


class TestBalances:
    def test_untouched_account_is_empty(self):
        state = StateDB()
        assert state.balance_of(addr(1)) == 0
        assert state.nonce_of(addr(1)) == 0
        assert not state.exists(addr(1))

    def test_credit_and_debit(self):
        state = StateDB()
        state.credit(addr(1), 100)
        state.debit(addr(1), 40)
        assert state.balance_of(addr(1)) == 60

    def test_overdraft_raises(self):
        state = StateDB()
        state.credit(addr(1), 10)
        with pytest.raises(InsufficientBalance):
            state.debit(addr(1), 11)

    def test_negative_amounts_rejected(self):
        state = StateDB()
        with pytest.raises(StateError):
            state.credit(addr(1), -1)
        with pytest.raises(StateError):
            state.debit(addr(1), -1)

    def test_transfer_conserves_supply(self):
        state = StateDB()
        state.credit(addr(1), ether(10))
        state.transfer(addr(1), addr(2), ether(3))
        assert state.balance_of(addr(2)) == ether(3)
        assert state.total_supply() == ether(10)

    def test_failed_transfer_changes_nothing(self):
        state = StateDB()
        state.credit(addr(1), 5)
        with pytest.raises(InsufficientBalance):
            state.transfer(addr(1), addr(2), 6)
        assert state.balance_of(addr(1)) == 5
        assert state.balance_of(addr(2)) == 0


class TestIrregularTransfer:
    def test_moves_entire_balance(self):
        state = StateDB()
        state.credit(addr(1), ether(50))
        moved = state.apply_irregular_transfer(addr(1), addr(2))
        assert moved == ether(50)
        assert state.balance_of(addr(1)) == 0
        assert state.balance_of(addr(2)) == ether(50)

    def test_empty_source_is_a_noop(self):
        state = StateDB()
        assert state.apply_irregular_transfer(addr(1), addr(2)) == 0

    def test_requires_no_signature_or_nonce(self):
        """The DAO fork property: the ledger changes with no transaction."""
        state = StateDB()
        state.credit(addr(1), 7)
        nonce_before = state.nonce_of(addr(1))
        state.apply_irregular_transfer(addr(1), addr(2))
        assert state.nonce_of(addr(1)) == nonce_before


class TestNonceCodeStorage:
    def test_increment_nonce(self):
        state = StateDB()
        assert state.increment_nonce(addr(1)) == 1
        assert state.increment_nonce(addr(1)) == 2

    def test_set_code_marks_contract(self):
        state = StateDB()
        state.set_code(addr(1), b"\x60\x00")
        assert state.is_contract(addr(1))
        assert state.code_of(addr(1)) == b"\x60\x00"

    def test_storage_defaults_to_zero(self):
        assert StateDB().storage_at(addr(1), 5) == 0

    def test_storage_set_get(self):
        state = StateDB()
        state.set_storage(addr(1), 5, 42)
        assert state.storage_at(addr(1), 5) == 42

    def test_storage_zero_clears_slot(self):
        state = StateDB()
        state.set_storage(addr(1), 5, 42)
        state.set_storage(addr(1), 5, 0)
        assert state.storage_at(addr(1), 5) == 0

    def test_delete_account_removes_everything(self):
        state = StateDB()
        state.credit(addr(1), 10)
        state.set_storage(addr(1), 1, 2)
        state.delete_account(addr(1))
        assert not state.exists(addr(1))
        assert state.storage_at(addr(1), 1) == 0


class TestSnapshots:
    def test_revert_undoes_mutations(self):
        state = StateDB()
        state.credit(addr(1), 100)
        snapshot = state.snapshot()
        state.transfer(addr(1), addr(2), 60)
        state.set_storage(addr(3), 0, 9)
        state.revert(snapshot)
        assert state.balance_of(addr(1)) == 100
        assert state.balance_of(addr(2)) == 0
        assert state.storage_at(addr(3), 0) == 0

    def test_nested_snapshots(self):
        state = StateDB()
        state.credit(addr(1), 100)
        outer = state.snapshot()
        state.debit(addr(1), 10)
        inner = state.snapshot()
        state.debit(addr(1), 20)
        state.revert(inner)
        assert state.balance_of(addr(1)) == 90
        state.revert(outer)
        assert state.balance_of(addr(1)) == 100

    def test_discard_keeps_changes(self):
        state = StateDB()
        snapshot = state.snapshot()
        state.credit(addr(1), 5)
        state.discard_snapshot(snapshot)
        assert state.balance_of(addr(1)) == 5

    def test_revert_after_inner_discard(self):
        state = StateDB()
        state.credit(addr(1), 100)
        outer = state.snapshot()
        inner = state.snapshot()
        state.debit(addr(1), 50)
        state.discard_snapshot(inner)
        state.revert(outer)
        assert state.balance_of(addr(1)) == 100

    def test_revert_restores_deleted_account(self):
        state = StateDB()
        state.credit(addr(1), 10)
        state.set_storage(addr(1), 1, 2)
        snapshot = state.snapshot()
        state.delete_account(addr(1))
        state.revert(snapshot)
        assert state.balance_of(addr(1)) == 10
        assert state.storage_at(addr(1), 1) == 2

    def test_unknown_snapshot_raises(self):
        with pytest.raises(StateError):
            StateDB().revert(0)


class TestStateRootAndFork:
    def test_root_changes_with_balance(self):
        state = StateDB()
        before = state.state_root
        state.credit(addr(1), 1)
        assert state.state_root != before

    def test_equal_states_equal_roots(self):
        a, b = StateDB(), StateDB()
        a.credit(addr(1), 5)
        b.credit(addr(1), 5)
        assert a.state_root == b.state_root

    def test_storage_affects_root(self):
        a, b = StateDB(), StateDB()
        a.credit(addr(1), 5)
        b.credit(addr(1), 5)
        b.set_storage(addr(1), 0, 1)
        assert a.state_root != b.state_root

    def test_fork_is_isolated(self):
        """The chain-split property: each side evolves independently."""
        state = StateDB()
        state.credit(addr(1), ether(10))
        fork = state.fork()
        fork.apply_irregular_transfer(addr(1), addr(2))
        assert state.balance_of(addr(1)) == ether(10)
        assert fork.balance_of(addr(1)) == 0
        assert state.state_root != fork.state_root

    def test_fork_shares_history_roots(self):
        state = StateDB()
        state.credit(addr(1), 5)
        assert state.fork().state_root == state.state_root

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=5),
                st.integers(min_value=1, max_value=100),
            ),
            max_size=15,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_supply_conservation_under_transfers(self, moves):
        state = StateDB()
        for account in range(1, 6):
            state.credit(addr(account), 100)
        initial = state.total_supply()
        for target, amount in moves:
            source = addr((target % 5) + 1)
            try:
                state.transfer(source, addr(target), amount)
            except InsufficientBalance:
                pass
        assert state.total_supply() == initial
