"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import _build_parser, cmd_fork_lengths, main


class TestParser:
    def test_observations_defaults(self):
        args = _build_parser().parse_args(["observations"])
        assert args.command == "observations"
        assert args.days == 270  # the paper's full window

    def test_figure_requires_valid_number(self):
        parser = _build_parser()
        args = parser.parse_args(["figure", "3", "--days", "20"])
        assert args.number == 3
        with pytest.raises(SystemExit):
            parser.parse_args(["figure", "9"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            _build_parser().parse_args([])


class TestCommands:
    def test_fork_lengths_prints_table(self, capsys):
        assert main(["fork-lengths"]) == 0
        out = capsys.readouterr().out
        assert "ETH/EIP-150" in out
        assert "3583" in out

    def test_figure_command_small_run(self, capsys):
        assert main(["figure", "1", "--days", "6", "--sample-days", "2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "2016-07" in out

    def test_figure_csv_output(self, tmp_path, capsys):
        csv_path = tmp_path / "fig.csv"
        assert main(
            ["figure", "2", "--days", "6", "--csv", str(csv_path)]
        ) == 0
        assert csv_path.exists()
        header = csv_path.read_text().splitlines()[0]
        assert "ETH difficulty" in header
