"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import _build_parser, cmd_fork_lengths, main


class TestParser:
    def test_observations_defaults(self):
        args = _build_parser().parse_args(["observations"])
        assert args.command == "observations"
        assert args.days == 270  # the paper's full window

    def test_figure_requires_valid_number(self):
        parser = _build_parser()
        args = parser.parse_args(["figure", "3", "--days", "20"])
        assert args.number == 3
        with pytest.raises(SystemExit):
            parser.parse_args(["figure", "9"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            _build_parser().parse_args([])

    def test_run_all_defaults(self):
        args = _build_parser().parse_args(["run-all"])
        assert args.command == "run-all"
        assert args.jobs == 1
        assert args.cache_dir == ".repro-cache"
        assert args.no_cache is False
        assert args.manifest is None

    def test_run_all_flags_parse(self):
        args = _build_parser().parse_args(
            ["run-all", "--days", "5", "--jobs", "2", "--no-cache",
             "--manifest", "m.json", "--timeout", "30", "--retries", "2"]
        )
        assert args.days == 5
        assert args.jobs == 2
        assert args.no_cache is True
        assert args.manifest == "m.json"
        assert args.timeout == 30.0
        assert args.retries == 2

    def test_fault_sweep_flags_parse(self):
        args = _build_parser().parse_args(
            ["fault-sweep", "--nodes", "10", "--churn", "0", "0.01",
             "--loss", "0.2", "--split", "0", "300", "--no-resilience",
             "--jobs", "2"]
        )
        assert args.command == "fault-sweep"
        assert args.nodes == 10
        assert args.churn == [0.0, 0.01]
        assert args.loss == [0.2]
        assert args.split == [0.0, 300.0]
        assert args.no_resilience is True

    def test_topology_sweep_flags_parse(self):
        args = _build_parser().parse_args(
            ["topology-sweep", "--nodes", "12", "--degree", "4",
             "--topologies", "uniform", "geo", "--gamma", "2.4",
             "--intra-bias", "0.8", "--no-infer", "--jobs", "2"]
        )
        assert args.command == "topology-sweep"
        assert args.nodes == 12
        assert args.degree == 4
        assert args.topologies == ["uniform", "geo"]
        assert args.gamma == 2.4
        assert args.intra_bias == 0.8
        assert args.no_infer is True

    def test_topology_sweep_rejects_unknown_family(self):
        with pytest.raises(SystemExit):
            _build_parser().parse_args(
                ["topology-sweep", "--topologies", "torus"]
            )

    def test_topology_sweep_validation(self, capsys):
        assert main(["topology-sweep", "--jobs", "0"]) == 2
        assert main(["topology-sweep", "--infer-probes", "0"]) == 2
        assert main(["topology-sweep", "--retries", "-1"]) == 2
        assert main(["topology-sweep", "--chunk-size", "0"]) == 2
        # Spec-level validation surfaces as a usage error, not a crash.
        assert main(["topology-sweep", "--gamma", "0.5"]) == 2
        capsys.readouterr()

    def test_chunked_flags_parse(self):
        args = _build_parser().parse_args(
            ["fault-sweep", "--chunk-size", "2", "--resume",
             "--max-quarantined", "1", "--ledger-dir", "led",
             "--lease-seconds", "30", "--retry-backoff", "0.5",
             "--max-events", "1000"]
        )
        assert args.chunk_size == 2
        assert args.resume is True
        assert args.max_quarantined == 1
        assert args.ledger_dir == "led"
        assert args.lease_seconds == 30.0
        assert args.retry_backoff == 0.5
        assert args.max_events == 1000

    def test_chunked_defaults_keep_classic_path(self):
        for command in ("run-all", "fault-sweep"):
            args = _build_parser().parse_args([command])
            assert args.chunk_size is None
            assert args.resume is False
            assert args.max_quarantined is None
            assert args.retry_backoff == 0.0

    def test_chunked_validation(self, capsys):
        assert main(["fault-sweep", "--chunk-size", "0"]) == 2
        assert main(["fault-sweep", "--resume"]) == 2
        assert main(["run-all", "--retry-backoff", "-1"]) == 2
        assert main(["run-all", "--chunk-size", "2",
                     "--max-quarantined", "-1"]) == 2
        assert main(["fault-sweep", "--max-events", "0"]) == 2
        capsys.readouterr()

    def test_trace_defaults(self):
        args = _build_parser().parse_args(["trace"])
        assert args.command == "trace"
        assert args.scenario == "partition"
        assert args.out is None
        assert args.stats is False
        assert args.ring == 4096

    def test_trace_flags_parse(self):
        args = _build_parser().parse_args(
            ["trace", "--scenario", "chaos-partition", "--nodes", "8",
             "--horizon", "300", "--out", "t.jsonl", "--stats",
             "--ring", "128"]
        )
        assert args.scenario == "chaos-partition"
        assert args.out == "t.jsonl"
        assert args.stats is True
        assert args.ring == 128
        with pytest.raises(SystemExit):
            _build_parser().parse_args(["trace", "--scenario", "bogus"])

    def test_bench_defaults(self):
        args = _build_parser().parse_args(["bench"])
        assert args.command == "bench"
        assert args.smoke is False
        assert args.repeats is None
        assert args.only is None
        assert args.out_dir == "."
        assert args.report_dir == "benchmarks/output"

    def test_bench_flags_parse(self):
        args = _build_parser().parse_args(
            ["bench", "--smoke", "--repeats", "2", "--only", "forksim",
             "--out-dir", "out", "--report-dir", ""]
        )
        assert args.smoke is True
        assert args.repeats == 2
        assert args.only == ["forksim"]
        assert args.out_dir == "out"
        assert args.report_dir == ""
        with pytest.raises(SystemExit):
            _build_parser().parse_args(["bench", "--only", "bogus"])


class TestCommands:
    def test_fork_lengths_prints_table(self, capsys):
        assert main(["fork-lengths"]) == 0
        out = capsys.readouterr().out
        assert "ETH/EIP-150" in out
        assert "3583" in out

    def test_bench_smoke_run(self, tmp_path, capsys):
        assert main(
            ["bench", "--smoke", "--only", "forksim",
             "--out-dir", str(tmp_path), "--report-dir", ""]
        ) == 0
        out = capsys.readouterr().out
        assert "BENCH_forksim.json" in out
        assert (tmp_path / "BENCH_forksim.json").exists()

    def test_bench_bad_repeats_rejected(self, capsys):
        assert main(["bench", "--repeats", "0"]) == 2
        assert "--repeats" in capsys.readouterr().err

    def test_figure_command_small_run(self, capsys):
        assert main(["figure", "1", "--days", "6", "--sample-days", "2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "2016-07" in out

    def test_figure_csv_output(self, tmp_path, capsys):
        csv_path = tmp_path / "fig.csv"
        assert main(
            ["figure", "2", "--days", "6", "--csv", str(csv_path)]
        ) == 0
        assert csv_path.exists()
        header = csv_path.read_text().splitlines()[0]
        assert "ETH difficulty" in header

    def test_figure_csv_creates_missing_parent_dirs(self, tmp_path, capsys):
        csv_path = tmp_path / "deep" / "nested" / "fig.csv"
        assert main(
            ["figure", "2", "--days", "6", "--csv", str(csv_path)]
        ) == 0
        assert csv_path.exists()

    def test_figure_csv_unwritable_path_fails_cleanly(self, tmp_path, capsys):
        # The parent "directory" is a regular file: mkdir/open must fail,
        # and the CLI should report it without a traceback.
        blocker = tmp_path / "blocker"
        blocker.write_text("i am a file")
        csv_path = blocker / "fig.csv"
        assert main(
            ["figure", "2", "--days", "6", "--csv", str(csv_path)]
        ) == 1
        err = capsys.readouterr().err
        assert "error: cannot write CSV" in err
        assert "Traceback" not in err

    def test_fault_sweep_small(self, tmp_path, capsys):
        code = main(
            ["fault-sweep", "--nodes", "8", "--miners", "2",
             "--horizon", "300", "--churn", "0", "--loss", "0",
             "--split", "0", "120", "--jobs", "1",
             "--cache-dir", str(tmp_path / "cache"),
             "--output-dir", str(tmp_path / "out")]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert (tmp_path / "out" / "robustness.txt").exists()
        assert (tmp_path / "out" / "robustness.json").exists()
        assert (tmp_path / "out" / "fault-sweep-manifest.json").exists()
        assert "jobs ok" in captured.out

    def test_topology_sweep_small(self, tmp_path, capsys):
        base = ["topology-sweep", "--nodes", "8", "--miners", "2",
                "--horizon", "300", "--degree", "3",
                "--topologies", "uniform", "geo",
                "--infer-probes", "2", "--jobs", "1"]
        code = main(
            base + ["--cache-dir", str(tmp_path / "cache"),
                    "--output-dir", str(tmp_path / "out")]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert (tmp_path / "out" / "topology.txt").exists()
        assert (tmp_path / "out" / "topology.json").exists()
        assert (tmp_path / "out" / "topology-sweep-manifest.json").exists()
        assert "jobs ok" in captured.out

        # The CI reproducibility gate: a cold --no-cache rerun must land
        # on the byte-identical sweep digest.
        code = main(
            base + ["--no-cache",
                    "--output-dir", str(tmp_path / "out2")]
        )
        capsys.readouterr()
        assert code == 0
        import json

        first = json.loads((tmp_path / "out" / "topology.json").read_text())
        second = json.loads(
            (tmp_path / "out2" / "topology.json").read_text()
        )
        assert second["sweep_digest"] == first["sweep_digest"]

    def test_trace_small(self, tmp_path, capsys):
        out_path = tmp_path / "trace.jsonl"
        code = main(
            ["trace", "--nodes", "6", "--miners", "2",
             "--horizon", "120", "--out", str(out_path), "--stats"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "trace events" in captured.out
        assert "events by kind" in captured.out
        lines = out_path.read_text().splitlines()
        assert lines
        import json

        first = json.loads(lines[0])
        assert "t" in first and "kind" in first

    def test_trace_unwritable_out_fails_cleanly(self, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("i am a file")
        code = main(
            ["trace", "--nodes", "6", "--miners", "2",
             "--horizon", "120", "--out", str(blocker / "t.jsonl")]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "Traceback" not in err

    def test_fault_sweep_chunked_small(self, tmp_path, capsys):
        base = ["fault-sweep", "--nodes", "8", "--miners", "2",
                "--horizon", "300", "--churn", "0", "--loss", "0",
                "--split", "0", "--jobs", "1",
                "--cache-dir", str(tmp_path / "cache"),
                "--output-dir", str(tmp_path / "out"),
                "--chunk-size", "1"]
        code = main(base)
        captured = capsys.readouterr()
        assert code == 0
        assert "sweep complete (exit 0)" in captured.err
        assert (tmp_path / "out" / "robustness.json").exists()
        assert (tmp_path / "out" / "sweep-ledger" / "ledger.db").exists()
        # Re-attaching the same finished sweep needs --resume...
        assert main(base) == 2
        err = capsys.readouterr().err
        assert "--resume" in err
        # ...and with it, stitches from the ledger without recomputing.
        assert main(base + ["--resume"]) == 0
        capsys.readouterr()

    def test_fault_sweep_poisoned_exits_degraded(self, tmp_path, capsys):
        code = main(
            ["fault-sweep", "--nodes", "8", "--miners", "2",
             "--horizon", "300", "--churn", "0", "--loss", "0",
             "--split", "0", "--jobs", "1", "--no-cache",
             "--output-dir", str(tmp_path / "out"),
             "--chunk-size", "1", "--max-events", "10"]
        )
        captured = capsys.readouterr()
        assert code == 4
        assert "sweep degraded (exit 4)" in captured.err
        assert "quarantined" in captured.err

    def test_run_all_small(self, tmp_path, capsys):
        code = main(
            ["run-all", "--days", "2", "--jobs", "1",
             "--cache-dir", str(tmp_path / "cache"),
             "--output-dir", str(tmp_path / "out"),
             "--manifest", str(tmp_path / "out" / "manifest.json")]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert (tmp_path / "out" / "figure5.txt").exists()
        assert (tmp_path / "out" / "observations.txt").exists()
        assert (tmp_path / "out" / "manifest.json").exists()
        assert "jobs ok" in captured.out


class TestServeParser:
    def test_serve_defaults(self):
        args = _build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 8734
        assert args.cache_dir == ".repro-cache"
        assert args.db == ".repro-serve.db"
        assert args.allow_kind is None

    def test_serve_flags_parse(self):
        args = _build_parser().parse_args(
            ["serve", "--port", "0", "--workers", "2", "--no-cache",
             "--db", "none", "--max-inflight", "4",
             "--tenant-max-inflight", "1", "--tenant-max-queued", "2",
             "--cache-max-bytes", "1000000", "--drain-timeout", "5",
             "--allow-kind", "selftest-echo"]
        )
        assert args.port == 0
        assert args.workers == 2
        assert args.no_cache is True
        assert args.db == "none"
        assert args.max_inflight == 4
        assert args.tenant_max_inflight == 1
        assert args.tenant_max_queued == 2
        assert args.cache_max_bytes == 1_000_000
        assert args.drain_timeout == 5.0
        assert args.allow_kind == ["selftest-echo"]

    def test_run_all_cache_max_bytes(self):
        args = _build_parser().parse_args(
            ["run-all", "--cache-max-bytes", "4096"]
        )
        assert args.cache_max_bytes == 4096
        assert _build_parser().parse_args(["run-all"]).cache_max_bytes is None

    def test_serve_retry_backoff(self, capsys):
        args = _build_parser().parse_args(["serve", "--retry-backoff", "1.5"])
        assert args.retry_backoff == 1.5
        assert _build_parser().parse_args(["serve"]).retry_backoff == 0.0
        assert main(["serve", "--retry-backoff", "-1"]) == 2

    def test_serve_rejects_bad_port(self, capsys):
        assert main(["serve", "--port", "-1"]) == 2

    def test_serve_rejects_bad_cache_budget(self, capsys):
        assert main(["serve", "--cache-max-bytes", "-5"]) == 2
