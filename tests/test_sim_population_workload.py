"""Pool landscapes and transaction workloads (Figure 2/5 inputs)."""

import random

import pytest

from repro.sim.population import (
    PoolLandscape,
    PoolSpec,
    etc_pool_landscape,
    eth_pool_landscape,
    prefork_pool_landscape,
)
from repro.sim.workload import (
    AnchoredRate,
    RateAnchor,
    etc_workload,
    eth_workload,
)


def top_n_weight(weights, n):
    return sum(sorted(weights.values(), reverse=True)[:n])


class TestPoolLandscape:
    def test_weights_sum_to_pooled_mass(self):
        landscape = eth_pool_landscape()
        weights = landscape.weights_on_day(10)
        assert sum(weights.values()) == pytest.approx(
            1 - landscape.solo_fraction
        )

    def test_deterministic_per_day(self):
        landscape = eth_pool_landscape()
        assert landscape.weights_on_day(5) == landscape.weights_on_day(5)

    def test_eth_concentration_is_stable(self):
        landscape = eth_pool_landscape()
        early = top_n_weight(landscape.weights_on_day(1), 5)
        late = top_n_weight(landscape.weights_on_day(250), 5)
        assert abs(early - late) < 0.12

    def test_eth_matches_prefork_identities(self):
        """The paper verified the top pre-fork pool addresses persist on
        ETH; our landscapes share identities by construction."""
        pre = set(prefork_pool_landscape().weights_on_day(0))
        post = set(eth_pool_landscape().weights_on_day(10))
        top_pre = sorted(pre)[:5]
        assert set(top_pre) <= (pre & post | post)

    def test_etc_starts_fragmented_and_coalesces(self):
        landscape = etc_pool_landscape()
        early = top_n_weight(landscape.weights_on_day(2), 5)
        late = top_n_weight(landscape.weights_on_day(260), 5)
        assert early < 0.55
        assert late > 0.65
        assert late > early + 0.15

    def test_small_pool_turnover_changes_labels(self):
        landscape = etc_pool_landscape()
        early_labels = set(landscape.weights_on_day(5))
        late_labels = set(landscape.weights_on_day(250))
        assert early_labels != late_labels  # tail pools rotated identity

    def test_sampler_distribution_tracks_weights(self):
        landscape = eth_pool_landscape()
        sampler = landscape.make_sampler(10)
        rng = random.Random(3)
        draws = [sampler(rng) for _ in range(6000)]
        weights = landscape.weights_on_day(10)
        top_label = max(weights, key=weights.get)
        frequency = draws.count(top_label) / len(draws)
        assert frequency == pytest.approx(weights[top_label], abs=0.04)
        solo_frequency = sum(1 for d in draws if d.startswith("solo-")) / len(draws)
        assert solo_frequency == pytest.approx(landscape.solo_fraction, abs=0.04)

    def test_solo_identities_are_numerous(self):
        landscape = eth_pool_landscape()
        sampler = landscape.make_sampler(0)
        rng = random.Random(4)
        solos = {d for d in (sampler(rng) for _ in range(3000))
                 if d.startswith("solo-")}
        assert len(solos) > 100  # no solo identity can look like a pool

    def test_mismatched_start_target_rejected(self):
        with pytest.raises(ValueError):
            PoolLandscape(
                start=[PoolSpec("a", 1.0)],
                target=[PoolSpec("b", 1.0)],
            )


class TestAnchoredRate:
    def test_interpolation(self):
        rate = AnchoredRate([RateAnchor(0, 0.0), RateAnchor(10, 100.0)])
        assert rate.at(5) == pytest.approx(50.0)

    def test_clamps(self):
        rate = AnchoredRate([RateAnchor(5, 1.0), RateAnchor(6, 2.0)])
        assert rate.at(0) == 1.0
        assert rate.at(100) == 2.0


class TestWorkloads:
    def test_eth_daily_counts_near_trajectory(self):
        workload = eth_workload()
        rng = random.Random(5)
        day0 = [workload.daily_count(0, rng) for _ in range(30)]
        mean = sum(day0) / len(day0)
        assert mean == pytest.approx(42_000, rel=0.15)

    def test_eth_late_march_surge(self):
        workload = eth_workload()
        assert workload.rate.at(265) > 2 * workload.rate.at(100)

    def test_ratio_eth_to_etc(self):
        """The 2.5:1 → 5:1 usage ratio (Figure 2 middle)."""
        eth, etc = eth_workload(), etc_workload()
        mid_ratio = eth.rate.at(100) / etc.rate.at(100)
        late_ratio = eth.rate.at(268) / etc.rate.at(268)
        assert 2.0 < mid_ratio < 3.2
        assert 4.0 < late_ratio < 6.5

    def test_contract_fractions_similar_until_late(self):
        """Figure 2 bottom: similar fractions for months, diverging at
        the end of the window."""
        eth, etc = eth_workload(), etc_workload()
        assert abs(eth.contract_fraction(60) - etc.contract_fraction(60)) < 0.06
        assert eth.contract_fraction(268) - etc.contract_fraction(268) > 0.2

    def test_per_block_sampler_splits_day_total(self):
        workload = eth_workload()
        sampler = workload.per_block_sampler(day=0, daily_total=86_400)
        rng = random.Random(6)
        # 1 tx/second: a 14 s block carries ~14.
        counts = [sampler(rng, 14.0) for _ in range(200)]
        mean_txs = sum(c for c, _ in counts) / len(counts)
        assert mean_txs == pytest.approx(14.0, rel=0.2)
        # Contract share matches the model fraction.
        total = sum(c for c, _ in counts)
        contracts = sum(k for _, k in counts)
        assert contracts / total == pytest.approx(
            workload.contract_fraction(0), abs=0.08
        )

    def test_sampler_zero_gap(self):
        workload = eth_workload()
        sampler = workload.per_block_sampler(0, 1000)
        assert sampler(random.Random(1), 0.0) == (0, 0)

    def test_zero_rate_day(self):
        workload = eth_workload()
        rng = random.Random(1)
        sampler = workload.per_block_sampler(0, 0)
        assert sampler(rng, 100.0) == (0, 0)
