"""The topology-sweep job family: grid, artifacts, caching, chunked parity."""

import json

import pytest

from repro.harness import (
    EXIT_OK,
    NullProgress,
    TopologySweepConfig,
    build_topology_grid,
    run_topology_sweep,
    run_topology_sweep_chunked,
    topology_infer_spec,
    topology_partition_spec,
)
from repro.scenarios.partition_event import TopologyPartitionConfig
from repro.scenarios.topology_inference import TopologyInferenceConfig

TINY = TopologySweepConfig(
    num_nodes=10,
    num_miners=3,
    fork_block=10,
    post_fork_horizon=600.0,
    census_interval=120.0,
    target_degree=4,
    topologies=("uniform", "geo"),
    infer_probes=2,
)


class TestGrid:
    def test_partition_and_infer_cell_per_family(self):
        grid = build_topology_grid(TINY)
        assert [cell for cell, _ in grid] == [
            ("uniform", "partition"),
            ("uniform", "infer"),
            ("geo", "partition"),
            ("geo", "infer"),
        ]
        assert len({spec.cache_key() for _, spec in grid}) == 4

    def test_inference_cells_are_optional(self):
        import dataclasses

        config = dataclasses.replace(TINY, include_inference=False)
        grid = build_topology_grid(config)
        assert [cell for cell, _ in grid] == [
            ("uniform", "partition"),
            ("geo", "partition"),
        ]

    def test_rejects_unknown_family(self):
        with pytest.raises(ValueError, match="unknown topology families"):
            TopologySweepConfig(topologies=("uniform", "torus"))

    def test_geo_family_gets_strict_geo_latency(self):
        assert TINY.cell_config("geo").latency == "geo"
        assert TINY.cell_config("uniform").latency == "lognormal"

    def test_job_specs_round_trip_their_configs(self):
        partition = topology_partition_spec(TINY.cell_config("uniform"))
        assert partition.kind == "topology-partition"
        rebuilt = TopologyPartitionConfig(**partition.params["config"])
        assert rebuilt == TINY.cell_config("uniform")
        infer = topology_infer_spec(TINY.infer_config("uniform"))
        assert infer.kind == "topology-infer"
        rebuilt_infer = TopologyInferenceConfig(**infer.params["config"])
        assert rebuilt_infer == TINY.infer_config("uniform")


class TestRunTopologySweep:
    @pytest.fixture()
    def outcome(self, tmp_path):
        manifest = run_topology_sweep(
            TINY,
            jobs=1,
            cache_dir=tmp_path / "cache",
            output_dir=tmp_path / "out",
            progress=NullProgress(),
        )
        return manifest, tmp_path

    def test_all_cells_succeed_and_artifacts_land(self, outcome):
        manifest, tmp_path = outcome
        assert not manifest.failures
        out = tmp_path / "out"
        assert (out / "topology.txt").exists()
        assert (out / "topology.csv").exists()
        payload = json.loads((out / "topology.json").read_text())
        assert len(payload["cells"]) == 4
        assert payload["sweep_digest"]
        assert payload["conclusion"]["reported_families"] == 2
        assert (out / "topology-sweep-manifest.json").exists()
        lines = (out / "topology.txt").read_text().strip().splitlines()
        assert lines[0].startswith("stabilization conclusion holds on")
        assert len(lines) == 3  # header + one row per family
        assert "infer P=" in lines[1]

    def test_warm_cache_reproduces_sweep_digest(self, outcome):
        manifest, tmp_path = outcome
        first = json.loads((tmp_path / "out" / "topology.json").read_text())
        second_manifest = run_topology_sweep(
            TINY,
            jobs=1,
            cache_dir=tmp_path / "cache",
            output_dir=tmp_path / "out2",
            progress=NullProgress(),
        )
        assert not second_manifest.failures
        assert all(record.cache_hit for record in second_manifest.jobs)
        second = json.loads(
            (tmp_path / "out2" / "topology.json").read_text()
        )
        assert second["sweep_digest"] == first["sweep_digest"]

    def test_cold_recompute_reproduces_sweep_digest(self, outcome):
        # No cache at all: every cell recomputed from scratch must land
        # on the same digest — the determinism claim the CI smoke job
        # pins, not just pickle stability.
        manifest, tmp_path = outcome
        first = json.loads((tmp_path / "out" / "topology.json").read_text())
        run_topology_sweep(
            TINY,
            jobs=1,
            cache_dir=None,
            output_dir=tmp_path / "out3",
            progress=NullProgress(),
        )
        third = json.loads(
            (tmp_path / "out3" / "topology.json").read_text()
        )
        assert third["sweep_digest"] == first["sweep_digest"]


class TestChunkedTopologySweep:
    def test_chunked_combine_matches_single_shot_byte_for_byte(
        self, tmp_path
    ):
        single = run_topology_sweep(
            TINY,
            jobs=1,
            cache_dir=tmp_path / "cache-a",
            output_dir=tmp_path / "single",
            progress=NullProgress(),
        )
        assert not single.failures
        single_payload = json.loads(
            (tmp_path / "single" / "topology.json").read_text()
        )

        result = run_topology_sweep_chunked(
            TINY,
            jobs=1,
            cache_dir=tmp_path / "cache-b",
            output_dir=tmp_path / "chunked",
            ledger_dir=tmp_path / "ledger",
            chunk_size=2,
            progress=NullProgress(),
        )
        assert result.state == "complete"
        assert result.exit_code == EXIT_OK
        chunked_payload = json.loads(
            (tmp_path / "chunked" / "topology.json").read_text()
        )
        assert (
            chunked_payload["sweep_digest"]
            == single_payload["sweep_digest"]
        )
        assert chunked_payload["cells"] == single_payload["cells"]
        assert not chunked_payload["degraded"]
        assert chunked_payload["quarantined"] == []
