"""SQLite store: persistence plus method-for-method equivalence with the
in-memory database."""

import random

import pytest

from repro.data.records import BlockRecord, TxRecord
from repro.data.sqlstore import SqliteChainDatabase
from repro.data.store import ChainDatabase
from repro.data.windows import DAY, HOUR


def make_blocks(chain, count, seed=1):
    rng = random.Random(seed)
    records = []
    ts = 1_000_000
    for number in range(1, count + 1):
        ts += rng.randrange(5, 30)
        records.append(
            BlockRecord(
                chain=chain, number=number, timestamp=ts,
                difficulty=10**12 + rng.randrange(10**10),
                miner=rng.choice(["p1", "p2", "p3", "solo-001"]),
                tx_count=rng.randrange(10), contract_tx_count=rng.randrange(4),
                gas_used=rng.randrange(10**6),
            )
        )
    return records


def make_txs(chain, count, seed=2):
    rng = random.Random(seed)
    records = []
    for index in range(count):
        records.append(
            TxRecord(
                chain=chain,
                tx_hash=rng.randbytes(8),
                block_number=index,
                timestamp=1_000_000 + rng.randrange(3 * DAY),
                sender=rng.randbytes(20),
                to=rng.randbytes(20) if rng.random() > 0.1 else None,
                value=rng.randrange(10**21),  # beyond int64 on purpose
                is_contract=rng.random() < 0.3,
                replay_protected=rng.random() < 0.2,
            )
        )
    return records


@pytest.fixture
def populated():
    blocks = make_blocks("ETH", 120) + make_blocks("ETC", 60, seed=3)
    txs = make_txs("ETH", 150) + make_txs("ETC", 70, seed=4)
    memory = ChainDatabase()
    memory.insert_blocks(blocks)
    memory.insert_transactions(txs)
    sqlite_db = SqliteChainDatabase(":memory:")
    sqlite_db.insert_blocks(blocks)
    sqlite_db.insert_transactions(txs)
    return memory, sqlite_db


class TestEquivalence:
    def test_chains(self, populated):
        memory, sql = populated
        assert sql.chains() == memory.chains()

    def test_block_counts_and_rows(self, populated):
        memory, sql = populated
        for chain in ("ETH", "ETC"):
            assert sql.block_count(chain) == memory.block_count(chain)
            assert sql.blocks(chain) == memory.blocks(chain)

    def test_blocks_per_hour(self, populated):
        memory, sql = populated
        assert sql.blocks_per_hour("ETH") == memory.blocks_per_hour("ETH")

    def test_difficulty_and_deltas(self, populated):
        memory, sql = populated
        assert sql.difficulty_series("ETC") == memory.difficulty_series("ETC")
        assert sql.block_deltas("ETC") == memory.block_deltas("ETC")

    def test_miner_series(self, populated):
        memory, sql = populated
        assert sql.miner_label_series("ETH") == memory.miner_label_series("ETH")

    def test_tx_counts_and_daily(self, populated):
        memory, sql = populated
        for chain in ("ETH", "ETC"):
            assert sql.tx_count(chain) == memory.tx_count(chain)
            assert sql.transactions_per_day(chain) == memory.transactions_per_day(chain)

    def test_contract_fraction(self, populated):
        memory, sql = populated
        mine = memory.contract_fraction_per_day("ETH")
        theirs = sql.contract_fraction_per_day("ETH")
        assert set(mine) == set(theirs)
        for day in mine:
            assert theirs[day] == pytest.approx(mine[day])

    def test_sightings_stream_order(self, populated):
        memory, sql = populated
        mine = [(r.timestamp, r.chain) for r in memory.iter_tx_sightings()]
        theirs = [(r.timestamp, r.chain) for r in sql.iter_tx_sightings()]
        assert theirs == mine

    def test_blocks_between(self, populated):
        memory, sql = populated
        assert sql.blocks_between("ETH", 1_000_100, 1_001_000) == (
            memory.blocks_between("ETH", 1_000_100, 1_001_000)
        )


class TestPersistence:
    def test_data_survives_reopen(self, tmp_path):
        path = tmp_path / "study.db"
        blocks = make_blocks("ETH", 10)
        with SqliteChainDatabase(path) as db:
            db.insert_blocks(blocks)
        with SqliteChainDatabase(path) as db:
            assert db.block_count("ETH") == 10
            assert db.blocks("ETH") == blocks

    def test_wei_values_beyond_int64_round_trip(self, tmp_path):
        huge = 10**30
        record = TxRecord(
            chain="ETH", tx_hash=b"\x01" * 8, block_number=1, timestamp=1,
            sender=b"\xaa" * 20, to=None, value=huge,
            is_contract=False, replay_protected=False,
        )
        with SqliteChainDatabase(tmp_path / "w.db") as db:
            db.insert_transactions([record])
            assert db.lookup_tx("ETH", b"\x01" * 8).value == huge

    def test_block_upsert_by_primary_key(self, tmp_path):
        with SqliteChainDatabase(tmp_path / "u.db") as db:
            first = make_blocks("ETH", 1)
            db.insert_blocks(first)
            replacement = [
                BlockRecord(
                    chain="ETH", number=1, timestamp=first[0].timestamp,
                    difficulty=999, miner="new", tx_count=0,
                    contract_tx_count=0, gas_used=0,
                )
            ]
            db.insert_blocks(replacement)
            assert db.block_count("ETH") == 1
            assert db.blocks("ETH")[0].miner == "new"

    def test_echo_detection_from_sqlite(self, tmp_path):
        """The detector runs off the SQL store's stream unchanged."""
        from repro.core.echoes import EchoDetector

        echoed = TxRecord(
            chain="ETH", tx_hash=b"\x07" * 8, block_number=1,
            timestamp=1_000, sender=b"\xaa" * 20, to=b"\xbb" * 20,
            value=1, is_contract=False, replay_protected=False,
        )
        echo = TxRecord(
            chain="ETC", tx_hash=b"\x07" * 8, block_number=1,
            timestamp=5_000, sender=b"\xaa" * 20, to=b"\xbb" * 20,
            value=1, is_contract=False, replay_protected=False,
        )
        with SqliteChainDatabase(tmp_path / "e.db") as db:
            db.insert_transactions([echoed, echo])
            detector = EchoDetector()
            detector.observe_records(db.iter_tx_sightings())
        assert len(detector.echoes) == 1
        assert detector.echoes[0].echo_chain == "ETC"

class TestConcurrencyPragmas:
    def test_file_backed_store_uses_wal(self, tmp_path):
        db = SqliteChainDatabase(tmp_path / "chain.db")
        assert db.journal_mode == "wal"

    def test_memory_store_reports_memory_journal(self):
        db = SqliteChainDatabase(":memory:")
        assert db.journal_mode == "memory"

    def test_busy_timeout_configured(self, tmp_path):
        db = SqliteChainDatabase(tmp_path / "chain.db")
        (timeout_ms,) = db._conn.execute("PRAGMA busy_timeout").fetchone()
        assert timeout_ms == SqliteChainDatabase.BUSY_TIMEOUT_MS

    def test_reader_coexists_with_writer(self, tmp_path):
        """WAL allows a reader to see committed rows mid-write-session."""
        path = tmp_path / "chain.db"
        writer = SqliteChainDatabase(path)
        writer.insert_blocks(make_blocks("ETH", 10))
        reader = SqliteChainDatabase(path)
        assert reader.block_count("ETH") == 10
        writer.insert_blocks(make_blocks("ETC", 5, seed=9))
        assert reader.block_count("ETC") == 5
