"""Run-manifest schema: round-trips, totals, file IO."""

import json

import pytest

from repro.harness import (
    MANIFEST_SCHEMA_VERSION,
    JobRecord,
    RunManifest,
)


def sample_manifest():
    manifest = RunManifest(
        command="run-all --days 5 --jobs 2",
        workers=2,
        cache_dir="/tmp/cache",
        started_at=1_700_000_000.0,
    )
    manifest.add(
        JobRecord(
            label="simulate[5d]",
            kind="simulate",
            key="ab" * 32,
            status="ok",
            cache_hit=False,
            wall_time=1.5,
            attempts=1,
        )
    )
    manifest.add(
        JobRecord(
            label="figure-3",
            kind="figure",
            key="cd" * 32,
            status="ok",
            cache_hit=True,
            wall_time=0.05,
            attempts=1,
        )
    )
    manifest.add(
        JobRecord(
            label="observations",
            kind="observations",
            key="ef" * 32,
            status="timeout",
            cache_hit=False,
            wall_time=10.0,
            attempts=2,
            error="exceeded 5s deadline",
        )
    )
    manifest.total_wall_time = 11.6
    manifest.outputs = ["runs/figure3.txt"]
    return manifest


class TestSchema:
    def test_dict_roundtrip_is_lossless(self):
        manifest = sample_manifest()
        assert RunManifest.from_dict(manifest.to_dict()) == manifest

    def test_json_roundtrip_is_lossless(self):
        manifest = sample_manifest()
        restored = RunManifest.from_dict(json.loads(manifest.dumps()))
        assert restored == manifest

    def test_schema_version_embedded(self):
        payload = sample_manifest().to_dict()
        assert payload["schema_version"] == MANIFEST_SCHEMA_VERSION

    def test_newer_schema_rejected(self):
        payload = sample_manifest().to_dict()
        payload["schema_version"] = MANIFEST_SCHEMA_VERSION + 1
        with pytest.raises(ValueError):
            RunManifest.from_dict(payload)

    def test_invalid_status_rejected(self):
        with pytest.raises(ValueError):
            JobRecord(
                label="x",
                kind="simulate",
                key="00" * 32,
                status="exploded",
                cache_hit=False,
                wall_time=0.0,
                attempts=1,
            )


class TestAccounting:
    def test_add_tallies_hits_and_misses(self):
        manifest = sample_manifest()
        assert manifest.cache_hits == 1
        assert manifest.cache_misses == 2

    def test_failures_listed(self):
        manifest = sample_manifest()
        assert [job.label for job in manifest.failures] == ["observations"]

    def test_summary_mentions_failures_and_counts(self):
        text = sample_manifest().summary()
        assert "2/3 jobs ok" in text
        assert "1 cache hits" in text
        assert "observations" in text


class TestFileIO:
    def test_write_then_read(self, tmp_path):
        manifest = sample_manifest()
        path = manifest.write(tmp_path / "deep" / "manifest.json")
        assert path.exists()
        assert RunManifest.read(path) == manifest

    def test_written_json_is_valid_and_sorted(self, tmp_path):
        path = sample_manifest().write(tmp_path / "manifest.json")
        payload = json.loads(path.read_text())
        assert payload["jobs"][0]["kind"] == "simulate"
        assert "started_at_iso" in payload


class TestAtomicWrite:
    def test_no_temp_file_left_behind(self, tmp_path):
        sample_manifest().write(tmp_path / "manifest.json")
        leftovers = [p.name for p in tmp_path.iterdir()
                     if p.name != "manifest.json"]
        assert leftovers == []

    def test_overwrite_is_all_or_nothing(self, tmp_path):
        path = tmp_path / "manifest.json"
        sample_manifest().write(path)
        before = path.read_text()

        class Unserializable(RunManifest):
            def dumps(self):
                raise RuntimeError("simulated serialization failure")

        broken = Unserializable(command="x", workers=1, cache_dir=None,
                                started_at=0.0)
        with pytest.raises(RuntimeError):
            broken.write(path)
        # The original file is untouched and no temp junk remains.
        assert path.read_text() == before
        assert [p.name for p in tmp_path.iterdir()] == ["manifest.json"]

    def test_written_file_is_complete_json(self, tmp_path):
        path = sample_manifest().write(tmp_path / "m.json")
        # A reader that wins the race sees either nothing or valid JSON —
        # never a partial document (os.replace is atomic).
        assert json.loads(path.read_text())["jobs"]
