"""Block and header construction/identity tests."""

import pytest

from repro.chain.block import Block, BlockHeader, transactions_root
from repro.chain.crypto import PrivateKey
from repro.chain.transaction import Transaction, sign_transaction
from repro.chain.types import Address, Hash32


def make_header(**overrides):
    fields = dict(
        parent_hash=Hash32.zero(),
        number=1,
        timestamp=1000,
        difficulty=131_072,
        coinbase=Address.zero(),
        state_root=Hash32.zero(),
        tx_root=transactions_root(()),
        gas_limit=4_700_000,
        gas_used=0,
    )
    fields.update(overrides)
    return BlockHeader(**fields)


class TestHeaderValidation:
    def test_negative_number_rejected(self):
        with pytest.raises(ValueError):
            make_header(number=-1)

    def test_zero_difficulty_rejected(self):
        with pytest.raises(ValueError):
            make_header(difficulty=0)

    def test_gas_used_beyond_limit_rejected(self):
        with pytest.raises(ValueError):
            make_header(gas_used=4_700_001)

    def test_oversized_extra_data_rejected(self):
        with pytest.raises(ValueError):
            make_header(extra_data=b"x" * 33)


class TestHeaderIdentity:
    def test_hash_is_stable(self):
        assert make_header().block_hash == make_header().block_hash

    def test_every_field_affects_hash(self):
        base = make_header().block_hash
        assert make_header(number=2).block_hash != base
        assert make_header(timestamp=1001).block_hash != base
        assert make_header(difficulty=131_073).block_hash != base
        assert make_header(coinbase=Address.from_int(1)).block_hash != base
        assert make_header(nonce=7).block_hash != base
        assert make_header(extra_data=b"dao").block_hash != base


class TestBlock:
    def test_consistent_tx_root(self):
        key = PrivateKey.from_seed("block:test")
        tx = sign_transaction(
            key,
            Transaction(
                nonce=0, gas_price=1, gas_limit=21_000,
                to=Address.zero(), value=1,
            ),
        )
        block = Block(
            header=make_header(tx_root=transactions_root((tx,))),
            transactions=(tx,),
        )
        assert block.consistent_tx_root()
        assert len(block) == 1
        assert block.transaction_hashes() == (tx.tx_hash,)

    def test_inconsistent_tx_root_detected(self):
        key = PrivateKey.from_seed("block:test")
        tx = sign_transaction(
            key,
            Transaction(
                nonce=0, gas_price=1, gas_limit=21_000,
                to=Address.zero(), value=1,
            ),
        )
        block = Block(header=make_header(), transactions=(tx,))
        assert not block.consistent_tx_root()

    def test_transactions_root_is_order_sensitive(self):
        key = PrivateKey.from_seed("block:test")
        txs = [
            sign_transaction(
                key,
                Transaction(
                    nonce=n, gas_price=1, gas_limit=21_000,
                    to=Address.zero(), value=1,
                ),
            )
            for n in range(2)
        ]
        assert transactions_root(txs) != transactions_root(txs[::-1])

    def test_genesis_flag(self):
        assert Block(header=make_header(number=0)).is_genesis
        assert not Block(header=make_header(number=1)).is_genesis

    def test_passthroughs(self):
        block = Block(header=make_header())
        assert block.number == 1
        assert block.timestamp == 1000
        assert block.difficulty == 131_072
        assert block.parent_hash == Hash32.zero()
        assert block.block_hash == block.header.block_hash
