"""Differential tests: delivery-wave kernels, dispatch table, SoA stats.

The wave kernels (:meth:`Network._send_wave_plain` /
:meth:`Network._send_wave_general`) must consume RNG draws in exactly
the per-send reference order and enqueue byte-identical deliveries; the
exact-type dispatch table must be observationally identical to the seed
``isinstance`` ladder; the block-sync pre-checks must reproduce
``import_block``'s verdicts; and :class:`NodeStats` must read like the
dict it replaced.
"""

from dataclasses import replace

import pytest

from repro.chain.chainstore import Blockchain
from repro.chain.config import ETH_CONFIG
from repro.chain.genesis import build_genesis
from repro.net.latency import (
    ConstantLatency,
    GeographicLatency,
    LognormalLatency,
)
from repro.net.messages import GetBlocks, NewBlock, NewBlockHashes
from repro.net.network import Network
from repro.net.node import FullNode
from repro.net.simulator import Simulator
from repro.perf.bench import run_bench
from repro.perf.reference import reference_event_loop
from repro.perf.soa import NodeStats

CFG = replace(ETH_CONFIG, dao_fork_block=10**9, bomb_delay=10**9)


def make_genesis():
    genesis, _ = build_genesis({}, difficulty=200_000)
    return genesis


def build_net(latency, seed=7, num_nodes=12, offline=(3,)):
    genesis = make_genesis()
    sim = Simulator()
    net = Network(sim, latency=latency, seed=seed)
    regions = ("eu", "us", "asia")
    for i in range(num_nodes):
        node = FullNode(
            f"n{i}",
            Blockchain(CFG, genesis, execute_transactions=False),
            region=regions[i % len(regions)],
            rng_seed=100 + i,
        )
        net.add_node(node)
        if i in offline:
            node.online = False
    return sim, net, genesis


def queue_snapshot(sim):
    return sorted((t, s, h.callback.__self__.name) for t, s, h in sim._queue)


def transport_counters(net):
    return (
        net.messages_sent,
        net.messages_lost,
        net.messages_undeliverable,
        net.messages_blocked,
    )


LATENCIES = [
    LognormalLatency(median=0.12, sigma=0.6),
    GeographicLatency(),
    ConstantLatency(0.05),
]


class TestPlainWaveKernel:
    @pytest.mark.parametrize("latency", LATENCIES)
    def test_wave_matches_per_send_loop(self, latency):
        def run(reference):
            sim, net, _ = build_net(latency)
            message = NewBlockHashes(sender_id="n0", hashes=())
            destinations = [f"n{i}" for i in range(1, 12)]
            if reference:
                with reference_event_loop():
                    net.send_wave("n0", destinations, message)
            else:
                net.send_wave("n0", destinations, message)
            return (
                queue_snapshot(sim),
                net.sim_rng.getstate(),
                transport_counters(net),
            )

        assert run(reference=False) == run(reference=True)

    @pytest.mark.parametrize("latency", LATENCIES)
    def test_single_send_matches_reference(self, latency):
        def run(reference):
            sim, net, _ = build_net(latency)
            message = GetBlocks(sender_id="n0", hashes=())
            if reference:
                with reference_event_loop():
                    for dest in ("n1", "n2", "n3", "n4"):
                        net.send("n0", dest, message)
            else:
                for dest in ("n1", "n2", "n3", "n4"):
                    net.send("n0", dest, message)
            return (
                queue_snapshot(sim),
                net.sim_rng.getstate(),
                transport_counters(net),
            )

        assert run(reference=False) == run(reference=True)


class TestGeneralWaveKernel:
    @pytest.mark.parametrize("latency", LATENCIES[:2])
    def test_loss_and_tracking_match_per_send_loop(self, latency):
        def run(reference):
            genesis = make_genesis()
            sim = Simulator()
            net = Network(sim, latency=latency, seed=11, loss_rate=0.2)
            net.track_block_propagation = True
            for i in range(10):
                node = FullNode(
                    f"n{i}",
                    Blockchain(CFG, genesis, execute_transactions=False),
                    region=("eu", "us")[i % 2],
                    rng_seed=200 + i,
                )
                net.add_node(node)
            net.nodes["n5"].online = False
            message = NewBlock(
                sender_id="n0", block=genesis, total_difficulty=1
            )
            destinations = [f"n{i}" for i in range(1, 10)]
            if reference:
                with reference_event_loop():
                    net.send_wave("n0", destinations, message)
            else:
                net.send_wave("n0", destinations, message)
            return (
                queue_snapshot(sim),
                net.sim_rng.getstate(),
                transport_counters(net),
                dict(net._block_first_sent),
                list(net._block_delivery_delays),
            )

        assert run(reference=False) == run(reference=True)


def mine_some_blocks(n=4):
    """A short single-miner run; returns the mined canonical blocks."""
    genesis = make_genesis()
    sim = Simulator()
    net = Network(sim, latency=ConstantLatency(0.05), seed=3)
    miner = FullNode(
        "miner",
        Blockchain(CFG, genesis, execute_transactions=False),
        mining_hashrate=5e4,
        rng_seed=1,
    )
    net.add_node(miner)
    miner.start_mining()
    while miner.chain.height < n:
        sim.run_until(sim.now + 60.0)
    chain = [
        miner.chain.block_by_number(i) for i in range(1, n + 1)
    ]
    return genesis, chain


class TestBlockSyncPrechecks:
    def test_known_and_orphan_shortcuts_match_reference(self):
        genesis, blocks = mine_some_blocks(4)

        def node_state(node):
            return (
                sorted(node.seen_blocks._seen),
                sorted(node.chain.block_index),
                dict(node._requested_parents),
                node.chain.head.block_hash,
                queue_snapshot(node.network.sim),
                node.stats.as_dict(),
            )

        def run(reference):
            sim = Simulator()
            net = Network(sim, latency=ConstantLatency(0.05), seed=5)
            node = FullNode(
                "sync",
                Blockchain(CFG, genesis, execute_transactions=False),
                rng_seed=9,
            )
            peer = FullNode(
                "peer",
                Blockchain(CFG, genesis, execute_transactions=False),
                rng_seed=10,
            )
            net.add_node(node)
            net.add_node(peer)
            feed = [
                NewBlock(sender_id="peer", block=blocks[2],
                         total_difficulty=0),  # orphan: parents missing
                NewBlock(sender_id="peer", block=blocks[0],
                         total_difficulty=0),  # imports
                NewBlock(sender_id="peer", block=blocks[0],
                         total_difficulty=0),  # seen -> dropped
                NewBlock(sender_id="peer", block=genesis,
                         total_difficulty=0),  # known
            ]
            if reference:
                with reference_event_loop():
                    for message in feed:
                        node.receive(message)
            else:
                for message in feed:
                    node.receive(message)
            return node_state(node)

        assert run(reference=False) == run(reference=True)

    def test_served_batch_matches_reference(self):
        genesis, blocks = mine_some_blocks(4)
        from repro.net.messages import Blocks as BlocksMsg

        def run(reference):
            sim = Simulator()
            net = Network(sim, latency=ConstantLatency(0.05), seed=5)
            node = FullNode(
                "sync",
                Blockchain(CFG, genesis, execute_transactions=False),
                rng_seed=9,
            )
            peer = FullNode(
                "peer",
                Blockchain(CFG, genesis, execute_transactions=False),
                rng_seed=10,
            )
            net.add_node(node)
            net.add_node(peer)
            # Mixed batch: known genesis, an importable run, an orphan
            # (its parent deliberately withheld), and a duplicate.
            batch = BlocksMsg(
                sender_id="peer",
                blocks=(genesis, blocks[0], blocks[1], blocks[3], blocks[1]),
            )
            if reference:
                with reference_event_loop():
                    node.receive(batch)
            else:
                node.receive(batch)
            return (
                sorted(node.seen_blocks._seen),
                sorted(node.chain.block_index),
                dict(node._requested_parents),
                queue_snapshot(sim),
            )

        fast = run(reference=False)
        ref = run(reference=True)
        assert fast == ref
        # The orphan follow-up actually happened (one GetBlocks queued).
        assert fast[2]


class TestDispatchEquivalence:
    def test_full_mining_run_identical_under_reference_swaps(self):
        def run(reference):
            genesis = make_genesis()
            sim = Simulator()
            net = Network(sim, latency=ConstantLatency(0.05), seed=21)
            nodes = []
            for i in range(6):
                node = FullNode(
                    f"n{i}",
                    Blockchain(CFG, genesis, execute_transactions=False),
                    mining_hashrate=5e4 if i < 2 else 0.0,
                    rng_seed=300 + i,
                )
                net.add_node(node)
                nodes.append(node)
            if reference:
                with reference_event_loop():
                    net.bootstrap_mesh(target_degree=4)
                    for node in nodes[:2]:
                        node.start_mining()
                    sim.run_until(900.0)
            else:
                net.bootstrap_mesh(target_degree=4)
                for node in nodes[:2]:
                    node.start_mining()
                sim.run_until(900.0)
            return (
                [node.chain.head.block_hash for node in nodes],
                [node.stats.as_dict() for node in nodes],
                [sorted(node.peers) for node in nodes],
                sim.events_processed,
                net.sim_rng.getstate(),
                transport_counters(net),
            )

        assert run(reference=False) == run(reference=True)

    def test_reference_swaps_are_restored(self):
        from repro.net.kademlia import RoutingTable

        saved = (
            Network.use_fast_path,
            FullNode.receive,
            RoutingTable.observe,
            FullNode._on_new_block,
            FullNode._on_blocks,
            FullNode._on_new_block_hashes,
            FullNode._on_get_blocks,
        )
        with reference_event_loop():
            assert Network.use_fast_path is False
            assert FullNode.receive is FullNode.receive_reference
            assert RoutingTable.observe is RoutingTable.observe_reference
            assert FullNode._on_new_block is FullNode._on_new_block_reference
            assert FullNode._on_blocks is FullNode._on_blocks_reference
        assert (
            Network.use_fast_path,
            FullNode.receive,
            RoutingTable.observe,
            FullNode._on_new_block,
            FullNode._on_blocks,
            FullNode._on_new_block_hashes,
            FullNode._on_get_blocks,
        ) == saved


class TestNodeStats:
    def test_mapping_protocol(self):
        stats = NodeStats()
        assert stats["blocks_imported"] == 0
        stats.blocks_imported += 2
        assert stats["blocks_imported"] == 2
        assert stats.get("blocks_mined") == 0
        assert stats.get("nonsense", -1) == -1
        assert "txs_admitted" in stats
        assert "nonsense" not in stats
        assert len(stats) == len(stats.keys()) == 10
        assert dict(stats.items())["blocks_imported"] == 2
        assert stats.as_dict()["blocks_imported"] == 2
        assert dict(stats) == stats.as_dict()
        with pytest.raises(KeyError):
            stats["nonsense"]
        with pytest.raises(KeyError):
            stats["nonsense"] = 3
        stats["peers_banned"] = 4
        assert stats.peers_banned == 4

    def test_equality_with_dict_and_self(self):
        a, b = NodeStats(), NodeStats()
        assert a == b
        a.dials_started += 1
        assert a != b
        assert a == a.as_dict()
        assert a != {"dials_started": 1}


class TestBenchProfileFlag:
    def test_profile_writes_reports(self, tmp_path, monkeypatch):
        import repro.perf.bench as bench_mod

        monkeypatch.setattr(
            bench_mod, "_REPORTS", {"eventloop": ("eventloop_chain",)}
        )
        paths, all_match = run_bench(
            smoke=True,
            repeats=1,
            only=["eventloop"],
            out_dir=str(tmp_path),
            report_dir=str(tmp_path),
            profile=True,
        )
        assert all_match
        profile = tmp_path / "profile_eventloop_chain.txt"
        assert profile in paths and profile.exists()
        text = profile.read_text()
        assert "cumulative" in text and "run_until" in text
