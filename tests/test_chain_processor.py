"""State-transition tests: transaction application, fees, rejections."""

import pytest

from repro.chain.config import ETH_CONFIG
from repro.chain.gas import TX_GAS
from repro.chain.processor import (
    TransactionRejected,
    apply_transaction,
    validate_transaction_for_chain,
)
from repro.chain.receipt import ExecutionStatus
from repro.chain.state import StateDB
from repro.chain.crypto import PrivateKey
from repro.chain.transaction import Transaction, sign_transaction
from repro.chain.types import Address, ether
from repro.evm.vm import BlockEnvironment

GAS_PRICE = 10**9
COINBASE = Address.from_int(0xC0FFEE)


@pytest.fixture
def sender():
    return PrivateKey.from_seed("proc:sender")


@pytest.fixture
def recipient():
    return PrivateKey.from_seed("proc:recipient").address


@pytest.fixture
def state(sender):
    db = StateDB()
    db.credit(sender.address, ether(10))
    return db


@pytest.fixture
def env():
    return BlockEnvironment(block_number=100, timestamp=1_000, coinbase=COINBASE)


def transfer_tx(sender, recipient, nonce=0, value=ether(1), gas_limit=21_000,
                chain_id=None, data=b""):
    return sign_transaction(
        sender,
        Transaction(
            nonce=nonce, gas_price=GAS_PRICE, gas_limit=gas_limit,
            to=recipient, value=value, data=data, chain_id=chain_id,
        ),
    )


class TestSuccessfulTransfer:
    def test_value_moves(self, state, env, sender, recipient):
        receipt = apply_transaction(
            state, transfer_tx(sender, recipient), ETH_CONFIG, env
        )
        assert receipt.succeeded
        assert state.balance_of(recipient) == ether(1)

    def test_exact_fee_accounting(self, state, env, sender, recipient):
        before = state.balance_of(sender.address)
        receipt = apply_transaction(
            state, transfer_tx(sender, recipient), ETH_CONFIG, env
        )
        assert receipt.gas_used == TX_GAS
        fee = TX_GAS * GAS_PRICE
        assert state.balance_of(sender.address) == before - ether(1) - fee
        assert state.balance_of(COINBASE) == fee

    def test_unused_gas_refunded(self, state, env, sender, recipient):
        before = state.balance_of(sender.address)
        apply_transaction(
            state,
            transfer_tx(sender, recipient, gas_limit=100_000),
            ETH_CONFIG,
            env,
        )
        # Only 21000 consumed despite the 100k limit.
        assert (
            state.balance_of(sender.address)
            == before - ether(1) - TX_GAS * GAS_PRICE
        )

    def test_nonce_increments(self, state, env, sender, recipient):
        apply_transaction(state, transfer_tx(sender, recipient), ETH_CONFIG, env)
        assert state.nonce_of(sender.address) == 1

    def test_supply_conserved(self, state, env, sender, recipient):
        total_before = state.total_supply()
        apply_transaction(state, transfer_tx(sender, recipient), ETH_CONFIG, env)
        assert state.total_supply() == total_before


class TestRejections:
    def test_nonce_too_low(self, state, env, sender, recipient):
        apply_transaction(state, transfer_tx(sender, recipient), ETH_CONFIG, env)
        with pytest.raises(TransactionRejected) as excinfo:
            apply_transaction(
                state, transfer_tx(sender, recipient, nonce=0), ETH_CONFIG, env
            )
        assert excinfo.value.reason == "nonce-too-low"

    def test_nonce_too_high(self, state, env, sender, recipient):
        with pytest.raises(TransactionRejected) as excinfo:
            apply_transaction(
                state, transfer_tx(sender, recipient, nonce=5), ETH_CONFIG, env
            )
        assert excinfo.value.reason == "nonce-too-high"

    def test_insufficient_funds(self, state, env, sender, recipient):
        with pytest.raises(TransactionRejected) as excinfo:
            apply_transaction(
                state,
                transfer_tx(sender, recipient, value=ether(100)),
                ETH_CONFIG,
                env,
            )
        assert excinfo.value.reason == "insufficient-funds"

    def test_gas_limit_below_intrinsic(self, state, env, sender, recipient):
        with pytest.raises(TransactionRejected) as excinfo:
            apply_transaction(
                state,
                transfer_tx(sender, recipient, gas_limit=20_999),
                ETH_CONFIG,
                env,
            )
        assert excinfo.value.reason == "intrinsic-gas-too-high"

    def test_wrong_chain_id(self, state, env, sender, recipient):
        tx = transfer_tx(sender, recipient, chain_id=61)
        with pytest.raises(TransactionRejected) as excinfo:
            apply_transaction(state, tx, ETH_CONFIG, env)
        assert excinfo.value.reason == "wrong-chain-id"

    def test_rejection_leaves_state_untouched(self, state, env, sender, recipient):
        root = state.state_root
        with pytest.raises(TransactionRejected):
            apply_transaction(
                state, transfer_tx(sender, recipient, nonce=5), ETH_CONFIG, env
            )
        assert state.state_root == root


class TestReplaySemantics:
    def test_legacy_tx_executes_on_both_chains(self, env, sender, recipient):
        """The paper's echo condition, end to end: same signed bytes,
        sufficient credit on both chains, both executions land."""
        from repro.chain.config import ETC_CONFIG

        tx = transfer_tx(sender, recipient)
        eth_state, etc_state = StateDB(), StateDB()
        for side in (eth_state, etc_state):
            side.credit(sender.address, ether(10))
        r1 = apply_transaction(eth_state, tx, ETH_CONFIG, env)
        r2 = apply_transaction(etc_state, tx, ETC_CONFIG, env)
        assert r1.succeeded and r2.succeeded
        assert r1.tx_hash == r2.tx_hash  # same identity on both chains
        assert eth_state.balance_of(recipient) == ether(1)
        assert etc_state.balance_of(recipient) == ether(1)

    def test_replay_fails_once_funds_are_split(self, env, sender, recipient):
        """After the user moves funds on one chain, the echo bounces."""
        tx = transfer_tx(sender, recipient, value=ether(9.9999))
        poor_state = StateDB()
        poor_state.credit(sender.address, ether(1))  # funds already moved
        reason = validate_transaction_for_chain(
            poor_state, tx, ETH_CONFIG, env.block_number
        )
        assert reason == "insufficient-funds"


class TestContractExecution:
    def test_failed_call_still_pays_gas(self, state, env, sender):
        """A transaction that runs out of gas lands on-chain, consumes its
        budget, and pays the miner (unlike a rejected one)."""
        from repro.evm.opcodes import assemble

        contract = Address.from_int(0xDEAD)
        # Infinite loop: JUMPDEST; PUSH 0; JUMP
        state.set_code(contract, assemble("loop: @loop JUMP"))
        before = state.balance_of(sender.address)
        receipt = apply_transaction(
            state,
            transfer_tx(sender, contract, value=0, gas_limit=50_000,
                        data=b"\x01"),
            ETH_CONFIG,
            env,
        )
        assert receipt.status == ExecutionStatus.OUT_OF_GAS
        assert receipt.gas_used == 50_000
        assert state.balance_of(sender.address) == before - 50_000 * GAS_PRICE

    def test_contract_creation_receipt(self, state, env, sender):
        from repro.evm.contracts import counter_code, deploy_wrapper

        tx = sign_transaction(
            sender,
            Transaction(
                nonce=0, gas_price=GAS_PRICE, gas_limit=1_000_000,
                to=None, value=0, data=deploy_wrapper(counter_code()),
            ),
        )
        receipt = apply_transaction(state, tx, ETH_CONFIG, env)
        assert receipt.succeeded
        assert receipt.created_contract
        assert state.is_contract(receipt.contract_address)
