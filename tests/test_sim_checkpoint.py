"""In-horizon checkpointing: resumed chunks are bit-exact.

``ForkSimulation.run(until_day=...)`` stops mid-horizon and attaches a
:class:`ForkSimCheckpoint`; ``run(resume_from=...)`` picks the loop back
up.  The contract the chunked ``run-all`` path depends on: the final
result of *any* chunking of a horizon has the same digest as the
single-shot run — including when every checkpoint takes a round trip
through its JSON wire format, as it does in the job cache.
"""

import json

import pytest

from repro.sim.checkpoint import CHECKPOINT_VERSION, ForkSimCheckpoint
from repro.sim.engine import ForkSimConfig, ForkSimulation


CONFIG = ForkSimConfig(days=20, prefork_days=3, seed=99, with_transactions=True)


@pytest.fixture(scope="module")
def single_shot():
    return ForkSimulation(CONFIG).run()


def _run_chunked(config, uptos):
    """Run a horizon as successive resumed chunks with JSON round-trips."""
    checkpoint = None
    result = None
    for upto in uptos:
        result = ForkSimulation(config).run(
            resume_from=checkpoint, until_day=upto
        )
        if result.checkpoint is not None:
            wire = json.dumps(result.checkpoint.to_dict())
            checkpoint = ForkSimCheckpoint.from_dict(json.loads(wire))
    return result


class TestResumeBitExact:
    def test_two_chunks(self, single_shot):
        chunked = _run_chunked(CONFIG, [9, 20])
        assert chunked.digest() == single_shot.digest()

    def test_many_uneven_chunks(self, single_shot):
        chunked = _run_chunked(CONFIG, [1, 4, 5, 13, 20])
        assert chunked.digest() == single_shot.digest()

    def test_partial_run_carries_checkpoint(self):
        partial = ForkSimulation(CONFIG).run(until_day=7)
        cp = partial.checkpoint
        assert cp is not None
        assert cp.day == 7
        assert set(cp.producers) == {"ETH", "ETC"}
        assert set(cp.traces) == {"ETH", "ETC"}
        assert cp.config == CONFIG.to_dict()

    def test_final_chunk_has_no_checkpoint(self, single_shot):
        assert single_shot.checkpoint is None
        chunked = _run_chunked(CONFIG, [9, 20])
        assert chunked.checkpoint is None

    def test_until_day_beyond_horizon_clamps(self, single_shot):
        result = ForkSimulation(CONFIG).run(until_day=1000)
        assert result.checkpoint is None
        assert result.digest() == single_shot.digest()

    def test_checkpoint_excluded_from_digest(self):
        partial = ForkSimulation(CONFIG).run(until_day=7)
        stripped = ForkSimulation(CONFIG).run(until_day=7)
        stripped.checkpoint = None
        assert partial.digest() == stripped.digest()


class TestCheckpointFormat:
    def test_round_trip_digest_stable(self):
        cp = ForkSimulation(CONFIG).run(until_day=5).checkpoint
        wire = json.dumps(cp.to_dict(), sort_keys=True)
        restored = ForkSimCheckpoint.from_dict(json.loads(wire))
        assert restored.digest() == cp.digest()
        assert json.dumps(restored.to_dict(), sort_keys=True) == wire

    def test_version_mismatch_rejected(self):
        cp = ForkSimulation(CONFIG).run(until_day=5).checkpoint
        payload = cp.to_dict()
        payload["version"] = CHECKPOINT_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            ForkSimCheckpoint.from_dict(payload)

    def test_rng_state_survives_round_trip(self):
        cp = ForkSimulation(CONFIG).run(until_day=5).checkpoint
        restored = ForkSimCheckpoint.from_dict(json.loads(json.dumps(cp.to_dict())))
        for chain, state in cp.producers.items():
            assert restored.producers[chain].rng_state == state.rng_state
            assert isinstance(restored.producers[chain].rng_state[1], tuple)


class TestResumeValidation:
    def test_config_mismatch_rejected(self):
        cp = ForkSimulation(CONFIG).run(until_day=5).checkpoint
        other = ForkSimConfig(
            days=20, prefork_days=3, seed=100, with_transactions=True
        )
        with pytest.raises(ValueError, match="configuration"):
            ForkSimulation(other).run(resume_from=cp, until_day=20)

    def test_resume_past_stop_rejected(self):
        cp = ForkSimulation(CONFIG).run(until_day=10).checkpoint
        with pytest.raises(ValueError):
            ForkSimulation(CONFIG).run(resume_from=cp, until_day=5)

    def test_until_day_must_be_positive(self):
        with pytest.raises(ValueError):
            ForkSimulation(CONFIG).run(until_day=0)
