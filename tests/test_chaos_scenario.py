"""Acceptance scenarios: collapse-and-recovery under scripted faults.

Two end-to-end claims from the robustness issue:

* a mid-run **network split** collapses the reachable crawl and, once
  healed, fork-blind discovery plus redial recovers it — with the
  recovery time reported;
* sustained **crash/restart churn** stays bounded: dial backoff keeps
  the population from degenerating into a redial storm (the event count
  stays far below the safety valve) while the mesh retains peers.
"""

from dataclasses import replace

from repro.chain.chainstore import Blockchain
from repro.chain.config import ETH_CONFIG
from repro.chain.genesis import build_genesis
from repro.faults.injector import FaultInjector
from repro.faults.report import RobustnessSample, build_robustness_report
from repro.faults.schedule import ChurnBurst, FaultSchedule, SplitFault
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.net.node import FullNode, ResiliencePolicy
from repro.net.simulator import Simulator
from repro.scenarios.partition_event import (
    ChaosPartitionConfig,
    PartitionScenario,
    reachable_nodes,
)

CFG = replace(ETH_CONFIG, dao_fork_block=10**9, bomb_delay=10**9)


def build_mesh(n=12, seed=11):
    genesis, _ = build_genesis({})
    sim = Simulator()
    net = Network(sim, latency=ConstantLatency(0.05), seed=seed)
    for i in range(n):
        net.add_node(
            FullNode(
                f"n{i:02d}",
                Blockchain(CFG, genesis, execute_transactions=False),
                rng_seed=seed * 100 + i,
                resilience=ResiliencePolicy(),
            )
        )
    net.bootstrap_mesh(target_degree=6)
    net.schedule_redial_loop(30.0)
    net.schedule_liveness_loop(30.0)
    return sim, net


class TestSplitAndHeal:
    def test_collapse_then_discovery_driven_recovery(self):
        sim, net = build_mesh(n=12)
        names = sorted(net.nodes)
        group_a, group_b = tuple(names[:6]), tuple(names[6:])
        schedule = FaultSchedule(
            faults=(
                SplitFault(start=200.0, duration=300.0,
                           groups=(group_a, group_b)),
            )
        )
        injector = FaultInjector(net, schedule, seed=2)
        injector.arm()

        samples = []

        def census():
            samples.append(
                RobustnessSample(
                    time=sim.now,
                    watched_reachable=len(reachable_nodes(net, names[0])),
                    other_reachable=len(reachable_nodes(net, names[-1])),
                    online_nodes=sum(
                        1 for n in net.nodes.values() if n.online
                    ),
                    watched_mean_peers=net.mean_peer_count(),
                )
            )
            sim.schedule(30.0, census)

        sim.schedule(30.0, census)
        sim.run_until(1500.0, max_events=2_000_000)

        report = build_robustness_report(
            seed=2, schedule=schedule, samples=samples, network=net,
            watched="split-side-a", fault_log=injector.log,
        )
        # Full mesh before the split...
        assert report.baseline_reachable == 12
        # ...liveness pings evict cross-split peers, collapsing the crawl
        # to (at most) one side...
        assert report.minimum_reachable <= 6
        # ...and after the heal, redial + discovery stitch it back.
        assert report.recovery_time is not None
        assert samples[-1].watched_reachable >= 11
        assert net.messages_blocked > 0

    def test_chaos_partition_scenario_reports_recovery(self):
        # The packaged variant: a region split through the full scenario
        # still yields a report with the disruption window resolved.
        schedule = FaultSchedule(
            faults=(
                SplitFault(start=400.0, duration=300.0, scope="region",
                           groups=(("na",), ("eu", "as"))),
            ),
            seed=5,
        )
        config = ChaosPartitionConfig(
            num_nodes=14, num_miners=4, post_fork_horizon=900.0,
            census_interval=120.0,
            faults=schedule.to_dict(),
            resilience=ResiliencePolicy().to_dict(),
            max_events=2_000_000,
        )
        result = PartitionScenario(config).run()
        report = result.robustness
        assert report is not None
        assert report.disruption_end is not None
        assert report.baseline_reachable > 0
        assert report.messages_blocked > 0
        assert len(report.fault_log) == 2  # open + close


class TestChurnStaysBounded:
    def test_mean_peers_survive_and_no_redial_storm(self):
        schedule = FaultSchedule(
            faults=(
                ChurnBurst(start=200.0, duration=600.0, rate=0.02,
                           downtime=60.0),
            ),
            seed=3,
        )
        max_events = 3_000_000
        config = ChaosPartitionConfig(
            num_nodes=16, num_miners=4, post_fork_horizon=900.0,
            census_interval=120.0,
            faults=schedule.to_dict(),
            resilience=ResiliencePolicy().to_dict(),
            max_events=max_events,
        )
        # Completing without SimulationError IS the storm bound: the
        # safety valve would have tripped on unbounded redial amplification.
        result = PartitionScenario(config).run()
        report = result.robustness
        assert report.events_processed < max_events
        # Churned nodes came back and re-meshed: the population still
        # holds peers at the end instead of bleeding to isolation.
        final = result.snapshots[-1]
        assert final.eth_mean_peers + final.etc_mean_peers > 0
        assert report.fault_log  # crashes and restarts actually fired
        crashes = [e for _, e in report.fault_log if e.startswith("crash")]
        restarts = [e for _, e in report.fault_log if e.startswith("restart")]
        assert crashes and restarts
