"""Unit tests for the fundamental value types."""

import pytest

from repro.chain.types import (
    Address,
    Hash32,
    WEI_PER_ETHER,
    WEI_PER_GWEI,
    ether,
    from_wei,
    to_wei,
)


class TestAddress:
    def test_accepts_exactly_twenty_bytes(self):
        assert len(Address(b"\x01" * 20)) == 20

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            Address(b"\x01" * 19)
        with pytest.raises(ValueError):
            Address(b"\x01" * 21)

    def test_from_hex_string(self):
        address = Address("0x" + "ab" * 20)
        assert address == bytes.fromhex("ab" * 20)

    def test_from_hex_string_without_prefix(self):
        assert Address("cd" * 20) == bytes.fromhex("cd" * 20)

    def test_zero(self):
        assert Address.zero() == b"\x00" * 20

    def test_round_trips_through_int(self):
        address = Address.from_int(12345)
        assert address.to_int() == 12345

    def test_hex_prefixed(self):
        assert Address.zero().hex_prefixed == "0x" + "00" * 20

    def test_is_hashable_and_comparable(self):
        a = Address(b"\x01" * 20)
        b = Address(b"\x01" * 20)
        assert a == b
        assert len({a, b}) == 1

    def test_negative_int_rejected(self):
        with pytest.raises(ValueError):
            Address.from_int(-1)


class TestHash32:
    def test_length_enforced(self):
        assert len(Hash32(b"\x00" * 32)) == 32
        with pytest.raises(ValueError):
            Hash32(b"\x00" * 31)

    def test_zero(self):
        assert Hash32.zero().to_int() == 0


class TestUnits:
    def test_ether_to_wei(self):
        assert to_wei(1, "ether") == WEI_PER_ETHER
        assert ether(2) == 2 * WEI_PER_ETHER

    def test_gwei(self):
        assert to_wei(5, "gwei") == 5 * WEI_PER_GWEI

    def test_float_amounts_round(self):
        assert to_wei(1.5, "ether") == 15 * 10**17

    def test_from_wei(self):
        assert from_wei(WEI_PER_ETHER) == 1.0
        assert from_wei(WEI_PER_GWEI, "gwei") == 1.0

    def test_unknown_unit_raises(self):
        with pytest.raises(ValueError):
            to_wei(1, "parsec")
        with pytest.raises(ValueError):
            from_wei(1, "parsec")

    def test_wei_identity(self):
        assert to_wei(7, "wei") == 7
