"""The durable serve-layer result store (WAL SQLite)."""

import threading

import pytest

from repro.data.resultstore import (
    RESULTSTORE_SCHEMA_VERSION,
    JobRow,
    ResultStore,
)


def submit(store, key="ab" * 32, tenant="public", kind="selftest-echo"):
    store.record_submitted(
        key=key, kind=kind, label=f"{kind}[test]",
        params_json='{"value":1}', tenant=tenant,
    )
    return key


class TestLifecycle:
    def test_submitted_row_is_pending(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            key = submit(store)
            row = store.get_job(key)
            assert isinstance(row, JobRow)
            assert row.status == "submitted"
            assert not row.terminal
            assert row.digest is None

    def test_completion_roundtrip(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            key = submit(store)
            store.record_completed(
                key=key, status="ok", digest="d" * 64,
                summary_json='{"kind":"selftest-echo","value":1}',
                attempts=1, wall_time=0.5, cache_hit=False,
            )
            row = store.get_job(key)
            assert row.terminal and row.status == "ok"
            assert row.digest == "d" * 64
            result = store.get_result("d" * 64)
            assert result["summary"]["value"] == 1
            assert result["kind"] == "selftest-echo"

    def test_failed_completion_keeps_error(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            key = submit(store)
            store.record_completed(
                key=key, status="failed", error="boom",
                attempts=2, wall_time=0.1, cache_hit=False,
            )
            row = store.get_job(key)
            assert row.status == "failed"
            assert row.error == "boom"
            assert row.digest is None

    def test_ok_requires_digest_and_summary(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            key = submit(store)
            with pytest.raises(ValueError):
                store.record_completed(
                    key=key, status="ok", attempts=1,
                    wall_time=0.0, cache_hit=False,
                )

    def test_nonterminal_status_rejected(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            key = submit(store)
            with pytest.raises(ValueError):
                store.record_completed(
                    key=key, status="running", attempts=1,
                    wall_time=0.0, cache_hit=False,
                )

    def test_resubmit_resets_terminal_row(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            key = submit(store)
            store.record_completed(
                key=key, status="failed", error="flake",
                attempts=1, wall_time=0.1, cache_hit=False,
            )
            submit(store, key=key)  # upsert: same primary key
            row = store.get_job(key)
            assert row.status == "submitted"
            assert row.error is None

    def test_forget_removes_job(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            key = submit(store)
            store.forget(key)
            assert store.get_job(key) is None


class TestQueries:
    def test_counts_and_list(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            submit(store, key="aa" * 32, tenant="alice")
            key = submit(store, key="bb" * 32, tenant="bob")
            store.record_completed(
                key=key, status="ok", digest="e" * 64,
                summary_json='{"kind":"selftest-echo","value":2}',
                attempts=1, wall_time=0.2, cache_hit=True,
            )
            counts = store.counts()
            assert counts["jobs"] == 2
            assert counts["results"] == 1
            rows = store.list_jobs()
            assert {row.tenant for row in rows} == {"alice", "bob"}

    def test_missing_lookups_return_none(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            assert store.get_job("ff" * 32) is None
            assert store.get_result("ff" * 32) is None

    def test_as_dict_is_json_shaped(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            key = submit(store)
            payload = store.get_job(key).as_dict()
            assert payload["key"] == key
            assert payload["status"] == "submitted"


class TestDurabilityAndConcurrency:
    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "s.db"
        with ResultStore(path) as store:
            key = submit(store)
            store.record_completed(
                key=key, status="ok", digest="a" * 64,
                summary_json='{"kind":"selftest-echo","value":3}',
                attempts=1, wall_time=0.1, cache_hit=False,
            )
        with ResultStore(path) as store:
            assert store.get_job(key).status == "ok"
            assert store.get_result("a" * 64)["summary"]["value"] == 3

    def test_wal_mode_on_file(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            assert store.journal_mode == "wal"

    def test_threaded_writes_do_not_corrupt(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            errors = []

            def work(base):
                try:
                    for index in range(20):
                        key = f"{base:02x}{index:02x}" + "0" * 60
                        submit(store, key=key, tenant=f"t{base}")
                        store.record_completed(
                            key=key, status="ok",
                            digest=f"{base:02x}{index:02x}" + "f" * 60,
                            summary_json='{"kind":"selftest-echo"}',
                            attempts=1, wall_time=0.0, cache_hit=False,
                        )
                except Exception as exc:
                    errors.append(exc)

            threads = [threading.Thread(target=work, args=(n,))
                       for n in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert errors == []
            assert store.counts()["jobs"] == 80

    def test_second_connection_sees_committed_rows(self, tmp_path):
        path = tmp_path / "s.db"
        with ResultStore(path) as writer, ResultStore(path) as reader:
            key = submit(writer)
            assert reader.get_job(key) is not None


class TestSchemaVersioning:
    def test_version_recorded(self, tmp_path):
        path = tmp_path / "s.db"
        with ResultStore(path) as store:
            pass
        import sqlite3

        conn = sqlite3.connect(path)
        (version,) = conn.execute(
            "SELECT value FROM meta WHERE name = 'schema_version'"
        ).fetchone()
        conn.close()
        assert int(version) == RESULTSTORE_SCHEMA_VERSION

    def test_newer_schema_refused(self, tmp_path):
        path = tmp_path / "s.db"
        with ResultStore(path):
            pass
        import sqlite3

        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE meta SET value = ? WHERE name = 'schema_version'",
            (str(RESULTSTORE_SCHEMA_VERSION + 1),),
        )
        conn.commit()
        conn.close()
        with pytest.raises(ValueError):
            ResultStore(path)
