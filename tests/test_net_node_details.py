"""Node protocol details: serving, sync retries, announcement dedup."""

from dataclasses import replace

import pytest

from repro.chain.chainstore import Blockchain
from repro.chain.config import ETH_CONFIG
from repro.chain.genesis import build_genesis
from repro.net.latency import ConstantLatency
from repro.net.messages import Blocks, GetBlocks, NewBlockHashes
from repro.net.network import Network
from repro.net.node import FullNode
from repro.net.simulator import Simulator

CFG = replace(ETH_CONFIG, dao_fork_block=10**9, bomb_delay=10**9)


def mining_pair(horizon=600.0, seed=5):
    genesis, _ = build_genesis({}, difficulty=200_000)
    sim = Simulator()
    net = Network(sim, latency=ConstantLatency(0.05), seed=seed)
    miner = FullNode("miner", Blockchain(CFG, genesis, execute_transactions=False),
                     mining_hashrate=5e4, rng_seed=1)
    peer = FullNode("peer", Blockchain(CFG, genesis, execute_transactions=False),
                    rng_seed=2)
    net.add_node(miner)
    net.add_node(peer)
    peer.dial("miner")
    sim.run_until(5)
    miner.start_mining()
    sim.run_until(5 + horizon)
    return sim, net, miner, peer


class TestServing:
    def test_get_blocks_serves_run_of_descendants(self):
        sim, net, miner, peer = mining_pair(horizon=900)
        height = miner.chain.height
        assert height > 35

        received = []
        original = peer.receive

        def spy(message):
            if isinstance(message, Blocks):
                received.append(message)
            original(message)

        peer.receive = spy
        target = miner.chain.canonical_hash(1)
        net.send("peer", "miner", GetBlocks(sender_id="peer", hashes=(target,)))
        sim.run_until(sim.now + 5)
        assert received
        served = received[-1].blocks
        # The requested block plus up to 31 canonical descendants.
        assert served[0].block_hash == target
        assert len(served) == 32
        numbers = [block.number for block in served]
        assert numbers == list(range(1, 33))

    def test_unknown_hash_not_served(self):
        sim, net, miner, peer = mining_pair(horizon=100)
        from repro.chain.types import Hash32

        got = []
        original = peer.receive

        def spy(message):
            if isinstance(message, Blocks):
                got.append(message)
            original(message)

        peer.receive = spy
        net.send(
            "peer", "miner",
            GetBlocks(sender_id="peer", hashes=(Hash32(b"\x99" * 32),)),
        )
        sim.run_until(sim.now + 5)
        assert got == []


class TestAnnouncementDedup:
    def test_known_hash_announcement_not_refetched(self):
        sim, net, miner, peer = mining_pair(horizon=300)
        requests = []
        original = miner.receive

        def spy(message):
            if isinstance(message, GetBlocks):
                requests.append(message)
            original(message)

        miner.receive = spy
        head_hash = peer.chain.head.block_hash
        # Announce a block the peer already has: no fetch should follow.
        net.send(
            "miner", "peer",
            NewBlockHashes(sender_id="miner", hashes=(head_hash,)),
        )
        sim.run_until(sim.now + 5)
        assert requests == []


class TestAncestorRetry:
    def test_request_retries_after_window(self):
        genesis, _ = build_genesis({}, difficulty=200_000)
        sim = Simulator()
        net = Network(sim, latency=ConstantLatency(0.05), seed=9)
        node = FullNode("n", Blockchain(CFG, genesis, execute_transactions=False))
        silent = FullNode("mute", Blockchain(CFG, genesis, execute_transactions=False))
        net.add_node(node)
        net.add_node(silent)

        sent = []
        original = silent.receive

        def spy(message):
            if isinstance(message, GetBlocks):
                sent.append(sim.now)
            # swallow: never respond

        silent.receive = spy
        from repro.chain.types import Hash32

        missing = Hash32(b"\x77" * 32)
        node._request_ancestor("mute", missing)
        sim.run_until(sim.now + 1)
        node._request_ancestor("mute", missing)  # inside window: suppressed
        sim.run_until(sim.now + 1)
        assert len(sent) == 1
        sim.run_until(sim.now + FullNode.ANCESTOR_RETRY_SECONDS + 1)
        node._request_ancestor("mute", missing)  # window expired: retried
        sim.run_until(sim.now + 1)
        assert len(sent) == 2


class TestMempoolPruning:
    def test_included_transactions_leave_the_pool(self):
        """Full-execution nodes: a submitted transaction gets mined into a
        block and pruned from every mempool that sees the block."""
        from repro.chain.crypto import PrivateKey
        from repro.chain.transaction import Transaction, sign_transaction
        from repro.chain.types import Address, ether

        key = PrivateKey.from_seed("prune:user")
        genesis, state = build_genesis(
            {key.address: ether(10)}, difficulty=200_000
        )
        sim = Simulator()
        net = Network(sim, latency=ConstantLatency(0.05), seed=11)
        miner = FullNode(
            "miner",
            Blockchain(CFG, genesis, state.fork(), execute_transactions=True),
            mining_hashrate=5e4, rng_seed=1,
        )
        peer = FullNode(
            "peer",
            Blockchain(CFG, genesis, state.fork(), execute_transactions=True),
            rng_seed=2,
        )
        net.add_node(miner)
        net.add_node(peer)
        peer.dial("miner")
        sim.run_until(5)
        miner.start_mining()

        tx = sign_transaction(
            key,
            Transaction(nonce=0, gas_price=10**9, gas_limit=21_000,
                        to=Address.zero(), value=1),
        )
        assert peer.submit_transaction(tx)
        sim.run_until(sim.now + 2)
        assert tx.tx_hash in miner.mempool
        # Let the miner include it and gossip the block back.
        sim.run_until(sim.now + 120)
        assert tx.tx_hash not in miner.mempool
        assert tx.tx_hash not in peer.mempool
        # The transfer executed on both nodes' head states.
        assert peer.chain.head_state().nonce_of(key.address) == 1
