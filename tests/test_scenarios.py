"""Scenario tests: the DAO story, replay workload, upgrade forks."""

import pytest

from repro.chain.types import ether, from_wei
from repro.core.echoes import EchoDetector
from repro.scenarios.dao import DaoScenario, DaoScenarioConfig
from repro.scenarios.dos_forks import (
    ETC_DIFFUSE_FORK,
    ETH_EIP150_FORK,
    UpgradeForkConfig,
    UpgradeForkModel,
    compare_upgrade_forks,
)
from repro.scenarios.replay_attack import (
    ReplayModel,
    ReplayWorkload,
    ReplayWorkloadConfig,
)


@pytest.fixture(scope="module")
def dao_result():
    return DaoScenario(DaoScenarioConfig(fork_block=12)).run()


class TestDaoScenario:
    def test_attack_profits(self, dao_result):
        assert dao_result.drained > DaoScenarioConfig().attacker_stake

    def test_chains_share_prefix_and_diverge(self, dao_result):
        ancestor = dao_result.eth_chain.common_ancestor(dao_result.etc_chain)
        assert ancestor.number == 12 - 1
        eth_fork = dao_result.eth_chain.block_by_number(12)
        etc_fork = dao_result.etc_chain.block_by_number(12)
        assert eth_fork.block_hash != etc_fork.block_hash

    def test_irregular_transfer_applied_on_eth_only(self, dao_result):
        assert dao_result.attacker_balance(dao_result.eth_chain) == 0
        assert dao_result.refund_balance(
            dao_result.eth_chain
        ) == dao_result.drained
        # Code is law on ETC: the attacker keeps the loot.
        assert dao_result.attacker_balance(
            dao_result.etc_chain
        ) == dao_result.drained
        assert dao_result.refund_balance(dao_result.etc_chain) == 0

    def test_state_roots_differ_at_fork_block(self, dao_result):
        eth_fork = dao_result.eth_chain.block_by_number(12)
        etc_fork = dao_result.etc_chain.block_by_number(12)
        assert eth_fork.header.state_root != etc_fork.header.state_root

    def test_cross_imports_refused(self, dao_result):
        eth_fork = dao_result.eth_chain.block_by_number(12)
        result = dao_result.etc_chain.import_block(eth_fork)
        assert result.status == "invalid"

    def test_replay_executed_on_both_chains(self, dao_result):
        """Act 6: Bob received the payment twice."""
        bob = dao_result.keys["bob"].address
        eth_balance = dao_result.eth_chain.head_state().balance_of(bob)
        etc_balance = dao_result.etc_chain.head_state().balance_of(bob)
        assert eth_balance == etc_balance == ether(5) + ether(7)

    def test_replayed_tx_same_hash_on_both_chains(self, dao_result):
        tx_hash = dao_result.replayed_tx.tx_hash
        found = 0
        for chain in (dao_result.eth_chain, dao_result.etc_chain):
            for block in chain.canonical_blocks():
                if tx_hash in block.transaction_hashes():
                    found += 1
        assert found == 2

    def test_echo_detector_finds_the_replay(self, dao_result):
        from repro.data.records import export_transactions

        detector = EchoDetector()
        sightings = []
        for chain in (dao_result.eth_chain, dao_result.etc_chain):
            sightings.extend(export_transactions(chain))
        sightings.sort(key=lambda r: (r.timestamp, r.chain))
        detector.observe_records(sightings)
        echo_hashes = {echo.tx_hash for echo in detector.echoes}
        assert bytes(dao_result.replayed_tx.tx_hash) in echo_hashes


class TestReplayWorkload:
    def test_decay_curves(self):
        model = ReplayModel()
        assert model.replayable_fraction(0) > 0.8
        assert model.replayable_fraction(100) < model.replayable_fraction(10)
        # Chain-id activation bites.
        assert model.replayable_fraction(178) < model.replayable_fraction(176) * 0.7
        assert model.rebroadcast_probability(0) > 0.2
        assert model.rebroadcast_probability(250) < 0.05

    def test_bumps_raise_probability(self):
        model = ReplayModel()
        assert model.rebroadcast_probability(115) > model.rebroadcast_probability(100)

    def test_generated_echoes_match_ground_truth(self):
        config = ReplayWorkloadConfig(days=30, seed=1)
        workload = ReplayWorkload(config)
        records, truth = workload.generate([40_000.0] * 30, [16_000.0] * 30)
        detector = EchoDetector()
        found = detector.observe_records(records)
        assert found == truth.total()
        directions = detector.direction_totals()
        assert directions.get(("ETH", "ETC"), 0) == truth.echoes_into["ETC"]

    def test_mostly_eth_to_etc(self):
        """Figure 4's direction finding."""
        workload = ReplayWorkload(ReplayWorkloadConfig(days=20, seed=2))
        _, truth = workload.generate([40_000.0] * 20, [16_000.0] * 20)
        assert truth.echoes_into["ETC"] > 3 * truth.echoes_into["ETH"]

    def test_echo_volume_decays(self):
        workload = ReplayWorkload(ReplayWorkloadConfig(days=270, seed=3))
        _, truth = workload.generate([40_000.0] * 270, [16_000.0] * 270)
        early = sum(truth.per_day_into_etc.get(d, 0)
                    for d in range(min(truth.per_day_into_etc), min(truth.per_day_into_etc) + 7))
        late_start = max(truth.per_day_into_etc) - 7
        late = sum(truth.per_day_into_etc.get(d, 0)
                   for d in range(late_start, late_start + 7))
        assert early > 10 * max(late, 1)

    def test_deterministic_per_seed(self):
        a = ReplayWorkload(ReplayWorkloadConfig(days=5, seed=9))
        b = ReplayWorkload(ReplayWorkloadConfig(days=5, seed=9))
        ra, ta = a.generate([1000.0] * 5, [400.0] * 5)
        rb, tb = b.generate([1000.0] * 5, [400.0] * 5)
        assert ta.total() == tb.total()
        assert [r.tx_hash for r in ra] == [r.tx_hash for r in rb]


class TestUpgradeForks:
    def test_outcome_scales_with_notice_time(self):
        fast = UpgradeForkModel(
            UpgradeForkConfig("fast", 0.2, mean_notice_hours=1.0, seed=5)
        ).run()
        slow = UpgradeForkModel(
            UpgradeForkConfig("slow", 0.2, mean_notice_hours=50.0, seed=5)
        ).run()
        assert slow.minority_branch_length > 5 * fast.minority_branch_length

    def test_calibrated_comparison_matches_paper_shape(self):
        """ETH 86 vs ETC 3,583: the ratio is what we reproduce."""
        eth, etc = compare_upgrade_forks(trials=15)
        assert 30 <= eth.minority_branch_length <= 300
        assert 1_500 <= etc.minority_branch_length <= 8_000
        ratio = etc.minority_branch_length / max(eth.minority_branch_length, 1)
        assert 10 <= ratio <= 150

    def test_branch_always_dies(self):
        outcome = UpgradeForkModel(ETH_EIP150_FORK).run()
        assert outcome.resolution_hours < 24 * 14

    def test_config_validation(self):
        with pytest.raises(ValueError):
            UpgradeForkConfig("bad", laggard_fraction=0.0, mean_notice_hours=1)
        with pytest.raises(ValueError):
            UpgradeForkConfig("bad", laggard_fraction=0.5, mean_notice_hours=0)
