"""Node/network integration: handshakes, gossip, sync, partition."""

from dataclasses import replace

import pytest

from repro.chain.chainstore import Blockchain
from repro.chain.config import ETC_CONFIG, ETH_CONFIG
from repro.chain.genesis import build_genesis
from repro.net.gossip import SeenCache, split_push_announce
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.net.node import FullNode
from repro.net.simulator import Simulator

FORK = 6
ETH_CFG = replace(ETH_CONFIG, dao_fork_block=FORK, bomb_delay=10**9,
                  gas_reprice_block=None, replay_protection_block=None)
ETC_CFG = replace(ETC_CONFIG, dao_fork_block=FORK, bomb_delay=10**9,
                  gas_reprice_block=None, replay_protection_block=None)


def build_network(node_specs, seed=7):
    """node_specs: list of (name, config, hashrate)."""
    genesis, _ = build_genesis({}, difficulty=200_000)
    sim = Simulator()
    network = Network(sim, latency=ConstantLatency(0.05), seed=seed)
    nodes = {}
    for name, config, hashrate in node_specs:
        node = FullNode(
            name,
            Blockchain(config, genesis, execute_transactions=False),
            mining_hashrate=hashrate,
            rng_seed=sum(name.encode()) * 7919 + len(name),
        )
        network.add_node(node)
        nodes[name] = node
    return sim, network, nodes


class TestHandshake:
    def test_compatible_nodes_connect(self):
        sim, network, nodes = build_network(
            [("a", ETH_CFG, 0), ("b", ETH_CFG, 0)]
        )
        nodes["a"].dial("b")
        sim.run_all()
        assert "b" in nodes["a"].peers
        assert "a" in nodes["b"].peers

    def test_different_genesis_refused(self):
        genesis_a, _ = build_genesis({}, difficulty=200_000)
        genesis_b, _ = build_genesis({}, difficulty=300_000)
        sim = Simulator()
        network = Network(sim, latency=ConstantLatency(0.05))
        a = FullNode("a", Blockchain(ETH_CFG, genesis_a, execute_transactions=False))
        b = FullNode("b", Blockchain(ETH_CFG, genesis_b, execute_transactions=False))
        network.add_node(a)
        network.add_node(b)
        a.dial("b")
        sim.run_all()
        assert not a.peers and not b.peers
        assert b.stats["handshakes_refused"] == 1

    def test_peer_cap_respected(self):
        specs = [("hub", ETH_CFG, 0)] + [
            (f"leaf{i}", ETH_CFG, 0) for i in range(10)
        ]
        sim, network, nodes = build_network(specs)
        nodes["hub"].max_peers = 3
        for index in range(10):
            nodes[f"leaf{index}"].dial("hub")
        sim.run_all()
        assert len(nodes["hub"].peers) == 3


class TestGossipAndMining:
    def test_mined_blocks_propagate_to_all(self):
        specs = [("miner", ETH_CFG, 1e4)] + [
            (f"n{i}", ETH_CFG, 0) for i in range(6)
        ]
        sim, network, nodes = build_network(specs)
        network.bootstrap_mesh(target_degree=3)
        sim.run_until(10)
        network.start_all_miners()
        sim.run_until(600)
        heights = {node.chain.height for node in nodes.values()}
        assert len(heights) == 1
        assert heights.pop() > 0

    def test_two_miners_converge_despite_races(self):
        specs = [("m1", ETH_CFG, 1e4), ("m2", ETH_CFG, 1e4)] + [
            (f"n{i}", ETH_CFG, 0) for i in range(4)
        ]
        sim, network, nodes = build_network(specs)
        network.bootstrap_mesh(target_degree=3)
        sim.run_until(10)
        network.start_all_miners()
        sim.run_until(1200)
        heads = {node.chain.head.block_hash for node in nodes.values()}
        assert len(heads) == 1

    def test_late_joiner_syncs_history(self):
        specs = [("miner", ETH_CFG, 1e4), ("old", ETH_CFG, 0)]
        sim, network, nodes = build_network(specs)
        nodes["old"].dial("miner")
        sim.run_until(5)
        network.start_all_miners()
        sim.run_until(300)
        mined_height = nodes["miner"].chain.height
        assert mined_height > 3

        genesis = nodes["miner"].chain.genesis
        latecomer = FullNode(
            "late",
            Blockchain(ETH_CFG, genesis, execute_transactions=False),
        )
        network.add_node(latecomer)
        latecomer.dial("miner")
        sim.run_until(400)
        assert latecomer.chain.height >= mined_height


class TestTransactionGossip:
    def test_submitted_tx_reaches_all_mempools(self):
        from repro.chain.crypto import PrivateKey
        from repro.chain.transaction import Transaction, sign_transaction
        from repro.chain.types import Address

        specs = [(f"n{i}", ETH_CFG, 0) for i in range(5)]
        sim, network, nodes = build_network(specs)
        network.bootstrap_mesh(target_degree=3)
        sim.run_until(10)

        key = PrivateKey.from_seed("gossip:user")
        tx = sign_transaction(
            key,
            Transaction(nonce=0, gas_price=1, gas_limit=21_000,
                        to=Address.zero(), value=0),
        )
        assert nodes["n0"].submit_transaction(tx)
        sim.run_until(30)
        for node in nodes.values():
            assert tx.tx_hash in node.mempool


class TestPartition:
    def test_fork_splits_the_network(self):
        """Message-level partition: upgraded and holdout nodes end up on
        different heads and drop each other's connections."""
        specs = [
            ("ethminer1", ETC_CFG, 1e4),
            ("ethminer2", ETC_CFG, 1e4),
            ("etcminer", ETC_CFG, 2e3),
            ("ethnode", ETC_CFG, 0),
            ("etcnode", ETC_CFG, 0),
        ]
        sim, network, nodes = build_network(specs)
        network.bootstrap_mesh(target_degree=4)
        network.schedule_redial_loop(20.0)
        sim.run_until(10)
        network.start_all_miners()
        # Upgrade the pro-fork majority before the fork height is reached.
        for name in ("ethminer1", "ethminer2", "ethnode"):
            nodes[name].upgrade(ETH_CFG)
        sim.run_until(4000)

        eth_heads = {
            nodes[n].chain.canonical_hash(FORK)
            for n in ("ethminer1", "ethminer2", "ethnode")
        }
        etc_heads = {
            nodes[n].chain.canonical_hash(FORK)
            for n in ("etcminer", "etcnode")
        }
        assert len(eth_heads) == 1 and len(etc_heads) == 1
        assert eth_heads != etc_heads
        # No cross-side connections survive.
        eth_side = {"ethminer1", "ethminer2", "ethnode"}
        for name in eth_side:
            assert not (nodes[name].peers - eth_side)
        for name in ("etcminer", "etcnode"):
            assert nodes[name].peers <= {"etcminer", "etcnode"}


class TestGossipHelpers:
    def test_split_push_announce_partitions(self):
        import random

        peers = [f"p{i}" for i in range(16)]
        push, announce = split_push_announce(peers, random.Random(1))
        assert set(push) | set(announce) == set(peers)
        assert not set(push) & set(announce)
        assert len(push) == 4  # sqrt(16)

    def test_split_empty(self):
        import random

        assert split_push_announce([], random.Random(1)) == ([], [])

    def test_seen_cache_dedups(self):
        cache = SeenCache(capacity=2)
        assert cache.add(b"a")
        assert not cache.add(b"a")
        cache.add(b"b")
        cache.add(b"c")  # evicts "a"
        assert b"a" not in cache
        assert b"c" in cache

    def test_seen_cache_update_counts_new(self):
        cache = SeenCache()
        assert cache.update([b"x", b"y", b"x"]) == 2

    def test_seen_cache_evicts_fifo_order(self):
        # Regression: eviction must pop the *oldest* entry (FIFO), and
        # the set and order queue must stay the same size at capacity.
        cache = SeenCache(capacity=3)
        for item in (b"a", b"b", b"c"):
            assert cache.add(item)
        assert len(cache) == 3
        cache.add(b"d")  # evicts "a", not "b" or "c"
        assert b"a" not in cache
        assert b"b" in cache and b"c" in cache and b"d" in cache
        assert len(cache) == 3
        cache.add(b"e")  # evicts "b" next — strict insertion order
        assert b"b" not in cache
        assert b"c" in cache
        assert len(cache) == 3

    def test_seen_cache_evicted_item_can_return(self):
        cache = SeenCache(capacity=2)
        cache.add(b"a")
        cache.add(b"b")
        cache.add(b"c")  # evicts "a"
        assert cache.add(b"a")  # "a" is new again after eviction
        assert b"b" not in cache  # and "b" was the FIFO victim
        assert len(cache) == 2

    def test_seen_cache_rejects_duplicate_without_eviction(self):
        cache = SeenCache(capacity=2)
        cache.add(b"a")
        cache.add(b"b")
        # Re-adding an existing item is not an insertion: nothing may
        # be evicted and the order queue must not grow.
        assert not cache.add(b"a")
        assert b"a" in cache and b"b" in cache
        assert len(cache) == 2
