"""Difficulty algorithm: exact consensus values and recovery properties.

These rules are the engine behind Figure 1; the tests pin the arithmetic
to hand-computed values and check the properties the paper's narrative
depends on (the -99 clamp bounding the per-block fall, the equilibrium at
the 14-second target).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.difficulty import (
    DIFFICULTY_BOUND_DIVISOR,
    HOMESTEAD_CLAMP,
    MIN_DIFFICULTY,
    difficulty_bomb,
    equilibrium_difficulty,
    expected_block_time,
    frontier_difficulty,
    homestead_difficulty,
)

PARENT = 6_000_000_000_000  # 6e12, a realistic mid-2016 value


class TestHomesteadExactValues:
    def test_fast_block_raises_difficulty(self):
        # delta 5 s: multiplier = 1 - 0 = 1.
        expected = PARENT + PARENT // 2048
        assert homestead_difficulty(PARENT, 1000, 1005, 50, 10**9) == expected

    def test_delta_in_balance_band_keeps_difficulty(self):
        # delta 10..19 s: multiplier = 0.
        assert homestead_difficulty(PARENT, 1000, 1013, 50, 10**9) == PARENT

    def test_slow_block_lowers_difficulty(self):
        # delta 25 s: multiplier = 1 - 2 = -1.
        expected = PARENT - PARENT // 2048
        assert homestead_difficulty(PARENT, 1000, 1025, 50, 10**9) == expected

    def test_clamp_at_minus_99(self):
        # delta 2000 s: 1 - 200 = -199 clamps to -99.
        expected = PARENT + PARENT // 2048 * HOMESTEAD_CLAMP
        assert homestead_difficulty(PARENT, 1000, 3000, 50, 10**9) == expected

    def test_clamp_means_max_4_8_percent_fall(self):
        """The mechanism behind ETC's two-day stall: no block can shed
        more than 99/2048 (~4.83%) of its parent's difficulty."""
        result = homestead_difficulty(PARENT, 1000, 10**7, 50, 10**9)
        assert result / PARENT >= 1 - 99 / 2048 - 1e-9

    def test_floor_at_minimum(self):
        assert (
            homestead_difficulty(MIN_DIFFICULTY, 1000, 9000, 50, 10**9)
            == MIN_DIFFICULTY
        )

    def test_timestamp_must_increase(self):
        with pytest.raises(ValueError):
            homestead_difficulty(PARENT, 1000, 1000, 50)


class TestFrontier:
    def test_fast_block_raises(self):
        assert (
            frontier_difficulty(PARENT, 1000, 1012, 50, 10**9)
            == PARENT + PARENT // 2048
        )

    def test_slow_block_lowers(self):
        assert (
            frontier_difficulty(PARENT, 1000, 1013, 50, 10**9)
            == PARENT - PARENT // 2048
        )

    def test_fixed_step_regardless_of_gap(self):
        slow = frontier_difficulty(PARENT, 1000, 1100, 50, 10**9)
        very_slow = frontier_difficulty(PARENT, 1000, 9000, 50, 10**9)
        assert slow == very_slow


class TestBomb:
    def test_zero_before_period_two(self):
        assert difficulty_bomb(150_000) == 0

    def test_exponential_growth(self):
        assert difficulty_bomb(300_000) == 2**1
        assert difficulty_bomb(1_000_000) == 2**8
        assert difficulty_bomb(1_920_000) == 2**17

    def test_delay_shifts_the_bomb(self):
        assert difficulty_bomb(1_920_000, delay_blocks=1_920_000) == 0

    def test_bomb_included_in_difficulty(self):
        with_bomb = homestead_difficulty(PARENT, 1000, 1013, 1_920_000)
        assert with_bomb == PARENT + 2**17


class TestEquilibrium:
    def test_expected_block_time_identity(self):
        assert expected_block_time(1_400_000, 100_000) == 14.0

    def test_zero_hashrate_never_produces(self):
        assert expected_block_time(1000, 0) == float("inf")

    def test_equilibrium_difficulty(self):
        assert equilibrium_difficulty(1e12) == int(14e12)
        assert equilibrium_difficulty(1.0) == MIN_DIFFICULTY


class TestRecoveryDynamics:
    def test_blocks_to_recover_from_99_percent_drop(self):
        """Walk the rule through the ETC scenario: difficulty sized for
        100% of hashpower, 1% remaining.  The clamp bounds the fall at
        ~4.8% per block while gaps exceed ~990 s, and the fall then
        *decelerates* as gaps shrink (multiplier −(delta//10−1)), so the
        descent to the new operating band takes ~31 hours — the paper's
        "it took almost two days before the difficulty calculation was
        able to fully adjust" from the rule alone.
        """
        hashrate = 4.8e12 * 0.01
        difficulty = int(4.8e12 * 14)  # old equilibrium
        timestamp = 0
        elapsed = 0.0
        blocks = 0
        # Descend until block gaps re-enter the rule's dead band
        # (delta < 20 s ⇒ multiplier ≥ 0 ⇒ the fall stops).
        while difficulty / hashrate >= 20:
            delta = max(1, int(difficulty / hashrate))  # mean solve time
            elapsed += delta
            new_timestamp = timestamp + delta
            difficulty = homestead_difficulty(
                difficulty, timestamp, new_timestamp, 1_920_001 + blocks, 10**9
            )
            timestamp = new_timestamp
            blocks += 1
        assert 1_000 <= blocks <= 3_000
        assert 20 <= elapsed / 3600 <= 48  # "almost two days"
        # The very first post-fork gap is the Figure 1 delta spike.
        assert int(4.8e12 * 14 / hashrate) > 1200

    @given(st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=100)
    def test_difficulty_monotone_nonincreasing_in_delta(self, delta):
        faster = homestead_difficulty(PARENT, 0, delta, 50, 10**9)
        slower = homestead_difficulty(PARENT, 0, delta + 10, 50, 10**9)
        assert slower <= faster

    @given(
        st.integers(min_value=MIN_DIFFICULTY, max_value=10**15),
        st.integers(min_value=1, max_value=100_000),
    )
    @settings(max_examples=100)
    def test_result_always_at_least_minimum(self, parent, delta):
        assert (
            homestead_difficulty(parent, 0, delta, 50, 10**9)
            >= MIN_DIFFICULTY
        )

    @given(
        st.integers(min_value=MIN_DIFFICULTY, max_value=10**15),
        st.integers(min_value=1, max_value=100_000),
    )
    @settings(max_examples=100)
    def test_per_block_change_is_bounded(self, parent, delta):
        result = homestead_difficulty(parent, 0, delta, 50, 10**9)
        quantum = parent // DIFFICULTY_BOUND_DIVISOR
        assert parent - 99 * quantum <= result <= parent + quantum or (
            result == MIN_DIFFICULTY
        )
