"""Pool-concentration analysis — Figure 5's machinery."""

from collections import Counter

import pytest

from repro.core.pools import (
    convergence_day,
    daily_top_n_shares,
    daily_top_pools,
    migration_consistency,
    top_n_share_series,
    trace_top_n_share_series,
)
from repro.core.timeseries import TimeSeries
from repro.data.windows import DAY
from repro.sim.blockprod import ChainTrace


class TestDailyShares:
    def test_top_n_share(self):
        counts = Counter({"a": 50, "b": 30, "c": 15, "d": 5})
        assert daily_top_n_shares(counts, 1) == 0.50
        assert daily_top_n_shares(counts, 3) == 0.95
        assert daily_top_n_shares(counts, 10) == 1.0

    def test_empty_day(self):
        assert daily_top_n_shares(Counter(), 3) == 0.0

    def test_series_partitions_by_day(self):
        blocks = (
            [(0, "a")] * 8 + [(100, "b")] * 2          # day 0: a has 80%
            + [(DAY + 1, "a")] * 5 + [(DAY + 2, "b")] * 5  # day 1: 50/50
        )
        series = top_n_share_series(blocks, top_n=1)
        assert series.values == [80.0, 50.0]

    def test_top_pools_per_day_tracks_identity(self):
        blocks = [(0, "a")] * 3 + [(0, "b")] * 2 + [(DAY, "c")] * 4
        tops = daily_top_pools(blocks, top_n=1)
        assert tops[0] == ["a"]
        assert tops[1] == ["c"]


class TestTraceVariant:
    def build_trace(self):
        trace = ChainTrace("ETH")
        for i in range(8):
            trace.append(i, i * 100, 1000, "bigpool")
        for i in range(2):
            trace.append(8 + i, 900 + i, 1000, f"solo-{i:05d}")
        return trace

    def test_solo_miners_never_count_as_pools(self):
        trace = self.build_trace()
        series = trace_top_n_share_series(trace, top_n=1)
        # bigpool has 8 of 10 blocks; the solos are denominators only.
        assert series.values == [80.0]

    def test_start_ts_filter(self):
        trace = self.build_trace()
        series = trace_top_n_share_series(trace, top_n=1, start_ts=850)
        assert series.values == [0.0]  # only solo blocks remain


class TestMigration:
    def test_same_pools_before_and_after(self):
        pre = [(0, name) for name in "aabbbcc"]
        post = [(DAY, name) for name in "aabbccc"]
        assert migration_consistency(pre, post, top_n=3) == 1.0

    def test_disjoint_pools(self):
        pre = [(0, "a"), (0, "b")]
        post = [(DAY, "x"), (DAY, "y")]
        assert migration_consistency(pre, post, top_n=2) == 0.0

    def test_partial_overlap(self):
        pre = [(0, "a"), (0, "b")]
        post = [(DAY, "a"), (DAY, "x")]
        assert migration_consistency(pre, post, top_n=2) == pytest.approx(1 / 3)


class TestConvergence:
    def test_detects_convergence_day(self):
        timestamps = [d * DAY for d in range(40)]
        stable = TimeSeries(timestamps, [80.0] * 40)
        # climber converges at day 20 and stays within tolerance.
        climber_values = [40.0 + 2.0 * d for d in range(20)] + [79.0] * 20
        climber = TimeSeries(timestamps, climber_values)
        day = convergence_day(stable, climber, tolerance=8.0, sustain_days=10)
        assert day is not None
        assert day / DAY == pytest.approx(18, abs=3)

    def test_no_convergence_returns_none(self):
        timestamps = [d * DAY for d in range(30)]
        a = TimeSeries(timestamps, [80.0] * 30)
        b = TimeSeries(timestamps, [20.0] * 30)
        assert convergence_day(a, b) is None

    def test_transient_touch_does_not_count(self):
        timestamps = [d * DAY for d in range(30)]
        a = TimeSeries(timestamps, [80.0] * 30)
        values = [20.0] * 10 + [79.0] * 3 + [20.0] * 17  # brief touch
        b = TimeSeries(timestamps, values)
        assert convergence_day(a, b, sustain_days=5) is None
