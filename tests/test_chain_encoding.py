"""RLP encoding/decoding: known vectors, strictness, and round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain import encoding
from repro.chain.encoding import (
    RLPDecodingError,
    RLPEncodingError,
    decode,
    decode_int,
    encode,
    encode_int,
)


class TestKnownVectors:
    """Vectors from the Ethereum RLP specification."""

    def test_empty_string(self):
        assert encode(b"") == b"\x80"

    def test_single_low_byte_encodes_as_itself(self):
        assert encode(b"\x00") == b"\x00"
        assert encode(b"\x7f") == b"\x7f"

    def test_single_high_byte_gets_prefix(self):
        assert encode(b"\x80") == b"\x81\x80"

    def test_short_string(self):
        assert encode(b"dog") == b"\x83dog"

    def test_55_byte_string_is_short_form(self):
        payload = b"a" * 55
        assert encode(payload) == bytes([0x80 + 55]) + payload

    def test_56_byte_string_is_long_form(self):
        payload = b"a" * 56
        assert encode(payload) == b"\xb8\x38" + payload

    def test_empty_list(self):
        assert encode([]) == b"\xc0"

    def test_nested_list(self):
        # [ [], [[]], [ [], [[]] ] ] — the canonical spec example.
        assert encode([[], [[]], [[], [[]]]]) == bytes.fromhex(
            "c7c0c1c0c3c0c1c0"
        )

    def test_cat_dog_list(self):
        assert encode([b"cat", b"dog"]) == b"\xc8\x83cat\x83dog"

    def test_integer_zero_is_empty_string(self):
        assert encode(0) == b"\x80"

    def test_small_integer(self):
        assert encode(15) == b"\x0f"

    def test_1024(self):
        assert encode(1024) == b"\x82\x04\x00"


class TestEncodeInt:
    def test_zero(self):
        assert encode_int(0) == b""

    def test_minimal_bytes(self):
        assert encode_int(255) == b"\xff"
        assert encode_int(256) == b"\x01\x00"

    def test_negative_rejected(self):
        with pytest.raises(RLPEncodingError):
            encode_int(-1)

    def test_decode_int_rejects_leading_zero(self):
        with pytest.raises(RLPDecodingError):
            decode_int(b"\x00\x01")

    def test_decode_int_round_trip(self):
        for value in (0, 1, 127, 128, 255, 2**64, 2**255):
            assert decode_int(encode_int(value)) == value


class TestStrictDecoding:
    def test_trailing_bytes_rejected(self):
        with pytest.raises(RLPDecodingError):
            decode(encode(b"dog") + b"\x00")

    def test_truncated_string_rejected(self):
        with pytest.raises(RLPDecodingError):
            decode(b"\x83do")

    def test_single_byte_encoded_long_rejected(self):
        # 0x81 0x05 should have been just 0x05.
        with pytest.raises(RLPDecodingError):
            decode(b"\x81\x05")

    def test_long_form_for_short_payload_rejected(self):
        # 0xb8 0x02 'ab' should have used the short form.
        with pytest.raises(RLPDecodingError):
            decode(b"\xb8\x02ab")

    def test_length_with_leading_zero_rejected(self):
        with pytest.raises(RLPDecodingError):
            decode(b"\xb9\x00\x38" + b"a" * 56)

    def test_empty_input_rejected(self):
        with pytest.raises(RLPDecodingError):
            decode(b"")

    def test_non_bytes_input_rejected(self):
        with pytest.raises(RLPDecodingError):
            decode("not bytes")

    def test_list_payload_extending_past_end(self):
        with pytest.raises(RLPDecodingError):
            decode(b"\xc8\x83cat")


class TestEncodeErrors:
    def test_bool_rejected(self):
        with pytest.raises(RLPEncodingError):
            encode(True)

    def test_unsupported_type_rejected(self):
        with pytest.raises(RLPEncodingError):
            encode(3.14)

    def test_str_encodes_as_utf8(self):
        assert decode(encode("dog")) == b"dog"


rlp_values = st.recursive(
    st.binary(max_size=80),
    lambda children: st.lists(children, max_size=6),
    max_leaves=20,
)


class TestRoundTripProperties:
    @given(rlp_values)
    @settings(max_examples=200)
    def test_decode_inverts_encode(self, value):
        assert decode(encode(value)) == value

    @given(st.integers(min_value=0, max_value=2**256 - 1))
    def test_integers_round_trip_via_bytes(self, value):
        assert decode_int(decode(encode(value))) == value

    @given(rlp_values, rlp_values)
    def test_distinct_values_encode_distinctly(self, a, b):
        if a != b:
            assert encode(a) != encode(b)

    @given(st.binary(max_size=300))
    def test_decoder_never_crashes_unexpectedly(self, garbage):
        """Arbitrary bytes either decode or raise RLPDecodingError."""
        try:
            decode(garbage)
        except RLPDecodingError:
            pass
