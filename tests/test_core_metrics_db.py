"""Database-backed metric variants (the record-level analysis path)."""

import pytest

from repro.core.metrics import (
    block_delta_series,
    blocks_per_hour,
    contract_fraction_per_day,
    daily_mean_difficulty,
    difficulty_series,
    transactions_per_day,
)
from repro.data.records import BlockRecord, TxRecord
from repro.data.store import ChainDatabase
from repro.data.windows import DAY, HOUR


@pytest.fixture
def db():
    database = ChainDatabase()
    blocks = []
    ts = 0
    for number in range(1, 8):
        ts += 600  # ten-minute spacing: 6 blocks/hour
        blocks.append(
            BlockRecord(
                chain="ETH", number=number, timestamp=ts,
                difficulty=1000 * number, miner="p", tx_count=2,
                contract_tx_count=1,
            )
        )
    database.insert_blocks(blocks)
    txs = []
    for index in range(10):
        txs.append(
            TxRecord(
                chain="ETH", tx_hash=bytes([index]) * 4, block_number=1,
                timestamp=index * (DAY // 5), sender=b"\x01" * 20,
                to=b"\x02" * 20, value=1, is_contract=(index % 2 == 0),
                replay_protected=False,
            )
        )
    database.insert_transactions(txs)
    return database


class TestDbMetrics:
    def test_blocks_per_hour(self, db):
        series = blocks_per_hour(db, "ETH")
        assert series.values[0] == 5.0  # blocks at 600..3000
        assert series.values[1] == 2.0

    def test_difficulty_series(self, db):
        series = difficulty_series(db, "ETH")
        assert series.values[0] == 1000.0
        assert series.values[-1] == 7000.0

    def test_block_delta_series(self, db):
        series = block_delta_series(db, "ETH")
        assert set(series.values) == {600.0}
        assert len(series) == 6

    def test_daily_mean_difficulty(self, db):
        series = daily_mean_difficulty(db, "ETH")
        assert series.values[0] == pytest.approx(4000.0)  # mean of 1k..7k

    def test_transactions_per_day(self, db):
        series = transactions_per_day(db, "ETH")
        assert sum(series.values) == 10

    def test_contract_fraction_per_day(self, db):
        series = contract_fraction_per_day(db, "ETH")
        # Days 0 and 1 each hold 5 txs alternating contract/plain.
        for value in series.values:
            assert value == pytest.approx(0.6) or value == pytest.approx(0.4)

    def test_empty_chain_yields_empty_series(self, db):
        assert blocks_per_hour(db, "missing").is_empty()
        assert transactions_per_day(db, "missing").is_empty()
