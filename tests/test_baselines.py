"""Baseline difficulty rules: the ablation comparators."""

import pytest

from repro.baselines.bitcoin_difficulty import (
    BitcoinDifficulty,
    EmergencyDifficulty,
    ethereum_recovery_stepper,
    simulate_recovery,
)


class TestBitcoinRule:
    def test_no_change_within_window(self):
        rule = BitcoinDifficulty(target_block_time=14.0)
        difficulty = 1_000_000
        for block in range(2015):
            difficulty_after = rule.next_difficulty(difficulty, block * 14.0)
            assert difficulty_after == difficulty

    def test_retarget_after_window_slow_blocks(self):
        rule = BitcoinDifficulty(target_block_time=14.0)
        difficulty = 1_000_000
        # Blocks at 28 s (twice the target) across the whole window.
        for block in range(1, 2017):
            difficulty = rule.next_difficulty(difficulty, block * 28.0)
        assert difficulty == pytest.approx(500_000, rel=0.01)

    def test_retarget_clamped_at_4x(self):
        rule = BitcoinDifficulty(target_block_time=14.0)
        difficulty = 1_000_000
        # Absurdly slow blocks: 100x the target.
        for block in range(1, 2017):
            difficulty = rule.next_difficulty(difficulty, block * 1400.0)
        assert difficulty == 250_000  # capped at /4, not /100


class TestEmergencyRule:
    def test_eda_cuts_after_long_gap(self):
        rule = EmergencyDifficulty(target_block_time=14.0)
        difficulty = 1_000_000
        # Seven blocks spanning far beyond the (scaled) 12-hour trigger.
        for block in range(7):
            difficulty = rule.next_difficulty(difficulty, block * 10_000.0)
        assert difficulty < 1_000_000

    def test_eda_inactive_at_target_rate(self):
        rule = EmergencyDifficulty(target_block_time=14.0)
        difficulty = 1_000_000
        for block in range(100):
            difficulty = rule.next_difficulty(difficulty, block * 14.0)
        assert difficulty == 1_000_000


class TestRecoveryRace:
    """The abl-diff experiment's core claim at test scale: Ethereum's
    per-block rule recovers from the fork-scale hashpower exodus orders
    of magnitude faster than Bitcoin's windowed rule; the EDA sits
    between."""

    HASHRATE = 4.8e10  # 1% of the pre-fork network
    DIFFICULTY = int(4.8e12 * 14)

    def run(self, name, stepper, horizon=90 * 86_400.0):
        return simulate_recovery(
            name, stepper, self.DIFFICULTY, self.HASHRATE,
            horizon_seconds=horizon, seed=11,
        )

    def test_ethereum_recovers_in_days(self):
        outcome = self.run("homestead", ethereum_recovery_stepper())
        assert outcome.recovery_seconds is not None
        assert outcome.recovery_days < 4

    def test_bitcoin_rule_stalls_for_months(self):
        rule = BitcoinDifficulty(target_block_time=14.0)
        outcome = self.run("bitcoin", rule.next_difficulty)
        assert (
            outcome.recovery_seconds is None
            or outcome.recovery_days > 30
        )

    def test_eda_beats_plain_bitcoin(self):
        eda = EmergencyDifficulty(target_block_time=14.0)
        eda_outcome = self.run("bch-eda", eda.next_difficulty)
        plain = BitcoinDifficulty(target_block_time=14.0)
        plain_outcome = self.run("bitcoin", plain.next_difficulty)
        assert eda_outcome.recovery_seconds is not None
        eda_days = eda_outcome.recovery_days
        plain_days = (
            plain_outcome.recovery_days
            if plain_outcome.recovery_seconds is not None
            else float("inf")
        )
        assert eda_days < plain_days

    def test_recovery_outcome_reports_peak_interval(self):
        outcome = self.run("homestead", ethereum_recovery_stepper())
        assert outcome.peak_interval_seconds > 600
        assert outcome.blocks_produced > 0
