"""Topology suite: seeded graph builders, spec contract, bootstrap seam.

The sweep caches topology cells by the canonical JSON of their config,
so the same soundness precondition applies as for the simulation seeds:
a :class:`TopologySpec` must realize the byte-identical graph (edges,
regions, digest) in this process and in a subprocess that re-imports
everything from scratch.
"""

import os
import subprocess
import sys
from dataclasses import replace

import pytest

import repro
from repro.chain.chainstore import Blockchain
from repro.chain.config import ETH_CONFIG
from repro.chain.genesis import build_genesis
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.net.node import FullNode
from repro.net.simulator import Simulator
from repro.net.topology import (
    DEFAULT_REGIONS,
    TOPOLOGY_KINDS,
    BuiltTopology,
    TopologySpec,
    build_topology,
    default_names,
)

CFG = replace(ETH_CONFIG, dao_fork_block=10**9, bomb_delay=10**9)


def make_network(names, seed=1):
    genesis, _ = build_genesis({})
    sim = Simulator()
    net = Network(sim, latency=ConstantLatency(0.01), seed=seed)
    for index, name in enumerate(names):
        net.add_node(
            FullNode(
                name,
                Blockchain(CFG, genesis, execute_transactions=False),
                rng_seed=index,
                max_peers=len(names) + 4,
            )
        )
    return sim, net


class TestTopologySpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown topology kind"):
            TopologySpec(kind="banana", num_nodes=10)

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError, match="num_nodes"):
            TopologySpec(kind="uniform", num_nodes=1)
        with pytest.raises(ValueError, match="target_degree"):
            TopologySpec(kind="uniform", num_nodes=5, target_degree=5)
        with pytest.raises(ValueError, match="target_degree"):
            TopologySpec(kind="uniform", num_nodes=5, target_degree=0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="gamma"):
            TopologySpec(kind="powerlaw", num_nodes=10, gamma=1.0)
        with pytest.raises(ValueError, match="intra_bias"):
            TopologySpec(kind="geo", num_nodes=10, intra_bias=1.5)
        with pytest.raises(ValueError, match="rewire_p"):
            TopologySpec(kind="smallworld", num_nodes=10, rewire_p=-0.1)
        with pytest.raises(ValueError, match="parallel"):
            TopologySpec(
                kind="geo", num_nodes=10,
                regions=("na", "eu"), region_weights=(1.0,),
            )
        with pytest.raises(ValueError, match="positive"):
            TopologySpec(
                kind="geo", num_nodes=10,
                regions=("na", "eu"), region_weights=(1.0, 0.0),
            )

    def test_round_trip_and_digest(self):
        spec = TopologySpec(
            kind="geo", num_nodes=20, target_degree=5, seed=9,
            intra_bias=0.8,
        )
        clone = TopologySpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.digest() == spec.digest()

    def test_from_dict_rejects_unknown_fields(self):
        payload = TopologySpec(kind="uniform", num_nodes=10).to_dict()
        payload["surprise"] = 1
        with pytest.raises(ValueError, match="unknown TopologySpec fields"):
            TopologySpec.from_dict(payload)

    def test_list_and_tuple_inputs_compare_equal(self):
        # JSON round-trips hand back lists; the spec must normalize so
        # cache keys do not depend on the container type.
        a = TopologySpec(
            kind="geo", num_nodes=10,
            regions=["na", "eu"], region_weights=[1, 1],
        )
        b = TopologySpec(
            kind="geo", num_nodes=10,
            regions=("na", "eu"), region_weights=(1.0, 1.0),
        )
        assert a == b
        assert a.digest() == b.digest()

    def test_default_names_are_sorted_and_padded(self):
        names = default_names(12)
        assert names[0] == "n000" and names[-1] == "n011"
        assert list(names) == sorted(names)
        assert len(set(names)) == 12
        wide = default_names(1500)
        assert list(wide) == sorted(wide)


class TestBuilders:
    @pytest.mark.parametrize("kind", TOPOLOGY_KINDS)
    @pytest.mark.parametrize("seed", [0, 7, 20160720])
    def test_connected_at_all_kinds_and_seeds(self, kind, seed):
        spec = TopologySpec(kind=kind, num_nodes=24, target_degree=4,
                            seed=seed)
        built = build_topology(spec)
        assert built.is_connected()
        assert all(a < b for a, b in built.edges)
        assert list(built.edges) == sorted(set(built.edges))

    @pytest.mark.parametrize("kind", TOPOLOGY_KINDS)
    def test_same_seed_is_byte_identical_in_process(self, kind):
        spec = TopologySpec(kind=kind, num_nodes=30, target_degree=6,
                            seed=42)
        a = build_topology(spec)
        b = build_topology(spec)
        assert a.edges == b.edges
        assert a.regions == b.regions
        assert a.digest() == b.digest()

    @pytest.mark.parametrize("kind", TOPOLOGY_KINDS)
    def test_seed_changes_graph(self, kind):
        if kind == "ring":
            pytest.skip("ring lattice is seed-independent by design")
        base = TopologySpec(kind=kind, num_nodes=30, target_degree=6,
                            seed=1)
        other = replace(base, seed=2)
        assert build_topology(base).digest() != build_topology(other).digest()

    def test_powerlaw_is_more_skewed_than_uniform(self):
        uniform = build_topology(
            TopologySpec(kind="uniform", num_nodes=60, target_degree=6,
                         seed=5)
        )
        powerlaw = build_topology(
            TopologySpec(kind="powerlaw", num_nodes=60, target_degree=6,
                         seed=5)
        )
        u_stats = uniform.degree_stats()
        p_stats = powerlaw.degree_stats()
        assert p_stats["degree_gini"] > u_stats["degree_gini"]
        assert p_stats["degree_max"] > u_stats["degree_max"]

    def test_powerlaw_respects_max_degree(self):
        spec = TopologySpec(kind="powerlaw", num_nodes=60, target_degree=6,
                            seed=5, max_degree=9)
        built = build_topology(spec)
        # The configuration model only ever *drops* stubs, so the cap is
        # an upper bound on realized degree (bridging adds at most a
        # handful of component-stitching edges).
        assert built.degree_stats()["degree_max"] <= 9 + 2

    def test_geo_assigns_every_node_a_known_region(self):
        spec = TopologySpec(kind="geo", num_nodes=40, target_degree=6,
                            seed=3)
        built = build_topology(spec)
        assert set(built.regions) == set(built.names)
        assert set(built.regions.values()) <= set(DEFAULT_REGIONS)

    def test_geo_intra_bias_localizes_edges(self):
        def intra_fraction(bias):
            spec = TopologySpec(kind="geo", num_nodes=60, target_degree=6,
                                seed=11, intra_bias=bias)
            built = build_topology(spec)
            intra = sum(
                1 for a, b in built.edges
                if built.regions[a] == built.regions[b]
            )
            return intra / len(built.edges)

        assert intra_fraction(0.9) > intra_fraction(0.0)

    def test_ring_is_regular(self):
        spec = TopologySpec(kind="ring", num_nodes=20, target_degree=4,
                            seed=0)
        built = build_topology(spec)
        assert set(built.degrees().values()) == {4}

    def test_smallworld_rewires_some_ring_edges(self):
        ring = build_topology(
            TopologySpec(kind="ring", num_nodes=40, target_degree=4, seed=0)
        )
        small = build_topology(
            TopologySpec(kind="smallworld", num_nodes=40, target_degree=4,
                         seed=0, rewire_p=0.3)
        )
        assert set(small.edges) != set(ring.edges)
        assert small.is_connected()

    def test_custom_names_validated(self):
        spec = TopologySpec(kind="uniform", num_nodes=4, target_degree=2)
        with pytest.raises(ValueError, match="expected 4 names"):
            build_topology(spec, names=["a", "b"])
        with pytest.raises(ValueError, match="unique"):
            build_topology(spec, names=["a", "b", "c", "a"])
        built = build_topology(spec, names=["d", "c", "b", "a"])
        assert set(built.names) == {"a", "b", "c", "d"}

    def test_built_topology_round_trip_digest(self):
        spec = TopologySpec(kind="geo", num_nodes=12, target_degree=4,
                            seed=2)
        built = build_topology(spec)
        payload = built.to_dict()
        clone = BuiltTopology(
            spec=TopologySpec.from_dict(payload["spec"]),
            names=tuple(payload["names"]),
            edges=tuple((a, b) for a, b in payload["edges"]),
            regions=dict(payload["regions"]),
        )
        assert clone.digest() == built.digest()


SUBPROCESS_DIGEST = """
import sys
from repro.net.topology import TopologySpec, build_topology
spec = TopologySpec.from_dict(eval(sys.argv[1]))
print(build_topology(spec).digest())
"""


class TestSubprocessDeterminism:
    @pytest.mark.parametrize("kind", ["uniform", "powerlaw", "geo"])
    def test_fresh_interpreter_digest_matches(self, kind):
        # A fresh interpreter re-imports everything from scratch — the
        # strict equivalent of a spawn-start worker for a pure builder.
        spec = TopologySpec(kind=kind, num_nodes=30, target_degree=6,
                            seed=99)
        local = build_topology(spec).digest()
        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir
        out = subprocess.run(
            [sys.executable, "-c", SUBPROCESS_DIGEST, repr(spec.to_dict())],
            capture_output=True, text=True, env=env, check=True,
        )
        assert out.stdout.strip() == local


class TestBootstrapFromTopology:
    def test_realized_peers_equal_topology_edges(self):
        spec = TopologySpec(kind="uniform", num_nodes=10, target_degree=3,
                            seed=4)
        built = build_topology(spec)
        sim, net = make_network(built.names)
        net.bootstrap_from_topology(built, extra_routing=4)
        sim.run_all()
        realized = set()
        for name in built.names:
            for peer in net.nodes[name].peers:
                realized.add((min(name, peer), max(name, peer)))
        assert realized == set(built.edges)

    def test_routing_seeded_with_neighbors_not_self(self):
        spec = TopologySpec(kind="uniform", num_nodes=12, target_degree=3,
                            seed=6)
        built = build_topology(spec)
        sim, net = make_network(built.names)
        net.bootstrap_from_topology(built, extra_routing=5)
        neighbors = built.neighbors()
        for name in built.names:
            node = net.nodes[name]
            assert name not in node.routing
            for peer in neighbors[name]:
                assert peer in node.routing

    def test_geo_regions_applied_to_nodes(self):
        spec = TopologySpec(kind="geo", num_nodes=12, target_degree=3,
                            seed=8)
        built = build_topology(spec)
        sim, net = make_network(built.names)
        net.bootstrap_from_topology(built)
        for name in built.names:
            assert net.nodes[name].region == built.regions[name]

    def test_apply_regions_false_leaves_regions_alone(self):
        spec = TopologySpec(kind="geo", num_nodes=12, target_degree=3,
                            seed=8)
        built = build_topology(spec)
        sim, net = make_network(built.names)
        before = {name: net.nodes[name].region for name in built.names}
        net.bootstrap_from_topology(built, apply_regions=False)
        assert {name: net.nodes[name].region for name in built.names} == before

    def test_missing_node_raises(self):
        spec = TopologySpec(kind="uniform", num_nodes=6, target_degree=2,
                            seed=1)
        built = build_topology(spec)
        sim, net = make_network(built.names[:-1])
        with pytest.raises(ValueError, match="absent from network"):
            net.bootstrap_from_topology(built)

    def test_extra_nodes_left_untouched(self):
        spec = TopologySpec(kind="uniform", num_nodes=6, target_degree=2,
                            seed=1)
        built = build_topology(spec)
        sim, net = make_network(list(built.names) + ["observer"])
        net.bootstrap_from_topology(built)
        sim.run_all()
        observer = net.nodes["observer"]
        assert not observer.peers
        assert len(observer.routing) == 0


class TestBootstrapMeshLegacyQuirk:
    def test_mesh_samples_population_including_self(self):
        # ``bootstrap_mesh`` draws ``sample_size + 1`` names from the
        # *full* population — including the sampling node itself — and
        # then filters self out.  Nodes that happen to draw themselves
        # see ``sample_size`` candidates; nodes that don't see
        # ``sample_size + 1``.  This asymmetry is a historical quirk kept
        # verbatim because the pinned scenario digests replay through it;
        # ``bootstrap_from_topology`` is the corrected path (exactly
        # ``extra_routing`` extras, sampled excluding self).
        names = [f"m{i:02d}" for i in range(30)]
        sim, net = make_network(names, seed=5)
        net.bootstrap_mesh(target_degree=2)
        sample_size = min(len(names) - 1, max(2 * 3, 16))  # == 16 here
        counts = set()
        for name in names:
            node = net.nodes[name]
            assert name not in node.routing
            counts.add(len(node.routing))
        assert counts <= {sample_size, sample_size + 1}
        # With 30 nodes the self-draw has probability 17/30 per node, so
        # a fixed seed reliably exhibits both outcomes.
        assert counts == {sample_size, sample_size + 1}
