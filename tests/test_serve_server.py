"""End-to-end: the scenario service over real HTTP.

Covers the acceptance criteria for the serving layer:

* determinism — a scenario submitted via HTTP returns the same
  canonical-JSON digest as the identical config run through
  ``execute_job`` locally;
* single-flight — two concurrent identical POSTs execute the engine
  once (dedupe metric counts exactly one duplicate) and both callers
  receive the same digest;
* durability — a restarted server answers the same config from the
  SQLite store without recomputation;
* streaming — the SSE endpoint delivers progress events and terminates
  with the digest;
* quotas — a tenant over budget gets 429 while others proceed.
"""

import http.client
import json
import threading
import time

import pytest

from repro.harness import JobSpec, NullCache, execute_job
from repro.serve import BackgroundServer, ServeConfig
from repro.serve.summary import summarize, summary_digest

TEST_KINDS = (
    "partition", "selftest-echo", "selftest-sleep", "fork-lengths",
)

TINY_PARTITION = {
    "config": {
        "num_nodes": 6,
        "num_miners": 2,
        "post_fork_horizon": 120.0,
        "census_interval": 30.0,
        "fork_block": 10,
    }
}


def make_config(tmp_path, **overrides):
    options = dict(
        port=0,
        cache_dir=str(tmp_path / "cache"),
        db_path=str(tmp_path / "serve.db"),
        allowed_kinds=TEST_KINDS,
        drain_timeout=30.0,
    )
    options.update(overrides)
    return ServeConfig(**options)


def request(port, method, path, payload=None, headers=None, timeout=60):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    body = None
    all_headers = dict(headers or {})
    if payload is not None:
        body = json.dumps(payload)
        all_headers.setdefault("Content-Type", "application/json")
    conn.request(method, path, body, all_headers)
    response = conn.getresponse()
    raw = response.read()
    conn.close()
    return response.status, (json.loads(raw) if raw else None)


def post_job(port, kind, params, headers=None):
    return request(port, "POST", "/jobs", {"kind": kind, "params": params},
                   headers=headers)


def wait_for_job(port, key, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, snapshot = request(port, "GET", f"/jobs/{key}")
        assert status == 200
        if snapshot["state"] in ("ok", "failed", "timeout"):
            return snapshot
        time.sleep(0.05)
    raise AssertionError(f"job {key} did not finish in {timeout}s")


def read_sse(port, key, timeout=60):
    """Every (event, data) frame until the stream ends."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    conn.request("GET", f"/jobs/{key}/events")
    response = conn.getresponse()
    assert response.status == 200
    assert response.getheader("Content-Type") == "text/event-stream"
    frames = []
    event = None
    for raw in response:
        line = raw.decode("utf-8").rstrip("\n")
        if line.startswith("event: "):
            event = line[len("event: "):]
        elif line.startswith("data: "):
            frames.append((event, json.loads(line[len("data: "):])))
    conn.close()
    return frames


class TestEndToEnd:
    def test_differential_digest_and_sse(self, tmp_path):
        """HTTP execution == local execution, byte-identical digest."""
        with BackgroundServer(make_config(tmp_path)) as bg:
            status, first = post_job(bg.port, "partition", TINY_PARTITION)
            assert status == 202
            assert first["source"] == "executed"
            snapshot = wait_for_job(bg.port, first["job"])
            assert snapshot["state"] == "ok"
            served_digest = snapshot["digest"]

            # SSE after completion replays history through the digest.
            frames = read_sse(bg.port, first["job"])
            events = [event for event, _ in frames]
            assert events[0] == "queued"
            assert "started" in events
            assert "progress" in events
            assert events[-1] == "done"
            assert frames[-1][1]["digest"] == served_digest

            # The summary is durably queryable by digest.
            status, result = request(
                bg.port, "GET", f"/results/{served_digest}"
            )
            assert status == 200
            assert result["kind"] == "partition"
            assert result["summary"]["type"] == "PartitionResult"

        spec = JobSpec.make("partition", TINY_PARTITION)
        outcome = execute_job(spec, NullCache())
        local_digest = summary_digest(summarize("partition", outcome.value))
        assert served_digest == local_digest

    def test_concurrent_identical_posts_dedupe(self, tmp_path):
        with BackgroundServer(make_config(tmp_path)) as bg:
            params = {"seconds": 0.5}
            results = []

            def submit():
                results.append(post_job(bg.port, "selftest-sleep", params))

            threads = [threading.Thread(target=submit) for _ in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            keys = {payload["job"] for _, payload in results}
            assert len(keys) == 1  # single-flight: one job id
            sources = sorted(payload["source"] for _, payload in results)
            assert sources == ["executed", "inflight"]
            snapshot = wait_for_job(bg.port, keys.pop())
            assert snapshot["state"] == "ok"

            status, metrics = request(bg.port, "GET", "/metrics")
            assert status == 200
            counters = metrics["metrics"]["counters"]
            assert counters["serve.jobs.submitted"] == 1
            assert counters["serve.jobs.deduped"] == 1  # exactly 1 duplicate
            assert metrics["derived"]["dedupe_ratio"] == pytest.approx(0.5)

    def test_restart_serves_from_durable_store(self, tmp_path):
        config = make_config(tmp_path)
        with BackgroundServer(config) as bg:
            status, first = post_job(bg.port, "selftest-echo", {"value": 11})
            digest = wait_for_job(bg.port, first["job"])["digest"]

        # Fresh process-equivalent: new server, new (empty) cache dir,
        # same durable store — the answer must come from SQLite.
        config2 = make_config(
            tmp_path, cache_dir=str(tmp_path / "cache-b")
        )
        with BackgroundServer(config2) as bg:
            status, replay = post_job(bg.port, "selftest-echo", {"value": 11})
            assert status == 200
            assert replay["source"] == "store"
            assert replay["state"] == "ok"
            assert replay["digest"] == digest

            status, metrics = request(bg.port, "GET", "/metrics")
            counters = metrics["metrics"]["counters"]
            assert "serve.jobs.submitted" not in counters  # nothing ran
            assert counters["serve.jobs.replayed_store"] == 1
            assert metrics["store"]["results"] == 1

    def test_second_post_after_completion_is_memory_hit(self, tmp_path):
        with BackgroundServer(make_config(tmp_path)) as bg:
            _, first = post_job(bg.port, "selftest-echo", {"value": 5})
            wait_for_job(bg.port, first["job"])
            status, second = post_job(bg.port, "selftest-echo", {"value": 5})
            assert status == 200
            assert second["source"] == "memory"
            assert second["digest"] == first.get("digest") or second["digest"]

    def test_tenant_quota_returns_429(self, tmp_path):
        config = make_config(
            tmp_path, tenant_max_inflight=1, tenant_max_queued=0,
            max_inflight=10,
        )
        with BackgroundServer(config) as bg:
            alice = {"X-Repro-Tenant": "alice"}
            status, first = post_job(
                bg.port, "selftest-sleep", {"seconds": 1.0}, headers=alice
            )
            assert status == 202
            # Wait for the job to actually start (queued slots don't
            # count against max_inflight until then).
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                _, snap = request(bg.port, "GET", f"/jobs/{first['job']}")
                if snap["state"] == "running":
                    break
                time.sleep(0.02)
            status, refusal = post_job(
                bg.port, "selftest-sleep", {"seconds": 2.0}, headers=alice
            )
            assert status == 429
            assert "quota" in refusal["error"]
            # Another tenant is still admitted.
            status, ok = post_job(
                bg.port, "selftest-sleep", {"seconds": 0.05},
                headers={"X-Repro-Tenant": "bob"},
            )
            assert status == 202
            wait_for_job(bg.port, first["job"])
            wait_for_job(bg.port, ok["job"])

    def test_validation_errors(self, tmp_path):
        with BackgroundServer(make_config(tmp_path)) as bg:
            status, payload = request(bg.port, "POST", "/jobs", {"params": {}})
            assert status == 400 and "kind" in payload["error"]
            status, payload = post_job(bg.port, "not-a-kind", {})
            assert status == 400
            status, payload = request(bg.port, "GET", "/jobs/deadbeef")
            assert status == 404
            status, payload = request(bg.port, "GET", "/results/deadbeef")
            assert status == 404
            status, payload = request(bg.port, "GET", "/nope")
            assert status == 404
            status, payload = request(bg.port, "DELETE", "/jobs")
            assert status == 405

    def test_healthz(self, tmp_path):
        with BackgroundServer(make_config(tmp_path)) as bg:
            status, payload = request(bg.port, "GET", "/healthz")
            assert status == 200
            assert payload["ok"] is True
            assert payload["draining"] is False

    def test_graceful_stop_drains_inflight_job(self, tmp_path):
        config = make_config(tmp_path)
        bg = BackgroundServer(config).start()
        try:
            _, first = post_job(bg.port, "selftest-sleep", {"seconds": 0.5})
            key = first["job"]
        finally:
            bg.stop()
        # The drain let the job land in the durable store.
        from repro.data.resultstore import ResultStore

        with ResultStore(config.db_path) as store:
            row = store.get_job(key)
            assert row is not None
            assert row.status == "ok"

    def test_cache_shared_with_local_harness(self, tmp_path):
        """A result precomputed by run-all's cache is a serve cache hit."""
        cache_dir = tmp_path / "cache"
        from repro.harness import ResultCache

        spec = JobSpec.make("selftest-echo", {"value": 99})
        execute_job(spec, ResultCache(cache_dir))  # warm the pickle cache

        with BackgroundServer(make_config(tmp_path)) as bg:
            _, first = post_job(bg.port, "selftest-echo", {"value": 99})
            snapshot = wait_for_job(bg.port, first["job"])
            assert snapshot["state"] == "ok"
            status, metrics = request(bg.port, "GET", "/metrics")
            counters = metrics["metrics"]["counters"]
            assert counters.get("serve.cache.hits", 0) == 1
