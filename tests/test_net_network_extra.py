"""Network harness extras: census, transport, lifecycle, latency models."""

import random
import warnings
from dataclasses import replace

import pytest

from repro.chain.chainstore import Blockchain
from repro.chain.config import ETC_CONFIG, ETH_CONFIG
from repro.chain.genesis import build_genesis
from repro.net.latency import (
    ConstantLatency,
    GeographicLatency,
    LognormalLatency,
    UniformLatency,
)
from repro.net.messages import Ping
from repro.net.network import Network
from repro.net.node import FullNode
from repro.net.simulator import Simulator

CFG = replace(ETH_CONFIG, dao_fork_block=10**9, bomb_delay=10**9)


def tiny_network(n=3, seed=1):
    genesis, _ = build_genesis({})
    sim = Simulator()
    net = Network(sim, latency=ConstantLatency(0.01), seed=seed)
    nodes = [
        FullNode(f"n{i}", Blockchain(CFG, genesis, execute_transactions=False),
                 rng_seed=i)
        for i in range(n)
    ]
    for node in nodes:
        net.add_node(node)
    return sim, net, nodes


class TestTransport:
    def test_message_counted_and_delivered(self):
        sim, net, nodes = tiny_network()
        received = []
        nodes[1].receive = lambda msg: received.append(msg)
        net.send("n0", "n1", Ping(sender_id="n0"))
        sim.run_all()
        assert net.messages_sent == 1
        assert len(received) == 1

    def test_offline_destination_drops(self):
        sim, net, nodes = tiny_network()
        nodes[1].go_offline()
        net.send("n0", "n1", Ping(sender_id="n0"))
        sim.run_all()
        assert net.messages_undeliverable == 1
        assert net.messages_sent == 0

    def test_unknown_destination_drops(self):
        sim, net, _ = tiny_network()
        net.send("n0", "ghost", Ping(sender_id="n0"))
        assert net.messages_undeliverable == 1

    def test_loss_rate(self):
        genesis, _ = build_genesis({})
        sim = Simulator()
        net = Network(sim, latency=ConstantLatency(0.01), seed=3,
                      loss_rate=0.5)
        a = FullNode("a", Blockchain(CFG, genesis, execute_transactions=False))
        b = FullNode("b", Blockchain(CFG, genesis, execute_transactions=False))
        net.add_node(a)
        net.add_node(b)
        for _ in range(200):
            net.send("a", "b", Ping(sender_id="a"))
        assert 50 < net.messages_lost < 150

    def test_invalid_loss_rate(self):
        with pytest.raises(ValueError):
            Network(Simulator(), loss_rate=1.0)

    def test_duplicate_node_name_rejected(self):
        sim, net, nodes = tiny_network()
        genesis, _ = build_genesis({})
        with pytest.raises(ValueError):
            net.add_node(
                FullNode("n0", Blockchain(CFG, genesis,
                                          execute_transactions=False))
            )

    def test_remove_node(self):
        sim, net, nodes = tiny_network()
        net.remove_node("n1")
        assert "n1" not in net.nodes
        assert not nodes[1].online

    def test_remove_node_evicts_from_peers_and_routing(self):
        sim, net, nodes = tiny_network()
        nodes[0].dial("n1")
        sim.run_all()
        assert "n1" in nodes[0].peers
        assert "n1" in nodes[0].routing
        net.remove_node("n1")
        assert "n1" not in nodes[0].peers
        assert "n1" not in nodes[0].routing
        # The census must not count links to a node that no longer exists.
        assert net.mean_peer_count() == 0.0


class TestDropCounters:
    def test_undeliverable_vs_lost_split(self):
        sim, net, nodes = tiny_network()
        nodes[1].go_offline()
        net.send("n0", "n1", Ping(sender_id="n0"))
        net.send("n0", "ghost", Ping(sender_id="n0"))
        assert net.messages_undeliverable == 2
        assert net.messages_lost == 0
        assert net.messages_blocked == 0

    def test_sampled_loss_counts_as_lost(self):
        genesis, _ = build_genesis({})
        sim = Simulator()
        net = Network(sim, latency=ConstantLatency(0.01), seed=3,
                      loss_rate=0.5)
        net.add_node(
            FullNode("a", Blockchain(CFG, genesis, execute_transactions=False))
        )
        net.add_node(
            FullNode("b", Blockchain(CFG, genesis, execute_transactions=False))
        )
        for _ in range(200):
            net.send("a", "b", Ping(sender_id="a"))
        assert net.messages_lost > 0
        assert net.messages_undeliverable == 0

    def test_deprecated_aggregate_warns_and_sums_all_classes(self):
        sim, net, nodes = tiny_network()
        net.messages_lost = 2
        net.messages_undeliverable = 3
        net.messages_blocked = 5
        with pytest.warns(DeprecationWarning, match="messages_dropped"):
            assert net.messages_dropped == 10

    def test_split_counters_do_not_warn(self):
        sim, net, nodes = tiny_network()
        net.send("n0", "ghost", Ping(sender_id="n0"))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            total = (
                net.messages_lost
                + net.messages_undeliverable
                + net.messages_blocked
            )
        assert total == 1


class TestCensusAndUpgrades:
    def test_prefork_census_is_one_group(self):
        sim, net, _ = tiny_network()
        census = net.census()
        assert census.count("pre-fork") == 3
        assert census.fraction("pre-fork") == 1.0

    def test_upgrade_log_records_time_and_name(self):
        sim, net, nodes = tiny_network()
        sim.run_until(42)
        nodes[0].upgrade(replace(ETC_CONFIG, dao_fork_block=10**9))
        assert net.upgrade_log == [(42.0, "n0")]

    def test_offline_nodes_excluded_from_census(self):
        sim, net, nodes = tiny_network()
        nodes[2].go_offline()
        assert net.census().count("pre-fork") == 2

    def test_mean_peer_count(self):
        sim, net, nodes = tiny_network()
        nodes[0].peers = {"n1"}
        nodes[1].peers = {"n0", "n2"}
        nodes[2].peers = {"n1"}
        assert net.mean_peer_count() == pytest.approx(4 / 3)


class TestLatencyModels:
    def test_constant(self):
        model = ConstantLatency(0.25)
        assert model.sample(random.Random(1)) == 0.25
        with pytest.raises(ValueError):
            ConstantLatency(-1)

    def test_uniform_bounds(self):
        model = UniformLatency(0.1, 0.2)
        rng = random.Random(2)
        samples = [model.sample(rng) for _ in range(100)]
        assert all(0.1 <= s <= 0.2 for s in samples)
        with pytest.raises(ValueError):
            UniformLatency(0.3, 0.2)

    def test_lognormal_median(self):
        model = LognormalLatency(median=0.1, sigma=0.5)
        rng = random.Random(3)
        samples = sorted(model.sample(rng) for _ in range(999))
        assert samples[499] == pytest.approx(0.1, rel=0.2)
        with pytest.raises(ValueError):
            LognormalLatency(median=0)

    def test_geographic_symmetry_and_locality(self):
        model = GeographicLatency(jitter_sigma=1e-9)
        rng = random.Random(4)
        na_eu = model.delay_between("na", "eu", rng)
        eu_na = model.delay_between("eu", "na", rng)
        assert na_eu == pytest.approx(eu_na, rel=0.01)
        local = model.delay_between("eu", "eu", rng)
        assert local < na_eu

    def test_geographic_unknown_pair_falls_back(self):
        model = GeographicLatency(jitter_sigma=1e-9)
        rng = random.Random(5)
        assert model.delay_between("mars", "eu", rng) == pytest.approx(
            0.12, rel=0.01
        )

    def test_geographic_rejects_negative_jitter_sigma(self):
        # Silently "worked" before validation: lognormvariate accepts a
        # negative sigma and just mirrors the distribution.
        with pytest.raises(ValueError, match="jitter_sigma"):
            GeographicLatency(jitter_sigma=-0.1)

    def test_geographic_rejects_negative_base_delay(self):
        with pytest.raises(ValueError, match="non-negative"):
            GeographicLatency(base={("na", "eu"): -0.05})

    def test_geographic_zero_jitter_is_deterministic(self):
        model = GeographicLatency(jitter_sigma=0.0)
        rng = random.Random(6)
        assert model.delay_between("na", "eu", rng) == pytest.approx(0.09)

    def test_geographic_strict_unknown_pair_raises(self):
        model = GeographicLatency(strict=True)
        rng = random.Random(7)
        state = rng.getstate()
        with pytest.raises(KeyError, match="mars"):
            model.delay_between("mars", "eu", rng)
        # Lookup happens before any jitter draw, so a raising call must
        # not advance the RNG (a silent draw would desync replays).
        assert rng.getstate() == state
        # Known pairs still work in strict mode.
        assert model.delay_between("na", "eu", rng) > 0

    def test_geographic_default_delay_is_configurable(self):
        model = GeographicLatency(jitter_sigma=0.0, default_delay=0.5)
        rng = random.Random(8)
        assert model.delay_between("mars", "eu", rng) == pytest.approx(0.5)
        with pytest.raises(ValueError, match="default_delay"):
            GeographicLatency(default_delay=-0.1)

    def test_geographic_symmetrization_conflict_raises(self):
        with pytest.raises(ValueError, match="conflicting base delays"):
            GeographicLatency(
                base={("na", "eu"): 0.09, ("eu", "na"): 0.10}
            )

    def test_geographic_equal_duplicates_accepted(self):
        model = GeographicLatency(
            base={("na", "eu"): 0.09, ("eu", "na"): 0.09},
            jitter_sigma=0.0,
        )
        rng = random.Random(9)
        assert model.delay_between("na", "eu", rng) == pytest.approx(0.09)
        assert model.delay_between("eu", "na", rng) == pytest.approx(0.09)

    def test_strict_geographic_raises_through_network_send(self):
        genesis, _ = build_genesis({})
        sim = Simulator()
        net = Network(
            sim, latency=GeographicLatency(strict=True), seed=11
        )
        nodes = [
            FullNode(
                f"n{i}",
                Blockchain(CFG, genesis, execute_transactions=False),
                rng_seed=i,
            )
            for i in range(2)
        ]
        for node in nodes:
            net.add_node(node)
        nodes[1].region = "atlantis"
        with pytest.raises(KeyError, match="atlantis"):
            net.send("n0", "n1", Ping(sender_id="n0"))


class TestNodeLifecycle:
    def test_offline_node_ignores_messages(self):
        sim, net, nodes = tiny_network()
        nodes[0].dial("n1")
        sim.run_all()
        assert "n0" in nodes[1].peers
        nodes[1].go_offline()
        nodes[1].receive(Ping(sender_id="n0"))  # no crash, no effect
        assert not nodes[1].peers

    def test_drop_all_peers(self):
        sim, net, nodes = tiny_network()
        nodes[0].dial("n1")
        nodes[0].dial("n2")
        sim.run_all()
        nodes[0].drop_all_peers()
        sim.run_all()
        assert not nodes[0].peers
        assert "n0" not in nodes[1].peers

    def test_upgrade_changes_config_everywhere(self):
        sim, net, nodes = tiny_network()
        new_config = replace(ETC_CONFIG, dao_fork_block=10**9)
        nodes[0].upgrade(new_config)
        assert nodes[0].config is new_config
        assert nodes[0].mempool.config is new_config
        assert nodes[0].network_name == "ETC"

    def test_fork_block_hash_none_below_height(self):
        sim, net, nodes = tiny_network()
        assert nodes[0].fork_block_hash() is None
