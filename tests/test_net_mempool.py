"""Mempool admission, replacement, and block selection."""

import pytest

from repro.chain.config import ETC_CONFIG, ETH_CONFIG
from repro.chain.crypto import PrivateKey
from repro.chain.state import StateDB
from repro.chain.transaction import Transaction, sign_transaction
from repro.chain.types import Address, ether
from repro.net.mempool import AdmissionResult, Mempool


@pytest.fixture
def sender():
    return PrivateKey.from_seed("pool:sender")


@pytest.fixture
def state(sender):
    db = StateDB()
    db.credit(sender.address, ether(100))
    return db


def make_tx(sender, nonce=0, gas_price=10**9, value=ether(1), chain_id=None):
    return sign_transaction(
        sender,
        Transaction(
            nonce=nonce,
            gas_price=gas_price,
            gas_limit=21_000,
            to=Address.from_int(0xFE),
            value=value,
            chain_id=chain_id,
        ),
    )


class TestAdmission:
    def test_valid_tx_admitted(self, state, sender):
        pool = Mempool(ETH_CONFIG)
        result = pool.add(make_tx(sender), state, 1)
        assert result.admitted
        assert len(pool) == 1

    def test_duplicate_is_known(self, state, sender):
        pool = Mempool(ETH_CONFIG)
        tx = make_tx(sender)
        pool.add(tx, state, 1)
        assert pool.add(tx, state, 1).status == AdmissionResult.KNOWN

    def test_insufficient_funds_rejected(self, state, sender):
        pool = Mempool(ETH_CONFIG)
        result = pool.add(make_tx(sender, value=ether(1000)), state, 1)
        assert result.status == AdmissionResult.REJECTED
        assert result.reason == "insufficient-funds"

    def test_nonce_gap_allowed_into_pool(self, state, sender):
        """A future-nonce transaction parks until its gap fills."""
        pool = Mempool(ETH_CONFIG)
        assert pool.add(make_tx(sender, nonce=2), state, 1).admitted

    def test_wrong_chain_id_rejected(self, state, sender):
        pool = Mempool(ETC_CONFIG)
        tx = make_tx(sender, chain_id=1)
        result = pool.add(tx, state, 4_000_000)
        assert result.reason == "wrong-chain-id"

    def test_legacy_tx_admitted_by_both_chains(self, state, sender):
        """The mempool view of the replay hole."""
        tx = make_tx(sender)
        for config in (ETH_CONFIG, ETC_CONFIG):
            assert Mempool(config).add(tx, state.fork(), 1).admitted

    def test_capacity_limit(self, state, sender):
        pool = Mempool(ETH_CONFIG, capacity=2)
        for nonce in range(2):
            pool.add(make_tx(sender, nonce=nonce), state, 1)
        result = pool.add(make_tx(sender, nonce=2), state, 1)
        assert result.reason == "pool-full"

    def test_stateless_admission_checks_signature_and_chain(self, sender):
        pool = Mempool(ETH_CONFIG)
        assert pool.add(make_tx(sender), None, 1).admitted


class TestReplacement:
    def test_higher_fee_replaces(self, state, sender):
        pool = Mempool(ETH_CONFIG)
        cheap = make_tx(sender, gas_price=10**9)
        dear = make_tx(sender, gas_price=2 * 10**9)
        pool.add(cheap, state, 1)
        assert pool.add(dear, state, 1).admitted
        assert cheap.tx_hash not in pool
        assert dear.tx_hash in pool

    def test_equal_or_lower_fee_rejected(self, state, sender):
        pool = Mempool(ETH_CONFIG)
        tx = make_tx(sender, gas_price=2 * 10**9)
        pool.add(tx, state, 1)
        result = pool.add(make_tx(sender, gas_price=10**9), state, 1)
        assert result.reason == "nonce-occupied"


class TestSelection:
    def test_nonce_contiguous_per_sender(self, state, sender):
        pool = Mempool(ETH_CONFIG)
        for nonce in (0, 1, 3):  # 2 missing
            pool.add(make_tx(sender, nonce=nonce), state, 1)
        selected = pool.select_for_block(state, 1, 10_000_000)
        assert [tx.nonce for tx in selected] == [0, 1]

    def test_price_ordering_across_senders(self, state):
        pool = Mempool(ETH_CONFIG)
        poor = PrivateKey.from_seed("pool:poor")
        rich = PrivateKey.from_seed("pool:rich")
        db = StateDB()
        db.credit(poor.address, ether(10))
        db.credit(rich.address, ether(10))
        pool.add(make_tx(poor, gas_price=1 * 10**9), db, 1)
        pool.add(make_tx(rich, gas_price=5 * 10**9), db, 1)
        selected = pool.select_for_block(db, 1, 10_000_000)
        assert selected[0].sender == rich.address

    def test_gas_budget_respected(self, state, sender):
        pool = Mempool(ETH_CONFIG)
        for nonce in range(5):
            pool.add(make_tx(sender, nonce=nonce), state, 1)
        selected = pool.select_for_block(state, 1, 2 * 21_000)
        assert len(selected) == 2

    def test_selection_does_not_overdraw_sender(self, sender):
        """Selected sets are executable: combined value+gas cannot exceed
        the sender's balance even if individual txs pass."""
        db = StateDB()
        db.credit(sender.address, ether(1))
        pool = Mempool(ETH_CONFIG)
        pool.add(make_tx(sender, nonce=0, value=ether(0.7)), db, 1)
        pool.add(make_tx(sender, nonce=1, value=ether(0.7)), db, 1)
        selected = pool.select_for_block(db, 1, 10_000_000)
        assert len(selected) == 1

    def test_remove_included_clears(self, state, sender):
        pool = Mempool(ETH_CONFIG)
        tx = make_tx(sender)
        pool.add(tx, state, 1)
        pool.remove_included((tx,))
        assert len(pool) == 0
        # Nonce slot is free again for a different transaction.
        assert pool.add(make_tx(sender, gas_price=3 * 10**9), state, 1).admitted


class TestEviction:
    def test_drop_invalid_after_state_change(self, state, sender):
        pool = Mempool(ETH_CONFIG)
        tx = make_tx(sender, value=ether(99))
        assert pool.add(tx, state, 1).admitted
        # The sender's funds move (e.g. a replay-split): tx now invalid.
        state.debit(sender.address, ether(95))
        evicted = pool.drop_invalid(state, 2)
        assert evicted == 1
        assert len(pool) == 0
