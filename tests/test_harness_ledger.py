"""The sweep ledger: claims, leases, quarantine, concurrent safety."""

import threading

import pytest

from repro.harness import (
    ChunkDef,
    LedgerMismatch,
    LedgerNeedsResume,
    SweepLedger,
)

KEY = "sweep-key-1"


def defs(count, stage=0, start_seq=0):
    return [
        ChunkDef(f"chunk-{stage}-{index}", start_seq + index, stage,
                 f"label-{stage}-{index}")
        for index in range(count)
    ]


@pytest.fixture()
def ledger(tmp_path):
    ledger = SweepLedger(tmp_path / "ledger.db")
    yield ledger
    ledger.close()


class TestRegister:
    def test_fresh_registration(self, ledger):
        assert ledger.register(KEY, defs(3)) == 0
        assert ledger.counts() == {
            "pending": 3, "leased": 0, "done": 0, "failed": 0,
            "quarantined": 0, "total": 3,
        }

    def test_wrong_sweep_key_rejected(self, ledger):
        ledger.register(KEY, defs(2))
        with pytest.raises(LedgerMismatch):
            ledger.register("other-key", defs(2))

    def test_progress_without_resume_rejected(self, ledger):
        ledger.register(KEY, defs(2))
        claim = ledger.claim("owner-a", 60.0)
        ledger.complete(claim.row.chunk_id, "owner-a", "digest")
        with pytest.raises(LedgerNeedsResume):
            ledger.register(KEY, defs(2))

    def test_resume_reports_done_count(self, ledger):
        ledger.register(KEY, defs(2))
        claim = ledger.claim("owner-a", 60.0)
        ledger.complete(claim.row.chunk_id, "owner-a", "digest")
        assert ledger.register(KEY, defs(2), resume=True) == 1


class TestClaims:
    def test_claims_in_seq_order(self, ledger):
        ledger.register(KEY, defs(3))
        first = ledger.claim("a", 60.0)
        second = ledger.claim("a", 60.0)
        assert first.row.seq == 0 and second.row.seq == 1
        assert not first.expired_takeover

    def test_exhausted_pool_returns_none(self, ledger):
        ledger.register(KEY, defs(1))
        assert ledger.claim("a", 60.0) is not None
        assert ledger.claim("b", 60.0) is None

    def test_expired_lease_is_claimable(self, ledger):
        ledger.register(KEY, defs(1))
        first = ledger.claim("a", 60.0, now=1000.0)
        takeover = ledger.claim("b", 60.0, now=1061.0)
        assert takeover is not None
        assert takeover.expired_takeover
        assert takeover.row.chunk_id == first.row.chunk_id
        assert takeover.row.attempts == 2

    def test_live_lease_is_not_claimable(self, ledger):
        ledger.register(KEY, defs(1))
        ledger.claim("a", 60.0, now=1000.0)
        assert ledger.claim("b", 60.0, now=1030.0) is None

    def test_stage_barrier(self, ledger):
        ledger.register(KEY, defs(1, stage=0) + defs(1, stage=1, start_seq=1))
        claim = ledger.claim("a", 60.0)
        assert claim.row.stage == 0
        # Stage 1 stays closed while stage 0 is non-terminal.
        assert ledger.claim("b", 60.0) is None
        ledger.complete(claim.row.chunk_id, "a", "digest")
        opened = ledger.claim("b", 60.0)
        assert opened is not None and opened.row.stage == 1

    def test_renew_extends_lease(self, ledger):
        ledger.register(KEY, defs(1))
        claim = ledger.claim("a", 60.0, now=1000.0)
        assert ledger.renew(claim.row.chunk_id, "a", 60.0, now=1050.0)
        assert ledger.claim("b", 60.0, now=1090.0) is None
        assert not ledger.renew(claim.row.chunk_id, "b", 60.0, now=1090.0)


class TestCompletionAndFailure:
    def test_complete_records_digest(self, ledger):
        ledger.register(KEY, defs(1))
        claim = ledger.claim("a", 60.0)
        assert ledger.complete(claim.row.chunk_id, "a", "digest-1")
        row = ledger.get(claim.row.chunk_id)
        assert row.state == "done" and row.digest == "digest-1"
        assert ledger.all_terminal()

    def test_complete_by_non_owner_is_refused(self, ledger):
        ledger.register(KEY, defs(1))
        claim = ledger.claim("a", 60.0, now=1000.0)
        ledger.claim("b", 60.0, now=1061.0)  # lease lapsed; b took over
        assert not ledger.complete(claim.row.chunk_id, "a", "stale")
        assert ledger.get(claim.row.chunk_id).state == "leased"

    def test_fail_within_budget_returns_to_pending(self, ledger):
        ledger.register(KEY, defs(1))
        claim = ledger.claim("a", 60.0)
        state = ledger.fail(claim.row.chunk_id, "a", "boom", max_failures=1)
        assert state == "pending"
        row = ledger.get(claim.row.chunk_id)
        assert row.failures == 1 and row.error == "boom"

    def test_fail_past_budget_quarantines(self, ledger):
        ledger.register(KEY, defs(1))
        for _ in range(2):
            claim = ledger.claim("a", 60.0)
            state = ledger.fail(
                claim.row.chunk_id, "a", "boom", max_failures=1
            )
        assert state == "quarantined"
        assert ledger.claim("a", 60.0) is None
        assert ledger.all_terminal()

    def test_release_uncharges_the_attempt(self, ledger):
        ledger.register(KEY, defs(1))
        claim = ledger.claim("a", 60.0)
        ledger.release(claim.row.chunk_id, "a")
        row = ledger.get(claim.row.chunk_id)
        assert row.state == "pending" and row.attempts == 0

    def test_demote_reopens_a_done_chunk(self, ledger):
        ledger.register(KEY, defs(1))
        claim = ledger.claim("a", 60.0)
        ledger.complete(claim.row.chunk_id, "a", "digest")
        ledger.demote(claim.row.chunk_id, "artifact corrupt")
        row = ledger.get(claim.row.chunk_id)
        assert row.state == "pending" and row.digest is None


class TestConcurrency:
    def test_concurrent_claims_are_disjoint(self, tmp_path):
        path = tmp_path / "ledger.db"
        setup = SweepLedger(path)
        setup.register(KEY, defs(8))
        setup.close()

        claimed, errors = [], []
        lock = threading.Lock()

        def worker(owner):
            ledger = SweepLedger(path)
            try:
                while True:
                    claim = ledger.claim(owner, 60.0)
                    if claim is None:
                        return
                    with lock:
                        claimed.append(claim.row.chunk_id)
                    ledger.complete(claim.row.chunk_id, owner, "digest")
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)
            finally:
                ledger.close()

        threads = [
            threading.Thread(target=worker, args=(f"owner-{n}",))
            for n in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(claimed) == 8
        assert len(set(claimed)) == 8  # nobody double-claimed
        check = SweepLedger(path)
        assert check.all_terminal()
        check.close()
