"""Differential tests for the performance kernels.

Every fast path in this repo rides on one invariant: the optimized code
is *trajectory-identical* to the seed-state implementation it replaced —
same RNG draw order, same outputs, bit for bit.  These tests hold each
kernel against its retained reference:

* ``BlockProducer.advance_batch`` vs a loop of ``advance_one``
* ``PoolLandscape.make_sampler`` vs ``make_sampler_reference``
* ``ChainConfig.fast_difficulty`` vs ``compute_difficulty``
* the ``Simulator`` hot loop vs ``ReferenceSimulator`` / the observed loop
* the ``Network.send`` fast path vs the full transport body
* whole fork-sim digests, in-process and across fork/spawn workers
"""

import random

import pytest

from repro.chain.config import ETC_CONFIG, ETH_CONFIG, PRE_FORK_CONFIG
from repro.harness import NullProgress, WorkerPool, perf_probe_spec
from repro.harness.cache import NullCache
from repro.harness.jobs import execute_job
from repro.net.simulator import Simulator
from repro.perf import (
    ReferenceSimulator,
    reference_block_loop,
    reference_event_loop,
)
from repro.sim.blockprod import BlockProducer, ChainTrace
from repro.sim.engine import ForkSimConfig, run_fork_sim
from repro.sim.population import (
    etc_pool_landscape,
    eth_pool_landscape,
    prefork_pool_landscape,
)
from repro.sim.workload import eth_workload


def make_producer(seed: int = 42) -> BlockProducer:
    return BlockProducer(
        ETH_CONFIG,
        ChainTrace("ETH"),
        start_number=1_920_000,
        start_timestamp=1_469_020_840,
        start_difficulty=62_413_376_722_602,
        seed=seed,
    )


def trace_columns(trace: ChainTrace):
    return (
        list(trace.numbers),
        list(trace.timestamps),
        list(trace.difficulties),
        list(trace.miner_ids),
        list(trace.tx_counts),
        list(trace.contract_tx_counts),
        list(trace.miner_labels),
    )


class TestBatchKernel:
    @pytest.mark.parametrize("with_tx", [False, True])
    def test_batch_matches_advance_one_trajectory(self, with_tx):
        landscape = eth_pool_landscape()
        hashrate = 4.5e12
        n = 4_000

        batched = make_producer()
        stepped = make_producer()
        workload = eth_workload()

        def tx_sampler_for(producer):
            if not with_tx:
                return None
            rng = random.Random(7)
            total = workload.daily_count(0, rng)
            return workload.per_block_sampler(0, total)

        produced = batched.advance_batch(
            n, hashrate, landscape.make_sampler(0.0), tx_sampler_for(batched)
        )
        sampler = landscape.make_sampler(0.0)
        tx_sampler = tx_sampler_for(stepped)
        for _ in range(n):
            stepped.advance_one(hashrate, sampler, tx_sampler)

        assert produced == n
        assert trace_columns(batched.trace) == trace_columns(stepped.trace)
        assert (batched.number, batched.timestamp, batched.clock,
                batched.difficulty) == (
            stepped.number, stepped.timestamp, stepped.clock,
            stepped.difficulty,
        )
        # The strongest claim: both arms consumed the exact same draws.
        assert batched.rng.getstate() == stepped.rng.getstate()

    def test_batch_matches_across_landscapes_and_days(self):
        for landscape in (
            eth_pool_landscape(),
            etc_pool_landscape(),
            prefork_pool_landscape(),
        ):
            for day in (0.0, 30.0, 100.0):
                batched = make_producer(seed=int(day) + 1)
                stepped = make_producer(seed=int(day) + 1)
                batched.advance_batch(
                    500, 2.0e12, landscape.make_sampler(day)
                )
                sampler = landscape.make_sampler(day)
                for _ in range(500):
                    stepped.advance_one(2.0e12, sampler)
                assert trace_columns(batched.trace) == trace_columns(
                    stepped.trace
                )
                assert batched.rng.getstate() == stepped.rng.getstate()

    def test_batch_stops_at_end_timestamp(self):
        landscape = eth_pool_landscape()
        fast = make_producer()
        slow = make_producer()
        end = fast.timestamp + 3_600

        fast_blocks = fast.run_until(end, 4.5e12, landscape.make_sampler(0.0))
        BlockProducer.use_batch_kernel = False
        try:
            slow_blocks = slow.run_until(
                end, 4.5e12, landscape.make_sampler(0.0)
            )
        finally:
            BlockProducer.use_batch_kernel = True

        assert fast_blocks == slow_blocks > 0
        assert trace_columns(fast.trace) == trace_columns(slow.trace)
        assert fast.clock == slow.clock
        assert fast.rng.getstate() == slow.rng.getstate()

    def test_batch_rejects_bad_hashrate_and_empty_batches(self):
        producer = make_producer()
        with pytest.raises(ValueError):
            producer.advance_batch(
                10, 0.0, eth_pool_landscape().make_sampler(0.0)
            )
        assert producer.advance_batch(
            0, 1e12, eth_pool_landscape().make_sampler(0.0)
        ) == 0
        assert len(producer.trace) == 0

    def test_plain_callable_sampler_still_works(self):
        # A miner sampler without categorical_parts (user-supplied
        # callable) must route through the generic loop unchanged.
        batched = make_producer()
        stepped = make_producer()

        def sampler(rng):
            return "pool-a" if rng.random() < 0.5 else "pool-b"

        batched.advance_batch(300, 1e12, sampler)
        for _ in range(300):
            stepped.advance_one(1e12, sampler)
        assert trace_columns(batched.trace) == trace_columns(stepped.trace)
        assert batched.rng.getstate() == stepped.rng.getstate()


class TestSamplerParity:
    @pytest.mark.parametrize("day", [0.0, 1.0, 45.0, 120.0])
    def test_fast_and_reference_samplers_agree(self, day):
        for landscape in (eth_pool_landscape(), etc_pool_landscape()):
            fast_rng = random.Random(99)
            ref_rng = random.Random(99)
            fast = landscape.make_sampler(day)
            reference = landscape.make_sampler_reference(day)
            winners_fast = [fast(fast_rng) for _ in range(20_000)]
            winners_ref = [reference(ref_rng) for _ in range(20_000)]
            assert winners_fast == winners_ref
            assert fast_rng.getstate() == ref_rng.getstate()

    def test_sampler_exposes_categorical_parts(self):
        sampler = eth_pool_landscape().make_sampler(0.0)
        cumulative, labels, pooled_mass, solo_count, solo_labels, last = (
            sampler.categorical_parts
        )
        assert len(cumulative) == len(labels) == last + 1
        assert 0 < pooled_mass < 1
        assert solo_count == len(solo_labels)


class TestDifficultyParity:
    @pytest.mark.parametrize(
        "config", [ETH_CONFIG, ETC_CONFIG, PRE_FORK_CONFIG]
    )
    def test_fast_rule_matches_reference_on_random_headers(self, config):
        fast = config.fast_difficulty
        rng = random.Random(1234)
        for _ in range(5_000):
            parent_difficulty = rng.randrange(131_072, 10**15)
            parent_timestamp = rng.randrange(1_400_000_000, 1_600_000_000)
            timestamp = parent_timestamp + rng.randrange(1, 2_000)
            number = rng.randrange(1, 6_000_000)
            assert fast(
                parent_difficulty, parent_timestamp, timestamp, number
            ) == config.compute_difficulty(
                parent_difficulty, parent_timestamp, timestamp, number
            )

    def test_fast_rule_matches_on_floor_and_bomb_edges(self):
        for config in (ETH_CONFIG, ETC_CONFIG):
            fast = config.fast_difficulty
            for number in (1, 199_999, 200_000, 200_001, 2_000_000,
                           4_000_000, 5_000_000):
                for dt in (1, 9, 10, 11, 999, 1_000, 10_000):
                    for parent in (131_072, 131_073, 10**9, 10**14):
                        assert fast(
                            parent, 1_469_000_000, 1_469_000_000 + dt, number
                        ) == config.compute_difficulty(
                            parent, 1_469_000_000, 1_469_000_000 + dt, number
                        )


class TestForkSimDigests:
    @pytest.mark.parametrize("seed", [1, 7, 2016_07_20])
    @pytest.mark.parametrize("with_transactions", [False, True])
    def test_fast_and_reference_digests_identical(
        self, seed, with_transactions
    ):
        config = ForkSimConfig(
            days=4,
            prefork_days=2,
            seed=seed,
            with_transactions=with_transactions,
        )
        fast = run_fork_sim(config)
        with reference_block_loop():
            reference = run_fork_sim(config)
        assert fast.digest() == reference.digest()

    def test_reference_context_restores_state(self):
        from repro.sim.population import PoolLandscape

        assert BlockProducer.use_batch_kernel is True
        before = PoolLandscape.make_sampler
        with reference_block_loop():
            assert BlockProducer.use_batch_kernel is False
            assert PoolLandscape.make_sampler is not before
        assert BlockProducer.use_batch_kernel is True
        assert PoolLandscape.make_sampler is before


class TestSimulatorHotLoop:
    @staticmethod
    def run_workload(sim):
        fired = []
        handles = {}

        def tick(label, period):
            fired.append((label, sim.now))
            if sim.now < 200.0:
                handles[label] = sim.schedule(period, tick, label, period)
            # Cancellation exercises the drain path: every third firing
            # of timer 0 cancels timer 2's pending event.
            if label == 0 and len(fired) % 3 == 0 and 2 in handles:
                handles[2].cancel()
                handles[2] = sim.schedule(5.0, tick, 2, 2.3)

        for label, period in enumerate((1.0, 1.7, 2.3)):
            handles[label] = sim.schedule(period, tick, label, period)
        processed = sim.run_until(250.0)
        return fired, processed, sim.now, sim.events_processed

    def test_hot_loop_matches_reference_and_observed(self):
        from repro.obs import Observability

        plain = self.run_workload(Simulator())
        reference = self.run_workload(ReferenceSimulator())
        observed = self.run_workload(Simulator(obs=Observability.enabled()))
        assert plain == reference == observed

    def test_max_events_exceeded_keeps_entry_queued(self):
        from repro.net.simulator import SimulationError

        def build():
            sim = Simulator()

            def tick():
                sim.schedule(1.0, tick)

            sim.schedule(1.0, tick)
            return sim

        fast, reference = build(), build()
        with pytest.raises(SimulationError):
            fast.run_until(100.0, max_events=10)
        with pytest.raises(SimulationError):
            reference._run_until_observed(100.0, max_events=10)
        assert fast.events_processed == reference.events_processed == 10
        assert fast.pending == reference.pending == 1
        assert fast.now == reference.now


class TestNetworkFastPath:
    def test_partition_scenario_identical_on_reference_event_loop(self):
        from repro.scenarios.partition_event import (
            PartitionScenario,
            PartitionScenarioConfig,
        )

        config = PartitionScenarioConfig(
            num_nodes=14, num_miners=4, post_fork_horizon=600.0, seed=5
        )
        fast = PartitionScenario(config).run()
        with reference_event_loop():
            reference = PartitionScenario(
                config, simulator_factory=ReferenceSimulator
            ).run()
        assert fast.snapshots == reference.snapshots
        assert fast.fork_time == reference.fork_time
        assert fast.handshake_refusals == reference.handshake_refusals
        assert (
            fast.incompatible_disconnects
            == reference.incompatible_disconnects
        )


class TestPerfProbeJob:
    def test_probe_digests_match_in_process(self):
        config = ForkSimConfig(
            days=3, prefork_days=1, seed=11, with_transactions=False
        )
        payload = execute_job(perf_probe_spec(config), NullCache()).value
        assert payload["digests_match"] is True
        assert payload["blocks"] > 0
        local = run_fork_sim(config)
        assert payload["fast_digest"] == local.digest()

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_probe_digests_match_across_workers(self, start_method):
        pool = WorkerPool(
            workers=2,
            cache_dir=None,
            timeout=300.0,
            retries=0,
            progress=NullProgress(),
            start_method=start_method,
        )
        if pool.workers == 1:
            pytest.skip("multiprocessing unavailable on this host")
        config = ForkSimConfig(
            days=3, prefork_days=1, seed=11, with_transactions=False
        )
        spec = perf_probe_spec(config)
        results = pool.run([spec, spec])
        assert all(r.record.status == "ok" for r in results)
        local_digest = run_fork_sim(config).digest()
        for result in results:
            assert result.value["digests_match"] is True
            assert result.value["fast_digest"] == local_digest


class TestBenchHarness:
    def test_smoke_bench_writes_valid_reports(self, tmp_path):
        from repro.perf.bench import run_bench, validate_report
        import json

        paths, all_match = run_bench(
            smoke=True,
            repeats=1,
            only=["forksim"],
            out_dir=str(tmp_path),
            report_dir=str(tmp_path / "reports"),
            echo=lambda line: None,
        )
        assert all_match is True
        json_paths = [p for p in paths if p.suffix == ".json"]
        assert len(json_paths) == 1
        payload = json.loads(json_paths[0].read_text())
        assert validate_report(payload) == []
        assert {row["case"] for row in payload["cases"]} == {
            "forksim_difficulty", "forksim_workload", "forksim_analysis",
        }
        assert all(row["digests_match"] for row in payload["cases"])
        # Every forksim case carries tracemalloc accounting, and the
        # analysis case enforces its columnar-vs-record memory floor.
        for row in payload["cases"]:
            assert row["fast"]["peak_bytes"] >= 0
            assert row["reference"]["peak_bytes"] >= 0
            assert row["memory_ok"] is True
        analysis = {row["case"]: row for row in payload["cases"]}[
            "forksim_analysis"
        ]
        assert analysis["memory_min_ratio"] > 1.0
        assert analysis["memory_ratio"] >= analysis["memory_min_ratio"]
        assert (tmp_path / "reports" / "bench_forksim.txt").exists()

    def test_validate_report_flags_problems(self):
        from repro.perf.bench import validate_report

        assert validate_report({}) != []
        assert any(
            "schema" in problem for problem in validate_report({"cases": []})
        )

    def test_unknown_report_selection_raises(self):
        from repro.perf.bench import run_bench

        with pytest.raises(ValueError):
            run_bench(only=["nope"])
