"""Partition metrics and market-efficiency analysis."""

import pytest

from repro.core.market_analysis import (
    find_dip,
    hashes_per_usd_series,
    market_efficiency_report,
    relative_gap_series,
)
from repro.core.partition import (
    find_trace_fork_point,
    hashpower_loss_fraction,
    peak_block_delta,
    stabilization_time,
)
from repro.core.timeseries import TimeSeries
from repro.data.windows import DAY, HOUR
from repro.market.exchange import ExchangeRateSeries
from repro.sim.blockprod import ChainTrace


def stalled_trace(fork_ts=100_000, pre_blocks=100, stall=3000, post_blocks=2000):
    """A trace that mines at 14 s, stalls at the fork, then recovers."""
    trace = ChainTrace("ETC")
    ts = fork_ts - pre_blocks * 14
    for i in range(pre_blocks):
        trace.append(i, ts, 14_000_000, "m")
        ts += 14
    # Stall: 20 blocks at `stall`-second gaps.
    for i in range(20):
        ts += stall
        trace.append(pre_blocks + i, ts, 14_000_000, "m")
    # Recovery at target rate.
    for i in range(post_blocks):
        ts += 14
        trace.append(pre_blocks + 20 + i, ts, 1_000_000, "m")
    return trace


class TestForkPoint:
    def test_forked_traces_report_divergence(self):
        parent = ChainTrace("pre")
        for i in range(5):
            parent.append(i, i * 14, 1000, "m")
        eth = ChainTrace.forked_from(parent, "ETH")
        etc = ChainTrace.forked_from(parent, "ETC")
        eth.append(5, 80, 1000, "eth-pool")
        etc.append(5, 95, 1000, "etc-pool")
        assert find_trace_fork_point(eth, etc) == 4

    def test_identical_traces(self):
        parent = ChainTrace("a")
        for i in range(3):
            parent.append(i, i * 14, 1000, "m")
        clone = ChainTrace.forked_from(parent, "b")
        assert find_trace_fork_point(parent, clone) == 2


class TestHashpowerLoss:
    def test_ninety_percent_drop_detected(self):
        fork_ts = 100_000
        trace = ChainTrace("ETC")
        # Before: 14 s blocks; after: 140 s blocks at equal difficulty
        # → one tenth of the hashpower remains.
        ts = fork_ts - 3 * HOUR
        index = 0
        while ts < fork_ts:
            trace.append(index, ts, 14_000_000, "m")
            ts += 14
            index += 1
        while ts < fork_ts + 3 * HOUR:
            trace.append(index, ts, 14_000_000, "m")
            ts += 140
            index += 1
        loss = hashpower_loss_fraction(trace, fork_ts, window=2 * HOUR)
        assert loss == pytest.approx(0.9, abs=0.03)


class TestStabilization:
    def test_recovery_detected(self):
        trace = stalled_trace(stall=3000)
        report = stabilization_time(trace, 100_000)
        assert report.stabilization_seconds is not None
        # 20 stalled blocks × 3000 s ≈ 0.7 days of stall.
        assert 0.5 <= report.stabilization_days <= 1.2
        assert report.peak_delta_seconds == 3000
        assert report.difficulty_at_recovery < report.difficulty_at_fork

    def test_peak_block_delta_window(self):
        trace = stalled_trace(stall=2222)
        assert peak_block_delta(trace, 100_000, 100_000 + DAY) == 2222

    def test_no_recovery_within_horizon(self):
        trace = stalled_trace(stall=5000, post_blocks=0)
        report = stabilization_time(trace, 100_000, horizon_days=1)
        assert report.stabilization_seconds is None


class TestMarketAnalysis:
    def build_series(self, gap=0.0):
        fork_ts = 0
        days = 60
        rates = ExchangeRateSeries()
        rates.set_series("ETH", [10.0] * days)
        rates.set_series("ETC", [1.0] * days)
        eth_difficulty = TimeSeries(
            [d * DAY for d in range(days)],
            [50e12 + d * 1e11 for d in range(days)],
        )
        etc_difficulty = TimeSeries(
            [d * DAY for d in range(days)],
            [(50e12 + d * 1e11) * (1 + gap) / 10 for d in range(days)],
        )
        eth = hashes_per_usd_series(eth_difficulty, rates, "ETH", fork_ts)
        etc = hashes_per_usd_series(etc_difficulty, rates, "ETC", fork_ts)
        return eth, etc, fork_ts

    def test_formula(self):
        rates = ExchangeRateSeries()
        rates.set_series("ETH", [14.0])
        series = hashes_per_usd_series(
            TimeSeries([0], [7e13]), rates, "ETH", 0
        )
        assert series.values[0] == pytest.approx(1e12)

    def test_identical_economics_gives_unit_correlation(self):
        eth, etc, fork_ts = self.build_series(gap=0.0)
        report = market_efficiency_report(eth, etc, fork_ts, skip_days=0)
        assert report.correlation == pytest.approx(1.0)
        assert report.median_relative_gap == pytest.approx(0.0, abs=1e-9)
        assert report.curves_nearly_identical

    def test_persistent_gap_measured(self):
        eth, etc, fork_ts = self.build_series(gap=0.5)
        gaps = relative_gap_series(eth, etc)
        assert gaps.values[0] == pytest.approx(0.4, abs=0.02)

    def test_find_dip(self):
        timestamps = [d * DAY for d in range(100)]
        values = [100.0] * 50 + [60.0] * 10 + [100.0] * 40
        series = TimeSeries(timestamps, values)
        dip = find_dip(series, 45 * DAY, 70 * DAY)
        assert dip is not None
        when, depth = dip
        assert 50 * DAY <= when < 60 * DAY
        assert depth == pytest.approx(0.4, abs=0.01)

    def test_no_dip_returns_none(self):
        timestamps = [d * DAY for d in range(100)]
        series = TimeSeries(timestamps, [100.0] * 100)
        assert find_dip(series, 45 * DAY, 70 * DAY) is None
