"""The fork-simulation engine: structural and calibration checks.

One moderately sized run (90 days) is shared module-wide; the full
270-day reproduction lives in the benchmarks.
"""

import pytest

from repro.core.metrics import (
    trace_daily_mean_difficulty,
    trace_transactions_per_day,
)
from repro.core.partition import find_trace_fork_point, stabilization_time
from repro.data.windows import DAY, HOUR
from repro.sim.engine import ForkSimConfig, ForkSimulation


@pytest.fixture(scope="module")
def result():
    return ForkSimulation(
        ForkSimConfig(days=90, prefork_days=7, seed=77)
    ).run()


class TestStructure:
    def test_traces_share_the_prefix(self, result):
        fork_point = find_trace_fork_point(result.eth_trace, result.etc_trace)
        assert fork_point == result.fork_number

    def test_fork_anchored_to_calendar(self, result):
        from repro.sim.clock import FORK_TIMESTAMP

        assert abs(result.fork_timestamp - FORK_TIMESTAMP) < DAY

    def test_rates_cover_the_horizon(self, result):
        assert result.rates.days("ETH") == 90
        assert result.rates.days("ETC") == 90

    def test_daily_hashrate_recorded(self, result):
        assert len(result.daily_hashrate["ETH"]) == 90
        assert len(result.daily_hashrate["ETC"]) == 90

    def test_to_database(self, result):
        db = result.to_database(include_prefix=False)
        assert set(db.chains()) == {"ETH", "ETC"}
        assert db.block_count("ETH") > 80 * 6000

    def test_deterministic(self):
        config = ForkSimConfig(days=10, prefork_days=2, seed=123)
        a = ForkSimulation(config).run()
        b = ForkSimulation(config).run()
        assert list(a.etc_trace.timestamps) == list(b.etc_trace.timestamps)


class TestCalibration:
    def test_eth_unaffected_at_fork(self, result):
        """ETH's block rate never dips: the majority's chain continues."""
        eth = result.eth_trace
        first_day = eth.slice_by_time(
            result.fork_timestamp, result.fork_timestamp + DAY
        )
        assert 5000 < len(first_day) < 7500

    def test_etc_collapses_then_recovers_in_about_two_days(self, result):
        report = stabilization_time(result.etc_trace, result.fork_timestamp)
        assert report.stabilization_days is not None
        assert 1.0 <= report.stabilization_days <= 3.5
        assert report.peak_delta_seconds > 1200  # the paper's delta spike

    def test_etc_difficulty_an_order_below_eth(self, result):
        eth = trace_daily_mean_difficulty(
            result.eth_trace, result.fork_timestamp + 30 * DAY
        )
        etc = trace_daily_mean_difficulty(
            result.etc_trace, result.fork_timestamp + 30 * DAY
        )
        ratio = eth.mean() / etc.mean()
        assert 6 <= ratio <= 20

    def test_mirror_image_difficulty_drift(self, result):
        """Figure 1's second fortnight: ETH sheds difficulty while ETC
        gains it, as profit miners flow back."""
        eth = trace_daily_mean_difficulty(result.eth_trace)
        etc = trace_daily_mean_difficulty(result.etc_trace)
        fork = result.fork_timestamp

        def value_near(series, timestamp):
            best = min(series.timestamps, key=lambda t: abs(t - timestamp))
            return series.values[series.timestamps.index(best)]

        eth_day1 = value_near(eth, fork + 1 * DAY)
        eth_day14 = value_near(eth, fork + 14 * DAY)
        etc_day3 = value_near(etc, fork + 3 * DAY)
        etc_day14 = value_near(etc, fork + 14 * DAY)
        assert eth_day14 < eth_day1  # ETH loses hashpower
        assert etc_day14 > etc_day3 * 2  # ETC regains it

    def test_transaction_volumes_track_workloads(self, result):
        eth = trace_transactions_per_day(
            result.eth_trace, result.fork_timestamp + 10 * DAY
        )
        etc = trace_transactions_per_day(
            result.etc_trace, result.fork_timestamp + 10 * DAY
        )
        assert eth.mean() == pytest.approx(45_000, rel=0.25)
        ratio = eth.mean() / etc.mean()
        assert 2.0 <= ratio <= 3.2

    def test_transactions_can_be_disabled(self):
        config = ForkSimConfig(days=5, prefork_days=1, seed=5,
                               with_transactions=False)
        result = ForkSimulation(config).run()
        assert sum(result.eth_trace.tx_counts) == 0
