"""Experiment harness — cold vs. warm ``run-all`` wall time.

The harness's pitch is that the *second* run of any experiment set is a
cache lookup, not a recomputation.  This micro-benchmark measures it
directly: one ``run_all`` pass against an empty cache (every job a
miss), then the identical pass again (every job a hit), and records
both wall times plus the speedup to ``benchmarks/output/harness.txt``.

A short horizon keeps the cold pass in benchmark territory rather than
minutes; the speedup ratio is what matters, and it grows with horizon
(the warm cost is a few pickle loads regardless of ``--days``).
"""

import shutil
import tempfile
import time
from pathlib import Path

from repro.harness import run_all
from repro.scenarios.partition_event import PartitionScenarioConfig

DAYS = 4
QUICK_PARTITION = PartitionScenarioConfig(
    num_nodes=20, num_miners=6, post_fork_horizon=1800.0
)


def timed_run_all(cache_dir, output_dir):
    start = time.perf_counter()
    manifest = run_all(
        days=DAYS,
        prefork_days=3,
        jobs=1,
        cache_dir=cache_dir,
        output_dir=output_dir,
        timeout=600.0,
        partition_config=QUICK_PARTITION,
    )
    return time.perf_counter() - start, manifest


def test_warm_cache_speedup(output_dir):
    scratch = Path(tempfile.mkdtemp(prefix="repro-harness-bench-"))
    try:
        cache_dir = scratch / "cache"
        out = scratch / "out"
        cold_seconds, cold = timed_run_all(cache_dir, out)
        warm_seconds, warm = timed_run_all(cache_dir, out)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    assert not cold.failures and not warm.failures
    assert cold.cache_hits == 0
    assert warm.cache_misses == 0

    speedup = cold_seconds / max(warm_seconds, 1e-9)
    text = "\n".join(
        [
            "=== harness: cold vs. warm run-all "
            f"({DAYS} simulated days, serial) ===",
            f"cold run-all: {cold_seconds:8.2f} s   "
            f"({cold.cache_misses} jobs computed)",
            f"warm run-all: {warm_seconds:8.2f} s   "
            f"({warm.cache_hits} jobs served from cache)",
            f"speedup:      {speedup:8.1f} x",
        ]
    )
    (output_dir / "harness.txt").write_text(text + "\n")
    print()
    print(text)

    # The acceptance bar for the full CLI path is 5x; leave headroom for
    # noisy CI boxes at this tiny horizon.
    assert warm_seconds < cold_seconds
    assert speedup >= 3.0
