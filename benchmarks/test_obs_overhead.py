"""Observability overhead budget: the disabled path must be (nearly) free.

The obs layer's contract (DESIGN.md §7) is that a run with ``obs=None``
pays only cached-``None`` identity checks and shared null context
managers — never a dict lookup, never string formatting.  These
benchmarks prove the <5% budget two ways:

* **Analytically**: count the guard checks / null spans a run actually
  executes, microbenchmark their unit cost, and show the product is far
  under 5% of the measured run time.  This bounds the disabled path
  against the *uninstrumented* code, which no longer exists to time.
* **Comparatively**: fully-enabled tracing must stay within a generous
  multiple of the disabled run, and must not perturb the trajectory.
"""

import statistics
import time
from contextlib import nullcontext

from repro.obs import Observability
from repro.scenarios.partition_event import (
    PartitionScenario,
    PartitionScenarioConfig,
)
from repro.sim.engine import ForkSimConfig, run_fork_sim

FIG1_CONFIG = ForkSimConfig(
    days=10, prefork_days=3, seed=2016_07_20, with_transactions=False
)
PARTITION_CONFIG = PartitionScenarioConfig(
    num_nodes=12, num_miners=4, post_fork_horizon=600.0
)


def _median_runtime(fn, rounds=3):
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def _unit_cost(fn, iterations=200_000):
    start = time.perf_counter()
    for _ in range(iterations):
        fn()
    return (time.perf_counter() - start) / iterations


def _guard_cost(iterations=1_000_000):
    """Marginal cost of one inline ``x is not None`` check.

    Timed in-loop with the empty loop subtracted — wrapping the check in
    a lambda would price a function call, not the guard the hot paths
    actually execute.
    """
    probe = None
    hits = 0
    start = time.perf_counter()
    for _ in range(iterations):
        if probe is not None:
            hits += 1
    guarded = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(iterations):
        pass
    empty = time.perf_counter() - start
    assert hits == 0
    return max((guarded - empty) / iterations, 1e-10)


def test_fig1_disabled_path_under_budget():
    """Disabled-path cost on the fig1 workload is provably <5%.

    With ``obs=None`` the fork sim executes exactly three null-span
    entries and one ``is not None`` guard per run.  Price those
    primitives and compare against the measured run time.
    """
    runtime = _median_runtime(lambda: run_fork_sim(FIG1_CONFIG))

    null_ctx = nullcontext()

    def enter_null_span():
        with null_ctx:
            pass

    span_cost = _unit_cost(enter_null_span)
    guard_cost = _guard_cost()

    spans_per_run = 3  # forksim.market, forksim.prefix, forksim.day_loop
    disabled_overhead = spans_per_run * span_cost + guard_cost
    ratio = disabled_overhead / runtime
    print(
        f"\nfig1 runtime {runtime * 1e3:.1f}ms; disabled-path overhead "
        f"{disabled_overhead * 1e9:.0f}ns ({ratio:.2e} of runtime)"
    )
    assert ratio < 0.05


def test_partition_disabled_path_under_budget():
    """The message-level hot path stays under budget too.

    Every send/deliver/drop with ``obs=None`` costs a handful of cached
    ``is not None`` checks.  Count the messages an identical run emits,
    price the checks, and bound the total against the run time.
    """
    runtime = _median_runtime(
        lambda: PartitionScenario(PARTITION_CONFIG).run()
    )

    obs = Observability.enabled(capacity=16)
    PartitionScenario(PARTITION_CONFIG, obs=obs).run()
    events = obs.tracer.events_emitted
    assert events > 1_000  # the workload is message-heavy, not trivial

    guard_cost = _guard_cost()
    checks_per_event = 8  # generous: send + schedule + fire guards
    disabled_overhead = events * checks_per_event * guard_cost
    ratio = disabled_overhead / runtime
    print(
        f"\npartition runtime {runtime * 1e3:.1f}ms; {events} events; "
        f"disabled-path overhead {disabled_overhead * 1e6:.0f}us "
        f"({ratio:.2%} of runtime)"
    )
    assert ratio < 0.05


def test_enabled_tracing_bounded_and_faithful():
    """Full instrumentation is affordable and does not perturb results."""
    disabled = _median_runtime(lambda: run_fork_sim(FIG1_CONFIG))
    enabled = _median_runtime(
        lambda: run_fork_sim(FIG1_CONFIG, obs=Observability.enabled())
    )
    print(
        f"\nfig1 disabled {disabled * 1e3:.1f}ms, "
        f"enabled {enabled * 1e3:.1f}ms "
        f"({enabled / disabled:.2f}x)"
    )
    # Generous bound: tracing every event may cost real time, but an
    # order-of-magnitude blowup would make --stats runs impractical.
    assert enabled < disabled * 5.0

    bare = run_fork_sim(FIG1_CONFIG)
    observed = run_fork_sim(FIG1_CONFIG, obs=Observability.enabled())
    assert bare.digest() == observed.digest()
