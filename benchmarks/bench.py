#!/usr/bin/env python
"""Full-horizon kernel benchmarks: ``python benchmarks/bench.py``.

Thin wrapper over :mod:`repro.perf.bench` (the same harness behind
``python -m repro bench``) that works from a source checkout without an
install.  Writes ``BENCH_forksim.json`` / ``BENCH_eventloop.json`` at
the repo root and rendered tables under ``benchmarks/output/``; exits
nonzero when any fast/reference digest diverges.
"""

import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.perf.bench import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
