"""Experiment fig5 / obs6 — Figure 5: top-1/3/5 pool block shares.

Paper's reading (Section 3.3, "Pool mining"):
* ETH's ratios are constant over time and equal the pre-fork ratios (the
  pools migrated immediately and wholesale);
* ETC's top pools mined "a considerably smaller fraction" for months;
* ETC "eventually converged on the same relative ratios" as ETH.
"""

from conftest import publish

from repro.core.observations import observation_6
from repro.core.pools import convergence_day, migration_consistency
from repro.core.report import figure_5
from repro.data.windows import DAY


def test_figure_5(benchmark, fork_result, output_dir):
    figure = benchmark.pedantic(
        figure_5, args=(fork_result,), rounds=1, iterations=1
    )
    publish(output_dir, "figure5", figure, sample_days=14)

    fork_ts = fork_result.fork_timestamp
    eth_top5 = figure.series["ETH top 5"]
    etc_top5 = figure.series["ETC top 5"]
    eth_top1 = figure.series["ETH top 1"]

    def window_mean(series, start_day, end_day):
        return series.clip_time(
            fork_ts + start_day * DAY, fork_ts + end_day * DAY
        ).mean()

    # ETH concentration is stable: first month ≈ last month.
    eth_early = window_mean(eth_top5, 0, 30)
    eth_late = window_mean(eth_top5, 240, 270)
    print(f"\nETH top-5: early {eth_early:.0f}% vs late {eth_late:.0f}% "
          f"(paper: constant, ~75-80%)")
    assert abs(eth_early - eth_late) < 8
    assert 65 <= eth_early <= 90
    assert 20 <= window_mean(eth_top1, 0, 270) <= 35

    # ETC starts far below and converges.
    etc_early = window_mean(etc_top5, 0, 30)
    etc_late = window_mean(etc_top5, 240, 270)
    print(f"ETC top-5: early {etc_early:.0f}% vs late {etc_late:.0f}% "
          f"(paper: low for months, then ETH-like)")
    assert etc_early < eth_early - 15
    assert abs(etc_late - eth_late) < 10

    converged_at = convergence_day(eth_top5, etc_top5)
    assert converged_at is not None
    converged_days = (converged_at - fork_ts) / DAY
    print(f"convergence day: {converged_days:.0f} "
          f"(paper: 'a relatively slow process', months)")
    assert 30 <= converged_days <= 240

    observation = observation_6(fork_result)
    print(observation.render())
    assert observation.holds


def test_pool_migration_consistency(benchmark, fork_result):
    """The paper 'verified that the top mining pools' addresses before
    the fork are consistent across ETH'."""
    fork_ts = fork_result.fork_timestamp
    trace = fork_result.eth_trace
    prefork = [
        (trace.timestamps[i], trace.miner_of(i))
        for i in range(len(trace))
        if trace.timestamps[i] < fork_ts
        and not trace.miner_of(i).startswith("solo-")
    ]
    postfork = [
        (trace.timestamps[i], trace.miner_of(i))
        for i in range(len(trace))
        if fork_ts <= trace.timestamps[i] < fork_ts + 30 * DAY
        and not trace.miner_of(i).startswith("solo-")
    ]
    overlap = benchmark.pedantic(
        migration_consistency, args=(prefork, postfork),
        kwargs={"top_n": 5}, rounds=1, iterations=1,
    )
    print(f"\npre/post-fork top-5 pool identity overlap: {overlap:.2f}")
    assert overlap == 1.0
