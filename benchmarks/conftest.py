"""Shared fixtures for the benchmark harness.

The expensive inputs — the nine-month fork simulation, the replay
workload, the message-level partition run — are routed through the
:mod:`repro.harness` content-addressed result cache, so they are
computed once *ever* (not once per session): a rerun of any figure
benchmark is a pickle load.  Set ``REPRO_CACHE_DIR`` to relocate the
cache, or ``REPRO_NO_CACHE=1`` to force recomputation.  Each benchmark
then times the *analysis* step it exercises and writes its regenerated
figure to ``benchmarks/output/`` as both a text table and a CSV.
"""

import os
from pathlib import Path

import pytest

from repro.core.metrics import trace_transactions_per_day
from repro.harness import (
    NullCache,
    ResultCache,
    echoes_spec,
    execute_job,
    partition_spec,
    simulate_spec,
)
from repro.sim.engine import ForkSimConfig

OUTPUT_DIR = Path(__file__).parent / "output"

#: The paper's measurement window: July 20, 2016 → mid-April 2017.
FULL_DAYS = 270


def _shared_cache():
    if os.environ.get("REPRO_NO_CACHE"):
        return NullCache()
    root = os.environ.get(
        "REPRO_CACHE_DIR", str(Path(__file__).parent / ".cache")
    )
    return ResultCache(root)


@pytest.fixture(scope="session")
def result_cache():
    return _shared_cache()


@pytest.fixture(scope="session")
def sim_config():
    return ForkSimConfig(days=FULL_DAYS, prefork_days=14)


@pytest.fixture(scope="session")
def fork_result(result_cache, sim_config):
    """The full nine-month, two-chain reconstruction (cached)."""
    return execute_job(simulate_spec(sim_config), result_cache).value


@pytest.fixture(scope="session")
def daily_tx_totals(fork_result):
    eth = trace_transactions_per_day(
        fork_result.eth_trace, fork_result.fork_timestamp
    )
    etc = trace_transactions_per_day(
        fork_result.etc_trace, fork_result.fork_timestamp
    )
    return eth, etc


@pytest.fixture(scope="session")
def echo_data(result_cache, sim_config):
    """Replay workload + a detector that has consumed it (cached)."""
    bundle = execute_job(echoes_spec(sim_config), result_cache).value
    return bundle.detector, bundle.truth, bundle.records


@pytest.fixture(scope="session")
def partition_result(result_cache):
    """The message-level node-census run (Observation 1, cached)."""
    return execute_job(partition_spec(), result_cache).value


@pytest.fixture(scope="session")
def output_dir():
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def publish(output_dir, name, figure, sample_days=7):
    """Write a regenerated figure as text + CSV and echo it to stdout."""
    text = figure.render(sample_days=sample_days)
    (output_dir / f"{name}.txt").write_text(text + "\n")
    figure.write_csv(output_dir / f"{name}.csv")
    print()
    print(text)
    return text
