"""Shared fixtures for the benchmark harness.

The expensive inputs — the nine-month fork simulation, the replay
workload, the message-level partition run — are produced once per session
and shared across every figure benchmark.  Each benchmark then times the
*analysis* step it exercises and writes its regenerated figure to
``benchmarks/output/`` as both a text table and a CSV.
"""

import os
from pathlib import Path

import pytest

from repro.core import EchoDetector
from repro.core.metrics import trace_transactions_per_day
from repro.scenarios.partition_event import (
    PartitionScenario,
    PartitionScenarioConfig,
)
from repro.scenarios.replay_attack import ReplayWorkload, ReplayWorkloadConfig
from repro.sim.engine import ForkSimConfig, ForkSimulation

OUTPUT_DIR = Path(__file__).parent / "output"

#: The paper's measurement window: July 20, 2016 → mid-April 2017.
FULL_DAYS = 270


@pytest.fixture(scope="session")
def fork_result():
    """The full nine-month, two-chain reconstruction."""
    config = ForkSimConfig(days=FULL_DAYS, prefork_days=14)
    return ForkSimulation(config).run()


@pytest.fixture(scope="session")
def daily_tx_totals(fork_result):
    eth = trace_transactions_per_day(
        fork_result.eth_trace, fork_result.fork_timestamp
    )
    etc = trace_transactions_per_day(
        fork_result.etc_trace, fork_result.fork_timestamp
    )
    return eth, etc


@pytest.fixture(scope="session")
def echo_data(fork_result, daily_tx_totals):
    """Replay workload + a detector that has consumed it."""
    eth_daily, etc_daily = daily_tx_totals
    workload = ReplayWorkload(ReplayWorkloadConfig(days=FULL_DAYS))
    records, truth = workload.generate(eth_daily.values, etc_daily.values)
    detector = EchoDetector()
    detector.observe_records(records)
    return detector, truth, records


@pytest.fixture(scope="session")
def partition_result():
    """The message-level node-census run (Observation 1)."""
    return PartitionScenario(PartitionScenarioConfig()).run()


@pytest.fixture(scope="session")
def output_dir():
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def publish(output_dir, name, figure, sample_days=7):
    """Write a regenerated figure as text + CSV and echo it to stdout."""
    text = figure.render(sample_days=sample_days)
    (output_dir / f"{name}.txt").write_text(text + "\n")
    figure.write_csv(output_dir / f"{name}.csv")
    print()
    print(text)
    return text
