"""Experiment fig3 — Figure 3: expected hashes per USD in ETH and ETC.

Paper's reading (Section 3.3, "Network efficiency"):
* "a very strong correlation ... in fact, the curves are almost
  identical" — market efficiency via miner arbitrage;
* "the drop in late October/early November is correlated with the launch
  of Zcash";
* "the drop ... in March is correlated with an increase in the market
  value of ether" (difficulty lagging the price rally).
"""

from conftest import publish

from repro.core.market_analysis import market_efficiency_report
from repro.core.report import figure_3
from repro.data.windows import DAY


def test_figure_3(benchmark, fork_result, output_dir):
    figure = benchmark.pedantic(
        figure_3, args=(fork_result,), rounds=1, iterations=1
    )
    publish(output_dir, "figure3", figure, sample_days=14)

    eth = figure.series["ETH hashes/USD"]
    etc = figure.series["ETC hashes/USD"]
    report = market_efficiency_report(eth, etc, fork_result.fork_timestamp)

    print(
        f"\npearson={report.correlation:.4f} (paper: 'very strong'), "
        f"median relative gap={report.median_relative_gap:.3f} "
        f"(paper: 'almost identical')"
    )
    assert report.correlation > 0.9
    assert report.median_relative_gap < 0.15
    assert report.curves_nearly_identical

    # The Zcash dip (late October = ~day 100) and the March dip.
    assert report.zcash_dip is not None, "no autumn dip found"
    zcash_when, zcash_depth = report.zcash_dip
    zcash_day = (zcash_when - fork_result.fork_timestamp) / DAY
    print(f"Zcash dip at day {zcash_day:.0f} (launch day 100), "
          f"depth {zcash_depth:.0%}")
    assert 95 <= zcash_day <= 140
    assert zcash_depth > 0.05

    assert report.march_dip is not None, "no March dip found"
    march_when, march_depth = report.march_dip
    march_day = (march_when - fork_result.fork_timestamp) / DAY
    print(f"March dip at day {march_day:.0f} (rally ~day 250), "
          f"depth {march_depth:.0%}")
    assert 230 <= march_day <= 270
    assert march_depth > 0.2

    # Scale check: the paper's y-axis runs ~0.8-2.6 x10^12 hashes/USD.
    # Skip the first fortnight — ETC's difficulty is still climbing out
    # of its post-fork trough there (Figure 1's subject, not Figure 3's).
    settled_start = fork_result.fork_timestamp + 14 * DAY
    values = (
        eth.clip_time(settled_start, float("inf")).values
        + etc.clip_time(settled_start, float("inf")).values
    )
    assert 1e11 < min(values) and max(values) < 2e13
