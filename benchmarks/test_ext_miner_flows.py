"""Experiment ext-flows — the paper's future-work item: "how miners
actually moved between both chains" (Section 4).

The paper could only *suggest* migration from the mirror-image difficulty
drift ("we are unable to verify this hypothesis — the blockchain itself
does not contain the identity of the miner").  The flow estimator inverts
block data into daily hashrate and decomposes its changes into migration
vs entry/exit; the simulation's ground-truth allocations grade it.
"""

from repro.core.flows import daily_hashrate_series, estimate_flows
from repro.data.windows import DAY


def test_miner_flow_estimation(benchmark, fork_result, output_dir):
    fork_ts = fork_result.fork_timestamp
    eth = daily_hashrate_series(fork_result.eth_trace, fork_ts)
    etc = daily_hashrate_series(fork_result.etc_trace, fork_ts)

    flows = benchmark.pedantic(
        estimate_flows, args=(eth, etc), rounds=1, iterations=1
    )

    # The fork fortnight: miners who "took" the fork switching back.
    measured_return = flows.total_migration_toward_second(
        fork_ts + 3 * DAY, fork_ts + 21 * DAY
    )
    truth_return = (
        fork_result.daily_hashrate["ETC"][20]
        - fork_result.daily_hashrate["ETC"][3]
    )

    rows = [
        "=== Extension: miner-flow estimation from block data ===",
        f"migration toward ETC, days 3-21 (estimated): "
        f"{measured_return:.3e} H/s",
        f"ETC hashrate gain, days 3-21 (ground truth): "
        f"{truth_return:.3e} H/s",
        f"recovered fraction: {measured_return / truth_return:.0%} "
        f"(conservative lower bound by construction)",
        "",
        "largest single-day migrations toward ETC:",
    ]
    top = sorted(flows.flows, key=lambda f: -f.migration)[:5]
    for flow in top:
        day = (flow.timestamp - fork_ts) / DAY
        rows.append(f"  day {day:5.0f}: {flow.migration:.3e} H/s")
    table = "\n".join(rows)
    (output_dir / "ext_flows.txt").write_text(table + "\n")
    print()
    print(table)

    assert measured_return > 0
    assert 0.25 * truth_return < measured_return < 1.5 * truth_return
    # The biggest inflows happen in the return fortnight, where the paper
    # saw the mirror-image difficulty drift.
    assert any(
        3 <= (flow.timestamp - fork_ts) / DAY <= 21 for flow in top[:3]
    )
