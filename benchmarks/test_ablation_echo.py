"""Experiment abl-echo — ablation: streaming vs naive echo detection.

The streaming :class:`EchoDetector` makes one pass over the interleaved
sighting stream; the naive baseline materializes both chains' full
transaction sets and joins them in two passes.  They must agree exactly
(asserted here and property-tested in the unit suite); the benchmark
quantifies the throughput difference on the full nine-month workload.
"""

import pytest

from repro.baselines.naive_echo import naive_echo_join
from repro.core.echoes import EchoDetector


def test_detectors_agree_on_full_workload(benchmark, echo_data, output_dir):
    detector, truth, records = echo_data
    naive = benchmark.pedantic(
        naive_echo_join, args=(records,), rounds=1, iterations=1
    )

    streaming_keys = {(e.tx_hash, e.echo_chain) for e in detector.echoes}
    naive_keys = {(e.tx_hash, e.echo_chain) for e in naive}
    assert streaming_keys == naive_keys
    assert len(naive) == truth.total()

    summary = (
        "=== Ablation: echo detectors on the nine-month workload ===\n"
        f"sightings: {len(records)}\n"
        f"echoes (streaming): {len(detector.echoes)}\n"
        f"echoes (naive join): {len(naive)}\n"
        f"ground truth: {truth.total()}\n"
    )
    (output_dir / "ablation_echo.txt").write_text(summary)
    print()
    print(summary)


def test_streaming_detector_throughput(benchmark, echo_data):
    _, _, records = echo_data

    def run():
        detector = EchoDetector()
        detector.observe_records(records)
        return len(detector.echoes)

    count = benchmark(run)
    assert count > 0


def test_naive_join_throughput(benchmark, echo_data):
    _, _, records = echo_data
    count = benchmark(lambda: len(naive_echo_join(records)))
    assert count > 0
