"""Experiment ext-intent — the paper's future-work item, built and
evaluated: "exploring the transactions to detect malicious versus benign
rebroadcasts" (Section 4).

Classifies every echo from the nine-month workload and scores the
classifier against the workload's ground-truth intent labels.
"""

from repro.core.classification import IntentClassifier
from repro.data.windows import DAY


def test_intent_classification(benchmark, fork_result, echo_data, output_dir):
    detector, truth, _ = echo_data
    classifier = IntentClassifier()
    report = benchmark.pedantic(
        classifier.classify, args=(detector.echoes,), rounds=1, iterations=1
    )

    intentional = [v for v in report.verdicts if v.echo.same_time]
    scavenged = [v for v in report.verdicts if not v.echo.same_time]
    benign_recall = (
        sum(1 for v in intentional if v.label == "benign") / len(intentional)
    )
    malicious_recall = (
        sum(1 for v in scavenged if v.label == "malicious") / len(scavenged)
    )

    rows = [
        "=== Extension: malicious vs benign rebroadcast classification ===",
        f"echoes classified:            {len(report.verdicts)}",
        f"labeled malicious:            {len(report.malicious)} "
        f"({report.malicious_fraction():.1%})",
        f"ground-truth intentional:     {truth.same_time}",
        f"benign recall (intentional):  {benign_recall:.1%}",
        f"malicious recall (scavenged): {malicious_recall:.1%}",
        "",
        "malicious echoes per 30-day period:",
    ]
    daily = report.daily_malicious_counts()
    if daily:
        first = min(daily)
        last = max(daily)
        period_start = first
        while period_start <= last:
            count = sum(
                daily.get(day, 0)
                for day in range(period_start, period_start + 30)
            )
            rows.append(f"  days {period_start - first:3d}-"
                        f"{period_start - first + 29:3d}: {count}")
            period_start += 30
    table = "\n".join(rows)
    (output_dir / "ext_intent.txt").write_text(table + "\n")
    print()
    print(table)

    assert benign_recall > 0.95
    assert malicious_recall > 0.6
    # Most echoes are scavenged replays, not dual-intent broadcasts.
    assert report.malicious_fraction() > 0.5
