"""Experiment fig4 / obs5 — Figure 4: rebroadcast ("echo") transactions.

Paper's reading (Section 3.3, "Security vulnerabilities"):
* "an initial spike immediately following the fork, followed by
  subsequent spikes in October and November";
* "the overall number of rebroadcasts has fallen off, and yet there are
  still hundreds of daily rebroadcast transactions even today";
* "Most of the rebroadcasts were originally broadcast in ETH and then
  rebroadcast into ETC";
* the top panel: echoes peak above 50% of all ETC transactions.
"""

from conftest import publish

from repro.core.observations import observation_5
from repro.core.report import figure_4
from repro.data.windows import DAY


def test_figure_4(benchmark, fork_result, echo_data, output_dir):
    detector, truth, _ = echo_data
    figure = benchmark.pedantic(
        figure_4, args=(fork_result, detector), rounds=1, iterations=1
    )
    publish(output_dir, "figure4", figure, sample_days=14)

    into_etc = figure.series["into ETC/day"]
    percent_etc = figure.series["% of ETC txs"]

    # Initial spike: tens of thousands per day, most of ETC's traffic.
    first_week_peak = max(into_etc.values[:7])
    first_week_percent = max(percent_etc.values[:7])
    print(f"\ninitial spike: {first_week_peak:.0f} echoes/day, "
          f"{first_week_percent:.0f}% of ETC txs (paper: up to ~50-60%)")
    assert first_week_peak > 5_000
    assert 30 <= first_week_percent <= 95

    # Decay, but persistence: hundreds per day months later.
    final_month = into_etc.values[-30:]
    final_mean = sum(final_month) / len(final_month)
    print(f"final month: {final_mean:.0f} echoes/day "
          f"(paper: 'still hundreds of daily rebroadcasts')")
    assert 100 <= final_mean <= 2_000

    # Direction: overwhelmingly ETH -> ETC.
    directions = detector.direction_totals()
    eth_to_etc = directions.get(("ETH", "ETC"), 0)
    etc_to_eth = directions.get(("ETC", "ETH"), 0)
    print(f"direction: ETH→ETC {eth_to_etc}, ETC→ETH {etc_to_eth}")
    assert eth_to_etc > 3 * etc_to_eth

    # The October/November bump windows produce local maxima.
    def window_sum(series, start_day, end_day):
        clipped = series.clip_time(
            fork_result.fork_timestamp + start_day * DAY,
            fork_result.fork_timestamp + end_day * DAY,
        )
        return sum(clipped.values)

    bump = window_sum(into_etc, 108, 122)
    before_bump = window_sum(into_etc, 93, 107)
    print(f"Oct/Nov bump: {bump:.0f} vs {before_bump:.0f} in the "
          f"preceding fortnight")
    assert bump > before_bump

    # Same-time class exists but is the minority.
    same_time = figure.series["same-time/day"]
    assert 0 < sum(same_time.values) < sum(into_etc.values)

    # Detector exactness against the injected ground truth.
    assert sum(into_etc.values) == truth.echoes_into["ETC"]

    observation = observation_5(detector)
    print(observation.render())
    assert observation.holds


def test_echo_detection_throughput(benchmark, echo_data):
    """Timing: one streaming pass over the full nine-month sighting
    stream (the echo detector's hot loop)."""
    from repro.core.echoes import EchoDetector

    _, _, records = echo_data

    def run():
        detector = EchoDetector()
        detector.observe_records(records)
        return len(detector.echoes)

    echoes = benchmark(run)
    assert echoes > 0
