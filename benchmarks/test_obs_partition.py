"""Experiment obs1 — "ETC experienced a sudden loss of roughly 90% of the
nodes in its network immediately after the fork."

Runs the message-level P2P scenario: a population of full nodes, 90% of
which upgrade before the activation height; at the fork the handshake
fork-check and invalid-block disconnects tear the mesh apart, and a
crawler seeded at an ETC node watches its reachable network implode.
"""

from repro.core.observations import observation_1
from repro.scenarios.partition_event import (
    PartitionScenario,
    PartitionScenarioConfig,
)


def test_node_census_collapse(benchmark, partition_result, output_dir):
    result = partition_result

    # Print the census table (the node-count time series).
    lines = ["=== Observation 1: node census around the fork ===",
             "  time(s)  ETH-height ETC-height  reach(ETH) reach(ETC)  "
             "peers(ETH) peers(ETC)"]
    for snapshot in result.snapshots:
        lines.append(
            f"{snapshot.time:9.0f} {snapshot.eth_height:11d} "
            f"{snapshot.etc_height:10d} {snapshot.eth_reachable:11d} "
            f"{snapshot.etc_reachable:10d} {snapshot.eth_mean_peers:11.1f} "
            f"{snapshot.etc_mean_peers:10.1f}"
        )
    table = "\n".join(lines)
    (output_dir / "obs1_partition.txt").write_text(table + "\n")
    print()
    print(table)

    loss = result.node_loss_fraction()
    print(f"\nETC reachable-network loss: {loss:.0%} (paper: ~90%)")
    print(f"handshake refusals: {result.handshake_refusals}, "
          f"incompatible disconnects: {result.incompatible_disconnects}")

    observation = observation_1(result)
    print(observation.render())
    assert observation.holds
    assert 0.75 <= loss <= 0.95
    assert result.incompatible_disconnects > 0

    # Timing: a smaller partition run end-to-end.
    def small_run():
        config = PartitionScenarioConfig(
            num_nodes=30, num_miners=9, fork_block=20,
            post_fork_horizon=1800.0,
        )
        return PartitionScenario(config).run()

    small = benchmark.pedantic(small_run, rounds=1, iterations=1)
    assert small.fork_time is not None
