"""Experiments obs2/obs3/obs4 — the stabilization and long-term claims,
plus the consolidated observation scoreboard.

* Observation 2: ETC took ~two days to resume the target block rate; an
  influx of miners returned over the subsequent two weeks.
* Observation 3: the fork persists; ETH's mining power grows
  tremendously while ETC's holds roughly constant.
* Observation 4: mining payoff (hashes/USD) is near-identical across the
  two networks.
"""

from repro.core.observations import (
    evaluate_all,
    observation_2,
    observation_3,
    observation_4,
)
from repro.core.partition import hashpower_loss_fraction, stabilization_time


def test_stabilization_and_long_term(
    benchmark, fork_result, echo_data, partition_result, output_dir
):
    detector, _, _ = echo_data

    report = benchmark.pedantic(
        stabilization_time,
        args=(fork_result.etc_trace, fork_result.fork_timestamp),
        rounds=1,
        iterations=1,
    )
    loss = hashpower_loss_fraction(
        fork_result.etc_trace, fork_result.fork_timestamp
    )
    print(f"\nETC hashpower lost at the fork: {loss:.1%} (paper: ~90%+ of "
          f"the combined network stayed on ETH)")
    print(f"stabilization: {report.stabilization_days:.2f} days "
          f"(paper: ~2 days)")
    print(f"peak inter-block delta: {report.peak_delta_seconds:.0f}s "
          f"(paper: spiked over 1,200s)")
    assert loss > 0.9
    assert 1.0 <= report.stabilization_days <= 3.5
    assert report.peak_delta_seconds > 1_200

    observations = evaluate_all(fork_result, partition_result, detector)
    scoreboard = "\n".join(obs.render() for obs in observations)
    (output_dir / "observations.txt").write_text(scoreboard + "\n")
    print()
    print("=== Observation scoreboard ===")
    print(scoreboard)
    for observation in observations:
        assert observation.holds, (
            f"observation {observation.number} not reproduced: "
            f"{observation.details}"
        )


def test_individual_observation_details(benchmark, fork_result):
    obs2 = benchmark.pedantic(
        observation_2, args=(fork_result,), rounds=1, iterations=1
    )
    obs3 = observation_3(fork_result)
    obs4 = observation_4(fork_result)
    print()
    for observation in (obs2, obs3, obs4):
        print(observation.render())
    assert obs2.holds and obs3.holds and obs4.holds
    # Observation 3's specific numbers: ETH grows multiples, the final
    # difficulty ratio is order-ten.
    assert obs3.details["eth_difficulty_growth"] > 2.0
    assert obs3.details["difficulty_ratio_at_end"] > 5
