"""Experiment fig2 — Figure 2: difficulty, transactions/day, and contract
fraction over the nine months after the fork.

Paper's reading (Section 3.3):
* ETH's difficulty is "roughly an order of magnitude" above ETC's;
* the transaction ratio is "roughly 2.5:1 for most of the measurement
  study but increased to up to 5:1 in late March 2017";
* the contract-call fraction "was similar in the two networks until very
  recently".
"""

from conftest import publish

from repro.core.report import figure_2
from repro.data.windows import DAY


def test_figure_2(benchmark, fork_result, output_dir):
    figure = benchmark.pedantic(
        figure_2, args=(fork_result,), rounds=1, iterations=1
    )
    publish(output_dir, "figure2", figure, sample_days=14)

    fork_ts = fork_result.fork_timestamp

    def window_mean(series, start_day, end_day):
        clipped = series.clip_time(
            fork_ts + start_day * DAY, fork_ts + end_day * DAY
        )
        return clipped.mean()

    # Order-of-magnitude difficulty gap once both sides settle.
    eth_difficulty = window_mean(figure.series["ETH difficulty"], 30, 260)
    etc_difficulty = window_mean(figure.series["ETC difficulty"], 30, 260)
    ratio = eth_difficulty / etc_difficulty
    print(f"\ndifficulty ratio ETH:ETC = {ratio:.1f} (paper: ~10x)")
    assert 6 <= ratio <= 20

    # Transaction ratio: ~2.5:1 mid-study, ~5:1 late March.
    mid_ratio = window_mean(
        figure.series["ETH tx/day"], 30, 200
    ) / window_mean(figure.series["ETC tx/day"], 30, 200)
    late_ratio = window_mean(
        figure.series["ETH tx/day"], 245, 268
    ) / window_mean(figure.series["ETC tx/day"], 245, 268)
    print(f"tx ratio mid-study {mid_ratio:.2f} (paper ~2.5), "
          f"late March {late_ratio:.2f} (paper ~5)")
    assert 2.0 <= mid_ratio <= 3.2
    assert 4.0 <= late_ratio <= 6.5

    # Contract fractions similar for months, diverging at the end.
    eth_early = window_mean(figure.series["ETH contract %"], 30, 180)
    etc_early = window_mean(figure.series["ETC contract %"], 30, 180)
    assert abs(eth_early - etc_early) < 8
    eth_late = window_mean(figure.series["ETH contract %"], 255, 269)
    etc_late = window_mean(figure.series["ETC contract %"], 255, 269)
    print(f"contract %% early: ETH {eth_early:.0f} vs ETC {etc_early:.0f}; "
          f"late: ETH {eth_late:.0f} vs ETC {etc_late:.0f}")
    assert eth_late - etc_late > 20
