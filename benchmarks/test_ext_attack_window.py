"""Experiment ext-attack — Section 3.2's vulnerability warning, priced.

"The network may be vulnerable in the time period immediately following
the fork."  We give an attacker 2% of the *pre-fork* network — a rounding
error on July 19th — and evaluate their power over ETC day by day.
"""

from conftest import FULL_DAYS

from repro.core.flows import daily_hashrate_series
from repro.scenarios.attack_window import (
    assess_attack_window,
    vulnerability_window_days,
)


def test_attack_window(benchmark, fork_result, output_dir):
    fork_ts = fork_result.fork_timestamp
    etc_hashrate = daily_hashrate_series(fork_result.etc_trace, fork_ts)

    # Daily mean difficulty for ETC, aligned to days since fork.
    from repro.core.metrics import trace_daily_mean_difficulty

    etc_difficulty = trace_daily_mean_difficulty(
        fork_result.etc_trace, fork_ts
    )
    days = min(len(etc_hashrate), len(etc_difficulty), FULL_DAYS)
    prices = [fork_result.rates.rate("ETC", day) for day in range(days)]

    assessments = benchmark.pedantic(
        assess_attack_window,
        args=(
            etc_hashrate.values[:days],
            etc_difficulty.values[:days],
            prices,
        ),
        kwargs={
            "prefork_hashrate": fork_result.config.total_hashrate_at_fork,
            "attacker_prefork_share": 0.02,
        },
        rounds=1,
        iterations=1,
    )

    window = vulnerability_window_days(assessments)
    rows = [
        "=== Extension: 51% vulnerability window on post-fork ETC ===",
        "attacker budget: 2% of the PRE-FORK network",
        f"{'day':>4} {'share of ETC':>13} {'P(6-conf rewrite)':>18} "
        f"{'attack cost (USD-equiv)':>24}",
    ]
    for assessment in assessments[:21]:
        rows.append(
            f"{assessment.day:>4} "
            f"{assessment.attacker_minority_share:>12.0%} "
            f"{assessment.double_spend_probability:>18.3g} "
            f"{assessment.opportunity_cost_usd:>23.0f}"
        )
    rows.append("...")
    last = assessments[-1]
    rows.append(
        f"{last.day:>4} {last.attacker_minority_share:>12.0%} "
        f"{last.double_spend_probability:>18.3g} "
        f"{last.opportunity_cost_usd:>23.0f}"
    )
    rows.append("")
    rows.append(
        f"majority-control window: "
        f"{window if window else 0} day(s) immediately after the fork"
    )
    table = "\n".join(rows)
    (output_dir / "ext_attack_window.txt").write_text(table + "\n")
    print()
    print(table)

    # Day 0-1: the 2% attacker OWNS ETC (honest side started at ~0.5%).
    assert assessments[0].has_majority
    assert assessments[0].double_spend_probability == 1.0
    # The window closes as miners return: weeks in, the attacker is a
    # clear minority and a 6-conf rewrite is a long shot.
    assert not assessments[60].has_majority
    assert assessments[60].double_spend_probability < 0.2
    assert window is not None and 1 <= window <= 30
    # The monotone economics: attack cost in USD-equivalents grows with
    # the recovery (difficulty climbs while the share falls).
    assert assessments[120].opportunity_cost_usd > assessments[1].opportunity_cost_usd
