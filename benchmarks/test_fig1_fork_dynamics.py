"""Experiment fig1 — Figure 1: blocks/hour, difficulty, inter-block delta
in the month following the hard fork.

Paper's reading (Section 3.2):
* ETC block production "falls close to 0 for almost a day";
* "it took almost two days before the difficulty calculation was able to
  fully adjust"; the mean delta "spiked to over 1,200 seconds";
* over the following two weeks ETH's difficulty decline mirrors ETC's
  rise (miners switching back).
"""

from conftest import publish

from repro.core.partition import stabilization_time
from repro.core.report import figure_1
from repro.data.windows import DAY, HOUR


def test_figure_1(benchmark, fork_result, output_dir):
    figure = benchmark.pedantic(
        figure_1, args=(fork_result,), rounds=1, iterations=1
    )
    publish(output_dir, "figure1", figure, sample_days=2)

    fork_ts = fork_result.fork_timestamp

    # ETH is unaffected: its hourly rate never leaves the target band.
    eth_rate = figure.series["ETH blocks/hr"].clip_time(
        fork_ts, fork_ts + 30 * DAY
    )
    assert eth_rate.min() > 180

    # ETC collapses to a handful of blocks per hour...
    etc_rate = figure.series["ETC blocks/hr"]
    first_day = etc_rate.clip_time(fork_ts, fork_ts + DAY)
    assert first_day.min() < 15

    # ...recovers to the target rate in about two days...
    report = stabilization_time(fork_result.etc_trace, fork_ts)
    print(
        f"\nETC stabilization: {report.stabilization_days:.2f} days "
        f"(paper: ~2); peak delta {report.peak_delta_seconds:.0f}s "
        f"(paper: >1200s)"
    )
    assert 1.0 <= report.stabilization_days <= 3.5
    assert report.peak_delta_seconds > 1_200

    # ...and the difficulty see-saw appears over the next two weeks.
    eth_difficulty = figure.series["ETH difficulty"]
    etc_difficulty = figure.series["ETC difficulty"]

    def near(series, timestamp):
        best = min(series.timestamps, key=lambda t: abs(t - timestamp))
        return series.values[series.timestamps.index(best)]

    assert near(eth_difficulty, fork_ts + 14 * DAY) < near(
        eth_difficulty, fork_ts + 1 * DAY
    )
    assert near(etc_difficulty, fork_ts + 14 * DAY) > 2 * near(
        etc_difficulty, fork_ts + 3 * DAY
    )
