"""Experiment tbl-forks — Section 2.1's fork-length comparison:

"ETC's fork lasted much longer than ETH's — 3,583 blocks versus 86 —
likely due to ETC's smaller network size."

Regenerates the two numbers from the upgrade-fork model: laggard
hashpower mines the dying branch until operators notice, and noticing is
slow on a small, lightly monitored network.
"""

from repro.scenarios.dos_forks import (
    ETC_DIFFUSE_FORK,
    ETH_EIP150_FORK,
    compare_upgrade_forks,
)


def test_fork_length_table(benchmark, output_dir):
    eth_outcome, etc_outcome = benchmark.pedantic(
        compare_upgrade_forks, kwargs={"trials": 25}, rounds=1, iterations=1
    )

    rows = [
        "=== Section 2.1 fork-length comparison ===",
        f"{'fork':>28} {'branch blocks':>14} {'paper':>8} {'resolved in':>12}",
        f"{eth_outcome.config.name:>28} "
        f"{eth_outcome.minority_branch_length:>14d} {'86':>8} "
        f"{eth_outcome.resolution_hours:>10.1f}h",
        f"{etc_outcome.config.name:>28} "
        f"{etc_outcome.minority_branch_length:>14d} {'3583':>8} "
        f"{etc_outcome.resolution_hours:>10.1f}h",
    ]
    table = "\n".join(rows)
    (output_dir / "fork_lengths.txt").write_text(table + "\n")
    print()
    print(table)

    # Orders of magnitude and the ratio are the reproduction targets.
    assert 30 <= eth_outcome.minority_branch_length <= 300
    assert 1_500 <= etc_outcome.minority_branch_length <= 8_000
    ratio = (
        etc_outcome.minority_branch_length
        / max(eth_outcome.minority_branch_length, 1)
    )
    print(f"\nlength ratio ETC:ETH = {ratio:.0f}x (paper: ~42x)")
    assert 10 <= ratio <= 150

    # The cause is the notice time, not the laggard share alone.
    assert (
        ETC_DIFFUSE_FORK.mean_notice_hours
        > 5 * ETH_EIP150_FORK.mean_notice_hours
    )
