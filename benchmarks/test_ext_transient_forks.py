"""Experiment ext-transient — the baseline fork class (Section 2.1).

"Two miners will occasionally mine a block before they are aware of the
fact that the other did so as well ... this situation will ultimately be
resolved."  Sweeps link latency in the message-level simulator and
measures the transient (orphan) fork rate, showing (a) it scales with
propagation delay / block interval, and (b) these forks *resolve* —
the DAO fork's persistence comes from validation rules, not racing.
"""

from repro.scenarios.transient_forks import TransientForkConfig, latency_sweep

LATENCIES = [0.1, 0.5, 1.0, 2.0, 4.0]


def test_transient_fork_sweep(benchmark, output_dir):
    outcomes = benchmark.pedantic(
        latency_sweep,
        args=(LATENCIES, TransientForkConfig(duration=2 * 3600.0)),
        rounds=1,
        iterations=1,
    )

    rows = [
        "=== Extension: transient-fork rate vs propagation delay ===",
        f"{'latency':>9} {'orphan rate':>12} {'theory d/T':>11} "
        f"{'blocks':>7} {'uncles':>7} {'recovered':>10}",
    ]
    for outcome in outcomes:
        rows.append(
            f"{outcome.config.latency:>8.1f}s "
            f"{outcome.orphan_rate:>11.3f} "
            f"{outcome.predicted_rate:>11.3f} "
            f"{outcome.canonical_blocks:>7d} "
            f"{outcome.uncles_included:>7d} "
            f"{outcome.uncle_recovery_rate:>9.0%}"
        )
    table = "\n".join(rows)
    (output_dir / "ext_transient.txt").write_text(table + "\n")
    print()
    print(table)

    rates = [outcome.orphan_rate for outcome in outcomes]
    # Monotone (allowing small-sample noise between adjacent points):
    assert rates[-1] > rates[0]
    assert rates[0] < 0.05
    assert rates[-1] > 0.15
    # Within a factor of ~3 of the first-order delay/interval prediction.
    for outcome in outcomes[1:]:
        ratio = outcome.orphan_rate / outcome.predicted_rate
        assert 0.3 < ratio < 3.5
    # The fast-network runs converge to one head (transient forks die).
    assert outcomes[0].converged
    # And the uncle mechanism compensates most losers at higher fork
    # rates — Ethereum's answer to propagation-delay centralization.
    assert outcomes[-1].uncles_included > 0
    assert outcomes[-1].uncle_recovery_rate > 0.5
