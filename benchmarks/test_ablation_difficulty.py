"""Experiment abl-diff — ablation: how protocol-dependent is the two-day
recovery?

Races three difficulty-adjustment rules through the identical scenario —
difficulty sized for the full pre-fork network, 1% of hashpower remaining:

* Ethereum Homestead (per-block, clamped) — recovers in ~1-2 days;
* Bitcoin (2016-block window, 4x clamp) — takes months, because the
  stranded window must complete at 100x block times before the first
  retarget can even fire;
* Bitcoin Cash's EDA (the fix BCH shipped for exactly this problem in
  the August 2017 fork the paper cites) — recovers in days via the
  emergency 20% cuts.

This quantifies DESIGN.md's claim that Ethereum's difficulty rule is the
mechanism behind Observation 2.
"""

from repro.baselines.bitcoin_difficulty import (
    BitcoinDifficulty,
    EmergencyDifficulty,
    ethereum_recovery_stepper,
    simulate_recovery,
)

INITIAL_DIFFICULTY = int(4.8e12 * 14)  # equilibrium for the full network
REMAINING_HASHRATE = 4.8e12 * 0.01  # the 1% that stayed on ETC
HORIZON = 120 * 86_400.0


def run_all():
    outcomes = []
    outcomes.append(
        simulate_recovery(
            "ethereum-homestead",
            ethereum_recovery_stepper(),
            INITIAL_DIFFICULTY,
            REMAINING_HASHRATE,
            horizon_seconds=HORIZON,
        )
    )
    bitcoin = BitcoinDifficulty(target_block_time=14.0)
    outcomes.append(
        simulate_recovery(
            "bitcoin-2016-window",
            bitcoin.next_difficulty,
            INITIAL_DIFFICULTY,
            REMAINING_HASHRATE,
            horizon_seconds=HORIZON,
        )
    )
    eda = EmergencyDifficulty(target_block_time=14.0)
    outcomes.append(
        simulate_recovery(
            "bitcoin-cash-eda",
            eda.next_difficulty,
            INITIAL_DIFFICULTY,
            REMAINING_HASHRATE,
            horizon_seconds=HORIZON,
        )
    )
    return outcomes


def test_difficulty_rule_ablation(benchmark, output_dir):
    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)
    by_name = {outcome.rule_name: outcome for outcome in outcomes}

    rows = [
        "=== Ablation: difficulty-rule recovery from a 99% hashpower drop ===",
        f"{'rule':>24} {'recovery':>12} {'blocks':>8} {'peak gap':>10}",
    ]
    for outcome in outcomes:
        recovery = (
            f"{outcome.recovery_days:.1f} d"
            if outcome.recovery_seconds is not None
            else f">{HORIZON / 86_400:.0f} d"
        )
        rows.append(
            f"{outcome.rule_name:>24} {recovery:>12} "
            f"{outcome.blocks_produced:>8d} "
            f"{outcome.peak_interval_seconds:>9.0f}s"
        )
    table = "\n".join(rows)
    (output_dir / "ablation_difficulty.txt").write_text(table + "\n")
    print()
    print(table)

    ethereum = by_name["ethereum-homestead"]
    bitcoin = by_name["bitcoin-2016-window"]
    eda = by_name["bitcoin-cash-eda"]

    assert ethereum.recovery_seconds is not None
    assert ethereum.recovery_days < 4

    bitcoin_days = (
        bitcoin.recovery_days
        if bitcoin.recovery_seconds is not None
        else float("inf")
    )
    assert bitcoin_days > 10 * ethereum.recovery_days

    assert eda.recovery_seconds is not None
    assert eda.recovery_days < bitcoin_days
