"""Experiment abl-bomb — ablation: the difficulty bomb ("ice age").

Both chains carried the exponential difficulty-bomb term at the fork;
ETC later *defused* it (ECIP-1010, modeled by ``ChainConfig.bomb_delay``)
while ETH let it tick until Byzantium.  This ablation runs the per-block
rule far past the paper's window at fixed hashpower and shows the bomb's
signature: block times grinding upward on the armed chain while the
defused chain holds the 14-second target — the mechanism that forces the
"upgrade or die" dynamic the paper's conclusion warns about.
"""

from repro.chain.config import ETC_CONFIG, ETH_CONFIG
from repro.sim.blockprod import BlockProducer, ChainTrace

HASHRATE = 1.5e13
START_BLOCK = 3_500_000  # ~mid-2017, where the bomb starts to bite
DAYS = 420


def mine_horizon(config, label):
    trace = ChainTrace(label)
    producer = BlockProducer(
        config=config,
        trace=trace,
        start_number=START_BLOCK,
        start_timestamp=0,
        start_difficulty=int(HASHRATE * 14),
        seed=99,
    )
    producer.run_until(
        DAYS * 86_400, HASHRATE, lambda rng: "pool", max_blocks=4_000_000
    )
    return trace


def mean_block_time(trace, start_day, end_day):
    window = trace.slice_by_time(start_day * 86_400, end_day * 86_400)
    indices = list(window)
    if len(indices) < 2:
        return float("inf")
    span = trace.timestamps[indices[-1]] - trace.timestamps[indices[0]]
    return span / (len(indices) - 1)


def test_bomb_ablation(benchmark, output_dir):
    armed, defused = benchmark.pedantic(
        lambda: (mine_horizon(ETH_CONFIG, "armed"),
                 mine_horizon(ETC_CONFIG, "defused")),
        rounds=1,
        iterations=1,
    )

    rows = [
        "=== Ablation: the difficulty bomb at constant hashpower ===",
        f"(per-block rule, {HASHRATE:.1e} H/s, from block {START_BLOCK})",
        f"{'window (days)':>15} {'armed bomb':>12} {'bomb defused':>13}",
    ]
    checkpoints = [(0, 30), (120, 150), (240, 270), (390, 420)]
    measured = {}
    for start, end in checkpoints:
        armed_bt = mean_block_time(armed, start, end)
        defused_bt = mean_block_time(defused, start, end)
        measured[(start, end)] = (armed_bt, defused_bt)
        rows.append(
            f"{f'{start}-{end}':>15} {armed_bt:>11.1f}s {defused_bt:>12.1f}s"
        )
    table = "\n".join(rows)
    (output_dir / "ablation_bomb.txt").write_text(table + "\n")
    print()
    print(table)

    early_armed, early_defused = measured[(0, 30)]
    mid_armed, mid_defused = measured[(240, 270)]
    late_armed, late_defused = measured[(390, 420)]
    # Both start at target; the armed chain's block time climbs while the
    # defused chain holds — until ETC's *postponed* bomb (ECIP-1010 was a
    # delay, not a removal) begins creeping in at the horizon's edge.
    assert abs(early_armed - early_defused) < 3
    assert mid_defused < 16
    assert mid_armed > mid_defused * 2.5
    assert late_defused < 25
    assert late_armed > late_defused * 2.5
    assert late_armed > early_armed * 3
