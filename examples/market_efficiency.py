#!/usr/bin/env python3
"""Mining economics across the partition — Figure 3.

Reproduces the paper's market-efficiency analysis: the expected number of
hashes a miner must compute per USD earned, for ETH and ETC, over nine
months — including the Zcash-launch dip (late October 2016) and the
March 2017 repricing dip — and quantifies how close to identical the two
curves are.

Run: ``python examples/market_efficiency.py``
"""

from repro.core import figure_3, market_efficiency_report
from repro.core.metrics import trace_daily_mean_difficulty
from repro.core.market_analysis import hashes_per_usd_series
from repro.data.windows import DAY
from repro.sim import ForkSimConfig, ForkSimulation


def main() -> None:
    print("simulating nine months of both chains plus the market...")
    result = ForkSimulation(ForkSimConfig(days=270, prefork_days=7)).run()

    figure = figure_3(result)
    print()
    print(figure.render(sample_days=10))

    eth = hashes_per_usd_series(
        trace_daily_mean_difficulty(result.eth_trace, result.fork_timestamp),
        result.rates, "ETH", result.fork_timestamp,
    )
    etc = hashes_per_usd_series(
        trace_daily_mean_difficulty(result.etc_trace, result.fork_timestamp),
        result.rates, "ETC", result.fork_timestamp,
    )
    report = market_efficiency_report(eth, etc, result.fork_timestamp)

    print()
    print("=== market-efficiency reading ===")
    print(f"pearson correlation:  {report.correlation:.4f}  "
          f"(paper: 'a very strong correlation')")
    print(f"median relative gap:  {report.median_relative_gap:.1%}  "
          f"(paper: 'the curves are almost identical')")
    if report.zcash_dip:
        when, depth = report.zcash_dip
        print(f"autumn dip: day {(when - result.fork_timestamp) / DAY:.0f}, "
              f"depth {depth:.0%}  (Zcash launched day 100)")
    if report.march_dip:
        when, depth = report.march_dip
        print(f"spring dip: day {(when - result.fork_timestamp) / DAY:.0f}, "
              f"depth {depth:.0%}  (the March ether rally: price moved "
              f"faster than difficulty)")
    print()
    print("why the curves coincide: profit hashpower flows to the higher-")
    print("revenue chain until difficulty/price equalizes. Ideological")
    print("miners don't break this — their pins only matter when they")
    print("exceed what arbitrage would allocate anyway (water-filling).")


if __name__ == "__main__":
    main()
