#!/usr/bin/env python3
"""The DAO fork timeline, end to end, with real contract execution.

Replays the whole 2016 story at contract level — DAO deployment, investor
deposits, the reentrancy drain, the hard fork with its irregular state
change, the partition, and a replay attack — then runs the month-scale
fork simulation and prints Figure 1 (blocks/hour, difficulty, inter-block
delta around the fork).

Run: ``python examples/dao_fork_timeline.py``
"""

from repro.chain.types import from_wei
from repro.core import figure_1, stabilization_time
from repro.scenarios import DaoScenario, DaoScenarioConfig
from repro.sim import ForkSimConfig, ForkSimulation


def act_one_the_contract_story() -> None:
    print("=" * 72)
    print("ACT 1 — the DAO, the drain, and the irregular state change")
    print("=" * 72)
    result = DaoScenario(DaoScenarioConfig(fork_block=16)).run()

    print(f"DAO contract:      {result.dao_address.hex_prefixed}")
    print(f"attacker contract: {result.attacker_contract.hex_prefixed}")
    print(f"drained by reentrancy: {from_wei(result.drained):.0f} ether "
          f"(stake was {from_wei(DaoScenarioConfig().attacker_stake):.0f})")

    fork_point = result.eth_chain.common_ancestor(result.etc_chain)
    print(f"\nchains diverge after block {fork_point.number}")
    for name, chain in (("ETH", result.eth_chain), ("ETC", result.etc_chain)):
        attacker = from_wei(result.attacker_balance(chain))
        refund = from_wei(result.refund_balance(chain))
        print(f"  {name}: attacker holds {attacker:.0f} ether, "
              f"refund contract holds {refund:.0f} ether")
    print("  -> ETH moved the loot at the fork block; ETC kept 'code is law'")

    bob = result.keys["bob"].address
    eth_bob = from_wei(result.eth_chain.head_state().balance_of(bob))
    etc_bob = from_wei(result.etc_chain.head_state().balance_of(bob))
    print(f"\nreplayed payment: bob holds {eth_bob:.0f} ether on ETH and "
          f"{etc_bob:.0f} on ETC (one signature, two executions)")


def act_two_the_network_dynamics() -> None:
    print()
    print("=" * 72)
    print("ACT 2 — the month after the fork (Figure 1)")
    print("=" * 72)
    print("running the two-chain simulation (45 days)...")
    result = ForkSimulation(
        ForkSimConfig(days=45, prefork_days=7)
    ).run()

    figure = figure_1(result)
    print()
    print(figure.render(sample_days=3))

    report = stabilization_time(result.etc_trace, result.fork_timestamp)
    print()
    print(f"ETC lost ~99% of its hashpower at the fork instant.")
    print(f"peak inter-block delta: {report.peak_delta_seconds:.0f}s "
          f"(paper: 'spiked to over 1,200 seconds')")
    print(f"time to resume target rate: {report.stabilization_days:.1f} days "
          f"(paper: 'almost two days')")
    print(f"difficulty at fork {report.difficulty_at_fork / 1e13:.2f}e13 -> "
          f"at recovery {report.difficulty_at_recovery / 1e13:.3f}e13")


if __name__ == "__main__":
    act_one_the_contract_story()
    act_two_the_network_dynamics()
