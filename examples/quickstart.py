#!/usr/bin/env python3
"""Quickstart: build a chain, fork it, replay a transaction, analyze it.

A compressed tour of the library in five steps:

1. create a funded genesis and grow a small chain with real
   consensus-validated blocks;
2. split it into a pro-fork chain (applies a DAO-style irregular state
   change) and an anti-fork chain;
3. replay a legacy transaction across the split — the paper's "echo";
4. detect the echo from exported chain data alone;
5. print the fork point, balances, and detection result.

Run: ``python examples/quickstart.py``
"""

from dataclasses import replace

from repro.chain import (
    ETC_CONFIG,
    ETH_CONFIG,
    Blockchain,
    PrivateKey,
    Transaction,
    build_genesis,
    ether,
    from_wei,
    sign_transaction,
)
from repro.core import EchoDetector, find_fork_point
from repro.data import export_transactions
from repro.scenarios import ChainWriter

FORK_HEIGHT = 5


def main() -> None:
    # -- 1. a funded chain ------------------------------------------------
    alice = PrivateKey.from_seed("quickstart:alice")
    bob = PrivateKey.from_seed("quickstart:bob")
    attacker = PrivateKey.from_seed("quickstart:attacker")
    miner = PrivateKey.from_seed("quickstart:miner")

    genesis, state = build_genesis(
        {alice.address: ether(100), attacker.address: ether(40)}
    )
    eth_config = replace(
        ETH_CONFIG, dao_fork_block=FORK_HEIGHT, bomb_delay=10**9,
        gas_reprice_block=None, replay_protection_block=None,
    )
    chain = Blockchain(eth_config, genesis, state.fork())
    writer = ChainWriter(chain, miner.address)
    print(f"genesis: {genesis.block_hash.hex()[:16]}…")

    # Grow the shared history to just below the fork height.
    while chain.height < FORK_HEIGHT - 1:
        writer.extend(())
    print(f"shared prefix grown to height {chain.height}")

    # -- 2. the split -----------------------------------------------------
    # The pro-fork side will confiscate the "attacker" balance at the
    # fork block; the anti-fork side refuses ("code is law").
    refund = PrivateKey.from_seed("quickstart:refund").address
    chain.irregular_transfers = [(attacker.address, refund)]

    etc_config = replace(
        ETC_CONFIG, dao_fork_block=FORK_HEIGHT, bomb_delay=10**9,
        gas_reprice_block=None, replay_protection_block=None,
    )
    etc_chain = Blockchain(etc_config, genesis, state.fork())
    for block in chain.canonical_blocks(1):
        assert etc_chain.import_block(block).accepted
    etc_writer = ChainWriter(etc_chain, miner.address)

    writer.extend(())      # ETH fork block: applies the state change
    etc_writer.extend(())  # ETC fork block: plain

    eth_fork_block = chain.block_by_number(FORK_HEIGHT)
    etc_fork_block = etc_chain.block_by_number(FORK_HEIGHT)
    print(
        f"fork block {FORK_HEIGHT}: "
        f"ETH {eth_fork_block.block_hash.hex()[:12]}… vs "
        f"ETC {etc_fork_block.block_hash.hex()[:12]}…"
    )
    assert not etc_chain.import_block(eth_fork_block).accepted
    print("each side rejects the other's fork block -> permanent partition")

    # -- 3. the replay ------------------------------------------------------
    # Alice never split her funds; her payment to Bob is signed without a
    # chain id, so Bob can rebroadcast it on the other chain and collect
    # twice.
    payment = sign_transaction(
        alice,
        Transaction(nonce=0, gas_price=10**9, gas_limit=21_000,
                    to=bob.address, value=ether(10)),
    )
    writer.extend((payment,))
    # The echo lands on ETC a little later — Bob had to notice first.
    etc_writer.extend((payment,), timestamp=etc_chain.head.timestamp + 300)
    print(f"\npayment {payment.tx_hash.hex()[:12]}… executed on BOTH chains")

    # -- 4. detect it from exported data only --------------------------------
    sightings = list(export_transactions(chain)) + list(
        export_transactions(etc_chain)
    )
    sightings.sort(key=lambda record: (record.timestamp, record.chain))
    detector = EchoDetector()
    detector.observe_records(sightings)
    assert len(detector.echoes) == 1
    echo = detector.echoes[0]

    # -- 5. report --------------------------------------------------------------
    print("\n=== analysis ===")
    print(f"fork point (from data): block {find_fork_point(chain, etc_chain)}")
    print(
        f"echo detected: {echo.tx_hash.hex()[:12]}… "
        f"{echo.origin_chain} -> {echo.echo_chain}"
    )
    for name, side in (("ETH", chain), ("ETC", etc_chain)):
        bob_balance = from_wei(side.head_state().balance_of(bob.address))
        attacker_balance = from_wei(
            side.head_state().balance_of(attacker.address)
        )
        print(
            f"{name}: bob={bob_balance:.0f} ether "
            f"(paid twice!), attacker={attacker_balance:.0f} ether"
        )
    print("\nOn ETH the attacker's balance was moved at the fork block; "
          "on ETC it remains.")


if __name__ == "__main__":
    main()
