#!/usr/bin/env python3
"""Watch the network partition happen, message by message — Observation 1.

Runs the message-level P2P scenario: 60 full nodes (Kademlia discovery,
devp2p-style gossip, real block validation), 90% of which upgrade before
the fork activates.  At the fork block the chains diverge; handshake
fork-checks and invalid-block disconnects cascade; and the crawl from an
ETC seed node — the paper's measurement vantage — collapses by ~90%.

Run: ``python examples/p2p_partition.py``
"""

from repro.scenarios import PartitionScenario, PartitionScenarioConfig


def main() -> None:
    config = PartitionScenarioConfig(
        num_nodes=60,
        num_miners=18,
        upgrade_fraction=0.9,
        fork_block=40,
        post_fork_horizon=4 * 3600.0,
    )
    print(f"simulating {config.num_nodes} nodes "
          f"({config.num_miners} miners), fork at block "
          f"{config.fork_block}, {config.upgrade_fraction:.0%} upgrading...")
    result = PartitionScenario(config).run()

    print(f"\nfork detected at t={result.fork_time:.0f}s of simulated time")
    print(f"{'time':>8} {'ETH-h':>6} {'ETC-h':>6} {'reach(ETH)':>11} "
          f"{'reach(ETC)':>11} {'peers(ETH)':>11} {'peers(ETC)':>11}")
    for snapshot in result.snapshots:
        marker = "  <-- FORK" if (
            result.fork_time is not None
            and 0 <= snapshot.time - result.fork_time < config.census_interval
        ) else ""
        print(
            f"{snapshot.time:8.0f} {snapshot.eth_height:6d} "
            f"{snapshot.etc_height:6d} {snapshot.eth_reachable:11d} "
            f"{snapshot.etc_reachable:11d} {snapshot.eth_mean_peers:11.1f} "
            f"{snapshot.etc_mean_peers:11.1f}{marker}"
        )

    loss = result.node_loss_fraction()
    print(f"\nETC reachable-network loss: {loss:.0%} "
          f"(paper: 'a sudden loss of roughly 90% of the nodes')")
    print(f"handshake refusals:        {result.handshake_refusals}")
    print(f"incompatible disconnects:  {result.incompatible_disconnects}")
    print("\nNote the mechanism: Kademlia discovery is fork-blind, so nodes")
    print("keep finding peers from the other side — and keep being dropped")
    print("at the eth-handshake fork check. The partition lives one layer")
    print("above discovery, exactly as the paper describes (Section 2.2).")


if __name__ == "__main__":
    main()
