#!/usr/bin/env python3
"""How cheap was attacking ETC right after the fork? — Section 3.2, priced.

The paper warns that "the network may be vulnerable in the time period
immediately following the fork".  This example gives that warning numbers:
it simulates the fork, hands a hypothetical attacker a fixed slice of the
*pre-fork* network, and tracks their power over ETC day by day — majority
share, double-spend probability, and the cost of a six-confirmation
rewrite.

Run: ``python examples/attack_economics.py``
"""

from repro.core.flows import daily_hashrate_series
from repro.core.metrics import trace_daily_mean_difficulty
from repro.scenarios import assess_attack_window, vulnerability_window_days
from repro.sim import ForkSimConfig, ForkSimulation


def main() -> None:
    print("simulating the fork (90 days)...")
    result = ForkSimulation(ForkSimConfig(days=90, prefork_days=7)).run()
    fork_ts = result.fork_timestamp

    etc_hashrate = daily_hashrate_series(result.etc_trace, fork_ts)
    etc_difficulty = trace_daily_mean_difficulty(result.etc_trace, fork_ts)
    days = min(len(etc_hashrate), len(etc_difficulty), 90)
    prices = [result.rates.rate("ETC", day) for day in range(days)]

    print(f"\n{'budget':>8} {'majority window':>16} "
          f"{'day-0 share':>12} {'day-0 rewrite cost':>19}")
    for budget in (0.005, 0.01, 0.02, 0.05):
        assessments = assess_attack_window(
            etc_hashrate.values[:days],
            etc_difficulty.values[:days],
            prices,
            prefork_hashrate=result.config.total_hashrate_at_fork,
            attacker_prefork_share=budget,
        )
        window = vulnerability_window_days(assessments) or 0
        first = assessments[0]
        print(
            f"{budget:>7.1%} {window:>13d} d "
            f"{first.attacker_minority_share:>12.0%} "
            f"{first.opportunity_cost_usd:>16.0f} $"
        )

    print("\nReading: even half a percent of the July-19 network — one")
    print("mid-sized pool's spare capacity — could out-mine all of ETC on")
    print("day one. The window closes as loyalists spin up and profit")
    print("miners arbitrage back in; by week two a 2% attacker is a clear")
    print("minority. This is the quantified version of the paper's 'the")
    print("network may be vulnerable immediately following the fork'.")


if __name__ == "__main__":
    main()
