#!/usr/bin/env python3
"""Mining-pool dynamics across the fork — Figure 5.

Shows both layers of the pool story:

* the *micro* level: a working pool — members, statistical share
  submission, proportional payouts, and why miners pool at all (variance);
* the *macro* level: the nine-month top-1/3/5 concentration series for
  ETH and ETC, including ETC's slow coalescence onto ETH's ratios.

Run: ``python examples/pool_dynamics.py``
"""

import random

from repro.chain.types import from_wei, to_wei
from repro.core import convergence_day, figure_5, migration_consistency
from repro.data.windows import DAY
from repro.mining import HashpowerLedger, MiningPool, PoolDirectory
from repro.sim import ForkSimConfig, ForkSimulation


def micro_level() -> None:
    print("=" * 72)
    print("MICRO — one pool, five members, a hundred blocks")
    print("=" * 72)
    pool = MiningPool("demo-pool", fee_fraction=0.02)
    for index, hashrate in enumerate((50e6, 30e6, 10e6, 7e6, 3e6)):
        pool.join(f"rig{index}", hashrate)
    directory = PoolDirectory()
    directory.register_pool(pool)

    ledger = HashpowerLedger()
    ledger.set_hashrate(pool.name, pool.hashrate)
    ledger.set_hashrate("solo-whale", 25e6)

    rng = random.Random(2016)
    reward = to_wei(5, "ether")
    blocks_won = 0
    for _ in range(100):
        pool.record_effort(seconds=14.0)
        if ledger.sample_winner(rng) == pool.name:
            pool.on_block_won(reward)
            blocks_won += 1

    print(f"pool hashrate share: {pool.hashrate / ledger.total:.0%}; "
          f"blocks won: {blocks_won}/100")
    print(f"pool coinbase (what the chain shows): "
          f"{directory.label_for(pool.coinbase)}")
    for name, member in pool.members.items():
        print(f"  {name}: {member.hashrate / pool.hashrate:5.0%} of pool "
              f"-> earned {from_wei(member.earned):7.2f} ether")
    print(f"  operator fees + dust: "
          f"{from_wei(pool.operator_earned):.2f} ether")
    print("\nEvery block the pool wins carries ONE coinbase — the pool's.")
    print("That is why Figure 5 can only measure pools, not miners.")


def macro_level() -> None:
    print()
    print("=" * 72)
    print("MACRO — nine months of pool concentration (Figure 5)")
    print("=" * 72)
    print("simulating (270 days)...")
    result = ForkSimulation(ForkSimConfig(days=270, prefork_days=14)).run()

    figure = figure_5(result)
    print()
    print(figure.render(sample_days=21))

    eth_top5 = figure.series["ETH top 5"]
    etc_top5 = figure.series["ETC top 5"]
    converged = convergence_day(eth_top5, etc_top5)
    if converged is not None:
        day = (converged - result.fork_timestamp) / DAY
        print(f"\nETC's top-5 share converges with ETH's around day "
              f"{day:.0f} after the fork")

    trace = result.eth_trace
    fork_ts = result.fork_timestamp
    prefork = [
        (trace.timestamps[i], trace.miner_of(i))
        for i in range(len(trace))
        if trace.timestamps[i] < fork_ts
        and not trace.miner_of(i).startswith("solo-")
    ]
    postfork = [
        (trace.timestamps[i], trace.miner_of(i))
        for i in range(len(trace))
        if fork_ts <= trace.timestamps[i] < fork_ts + 30 * DAY
        and not trace.miner_of(i).startswith("solo-")
    ]
    overlap = migration_consistency(prefork, postfork, top_n=5)
    print(f"pre-fork vs post-fork ETH top-5 identity overlap: {overlap:.0%} "
          f"(the pools 'immediately and pervasively chose to migrate')")


if __name__ == "__main__":
    micro_level()
    macro_level()
