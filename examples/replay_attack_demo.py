#!/usr/bin/env python3
"""The replay ("echo") attack, from mechanism to measurement — Figure 4.

Part 1 demonstrates the mechanism with real transactions: why a legacy
transaction replays, why an EIP-155 transaction does not, and why
splitting funds closes the hole.

Part 2 runs the nine-month replay workload against simulated chain
volumes and prints Figure 4's two panels (echoes/day and the percentage
of transactions they represent).

Run: ``python examples/replay_attack_demo.py``
"""

from repro.chain import (
    ETC_CONFIG,
    ETH_CONFIG,
    PrivateKey,
    StateDB,
    Transaction,
    apply_transaction,
    ether,
    sign_transaction,
)
from repro.chain.processor import TransactionRejected
from repro.core import EchoDetector, figure_4
from repro.core.metrics import trace_transactions_per_day
from repro.evm.vm import BlockEnvironment
from repro.scenarios import ReplayWorkload, ReplayWorkloadConfig
from repro.sim import ForkSimConfig, ForkSimulation


def part_one_mechanism() -> None:
    print("=" * 72)
    print("PART 1 — the mechanism")
    print("=" * 72)
    alice = PrivateKey.from_seed("replay:alice")
    bob = PrivateKey.from_seed("replay:bob")

    # Two chains, one shared pre-fork history: identical balances.
    eth_state, etc_state = StateDB(), StateDB()
    for side in (eth_state, etc_state):
        side.credit(alice.address, ether(10))

    env = BlockEnvironment(block_number=3_100_000, chain_name="demo")

    legacy = sign_transaction(
        alice,
        Transaction(nonce=0, gas_price=10**9, gas_limit=21_000,
                    to=bob.address, value=ether(4)),
    )
    print("\n1. Alice pays Bob 4 ether on ETH with a LEGACY transaction")
    apply_transaction(eth_state, legacy, ETH_CONFIG, env)
    print("   Bob rebroadcasts the same signed bytes on ETC...")
    receipt = apply_transaction(etc_state, legacy, ETC_CONFIG, env)
    print(f"   -> executed on ETC too ({receipt.status}); Bob collected twice")

    protected = sign_transaction(
        alice,
        Transaction(nonce=1, gas_price=10**9, gas_limit=21_000,
                    to=bob.address, value=ether(1), chain_id=1),
    )
    print("\n2. Alice pays again, now with an EIP-155 (chain id 1) transaction")
    apply_transaction(eth_state, protected, ETH_CONFIG, env)
    try:
        apply_transaction(etc_state, protected, ETC_CONFIG, env)
        print("   -> UNEXPECTEDLY replayed")
    except TransactionRejected as rejected:
        print(f"   -> ETC rejects the replay: {rejected.reason}")

    # Splitting funds: nonce divergence closes the hole for legacy txs too.
    print("\n3. Alice splits her funds: she moves her ETC balance to a fresh")
    print("   ETC-only address, desynchronizing her accounts")
    splitter = sign_transaction(
        alice,
        Transaction(nonce=1, gas_price=10**9, gas_limit=21_000,
                    to=PrivateKey.from_seed("replay:etc-only").address,
                    value=ether(5)),
    )
    apply_transaction(etc_state, splitter, ETC_CONFIG, env)
    stale = sign_transaction(
        alice,
        Transaction(nonce=2, gas_price=10**9, gas_limit=21_000,
                    to=bob.address, value=ether(4)),
    )
    apply_transaction(eth_state, stale, ETH_CONFIG, env)
    try:
        apply_transaction(etc_state, stale, ETC_CONFIG, env)
        print("   -> UNEXPECTEDLY replayed")
    except TransactionRejected as rejected:
        print(f"   -> later ETH transaction no longer replays on ETC: "
              f"{rejected.reason}")


def part_two_measurement() -> None:
    print()
    print("=" * 72)
    print("PART 2 — nine months of echoes (Figure 4)")
    print("=" * 72)
    print("simulating both chains and the replay workload (270 days)...")
    result = ForkSimulation(ForkSimConfig(days=270, prefork_days=7)).run()
    eth_daily = trace_transactions_per_day(
        result.eth_trace, result.fork_timestamp
    )
    etc_daily = trace_transactions_per_day(
        result.etc_trace, result.fork_timestamp
    )
    workload = ReplayWorkload(ReplayWorkloadConfig(days=270))
    records, truth = workload.generate(eth_daily.values, etc_daily.values)

    detector = EchoDetector()
    detector.observe_records(records)
    print(f"sightings processed: {len(records)}; echoes found: "
          f"{len(detector.echoes)} (injected: {truth.total()})")

    figure = figure_4(result, detector)
    print()
    print(figure.render(sample_days=14))

    directions = detector.direction_totals()
    print(f"\ndirection totals: {dict(directions)}")
    print("-> most rebroadcasts originate on ETH and echo into ETC, "
          "matching the paper")


if __name__ == "__main__":
    part_one_mechanism()
    part_two_measurement()
