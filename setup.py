"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package installs in environments whose setuptools predates PEP 660 editable
wheels (``pip install -e . --no-build-isolation`` falls back to the legacy
``setup.py develop`` path).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
